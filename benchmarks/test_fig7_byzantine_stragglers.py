"""Fig. 7 — Ladon under honest vs Byzantine (rank-manipulating) stragglers.

Paper: with up to f=5 Byzantine stragglers Ladon still reaches ~90% of its
throughput with honest stragglers; latency rises modestly (+12.5% at 5).
The manipulation is bounded because the chosen rank cannot drop below the
median certified rank (Sec. 4.4).
"""

from repro.bench import experiments
from repro.bench.report import format_table

from conftest import run_once


def test_fig7_byzantine_vs_honest_stragglers(benchmark):
    data = run_once(
        benchmark,
        experiments.fig7_byzantine_stragglers,
        straggler_counts=(0, 1, 3, 5),
        n=16,
        duration=120.0,
    )
    rows = []
    for kind in ("honest", "byzantine"):
        for entry in data[kind]:
            rows.append({"kind": kind, **{k: entry[k] for k in ("stragglers", "throughput_tps", "average_latency_s", "causal_strength")}})
    print()
    print(format_table(
        sorted(rows, key=lambda r: (r["stragglers"], r["kind"])),
        ["kind", "stragglers", "throughput_tps", "average_latency_s", "causal_strength"],
        title="Fig. 7 — Ladon-PBFT, honest vs Byzantine stragglers (paper: Byzantine ~90% of honest tput)",
    ))
    honest = {e["stragglers"]: e for e in data["honest"]}
    byzantine = {e["stragglers"]: e for e in data["byzantine"]}
    # With no stragglers the two settings coincide.
    assert byzantine[0]["throughput_tps"] == honest[0]["throughput_tps"]
    for count in (1, 3, 5):
        # Byzantine rank manipulation costs something but is bounded: the
        # system retains a large fraction of the honest-straggler throughput.
        assert byzantine[count]["throughput_tps"] > 0.5 * honest[count]["throughput_tps"]
        assert byzantine[count]["throughput_tps"] <= honest[count]["throughput_tps"] * 1.05
        # And it remains far above what ISS achieves with even honest stragglers
        # (cross-checked in Fig. 5/6 benches).
        assert byzantine[count]["throughput_tps"] > 10_000
