"""Table 1 — CPU and bandwidth usage of Ladon and ISS (32 replicas).

Paper (32 replicas, WAN 16 blocks/s, LAN 32 blocks/s): neither protocol is
CPU-bound (ceiling 800%); Ladon's usage is comparable to ISS without
stragglers and somewhat higher with one straggler, because Ladon keeps
confirming (and therefore keeps shipping) blocks that ISS simply queues.
"""

import pytest

from repro.bench import experiments
from repro.bench.report import format_table

from conftest import run_once


@pytest.mark.slow
def test_table1_cpu_and_bandwidth(benchmark):
    rows = run_once(benchmark, experiments.table1_resources, n=32, duration=15.0, batch_size=512)
    print()
    print(format_table(
        sorted(rows, key=lambda r: (r["protocol"], r["environment"], r["stragglers"])),
        ["protocol", "environment", "stragglers", "block_rate", "cpu_percent", "bandwidth_mbps", "throughput_tps"],
        title="Table 1 — CPU and bandwidth, 32 replicas (paper: Ladon ~= ISS @0 stragglers, higher @1)",
    ))
    def pick(protocol, environment, stragglers):
        return next(
            r for r in rows
            if r["protocol"] == protocol and r["environment"] == environment and r["stragglers"] == stragglers
        )

    for environment in ("wan", "lan"):
        iss0 = pick("iss-pbft", environment, 0)
        ladon0 = pick("ladon-pbft", environment, 0)
        iss1 = pick("iss-pbft", environment, 1)
        ladon1 = pick("ladon-pbft", environment, 1)
        # Nobody is CPU-bound (ceiling in the paper's convention is 800%).
        for row in (iss0, ladon0, iss1, ladon1):
            assert row["cpu_percent"] < 800
            assert row["bandwidth_mbps"] > 0
        # Without stragglers Ladon's bandwidth and CPU are comparable to ISS
        # (the rank reports/certificates are a small overhead).
        assert ladon0["bandwidth_mbps"] <= 1.4 * iss0["bandwidth_mbps"]
        assert ladon0["cpu_percent"] <= 2.0 * iss0["cpu_percent"]
        # A straggler lowers everyone's traffic relative to fault-free runs
        # (fewer full blocks are shipped).  Note: the paper reports Ladon's
        # straggler-case bandwidth above ISS's; in this reproduction the
        # short measurement window and Ladon's epoch boundary make the two
        # comparable instead — see EXPERIMENTS.md, deviation 7.
        assert iss1["bandwidth_mbps"] <= iss0["bandwidth_mbps"] * 1.05
        assert ladon1["bandwidth_mbps"] <= ladon0["bandwidth_mbps"] * 1.05
