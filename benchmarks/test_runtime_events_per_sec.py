"""Micro-benchmark: DES hot-path events/sec on the n=32 saturated cell.

Two overhauls stack on this cell:

* **PR 4** (DES layer): tuple-keyed heap entries, ``__slots__`` events,
  closure-free deliveries, fused multicast fan-out, counter-based resource
  accounting — 57.3k → ~163k events/s on the reference machine.
* **PR 5** (protocol layer): flyweight messages with construction-time
  ``size_bytes``, replica-level route-table dispatch (no isinstance chains,
  no per-instance hop), bitmask quorum tracking with interned int vote
  keys, dispatch-site crypto accounting, the incremental O(log m)
  confirmation bar, direct-to-heap delivery scheduling with inlined
  latency rows, and commit-time state GC — ~163k → ~260k events/s
  (~1.6x; BENCH_pr5.json holds the measured trajectory).  Profiles show
  the remaining wall time is dominated by the irreducible per-event DES
  transport work (heap pop, delivery dispatch, per-receiver scheduling
  arithmetic), not the protocol layer.

Absolute wall-clock floors are hardware-dependent, so every guard scales
its threshold by a measured interpreter-speed calibration (a fixed pure
Python loop timed on the reference machine): a slower CI box gets a
proportionally lower floor instead of a spurious failure, while a real hot
path regression still trips the assert on any machine.
"""

import time

import pytest

from repro.bench.config import ExperimentCell
from repro.protocols.registry import build_system

#: events/sec of the n=32 saturated cell before the PR-4 overhaul,
#: measured on the reference machine (see BENCH_pr4.json)
BASELINE_EPS_PRE_PR4 = 57_325
#: events/sec after PR 4 (the baseline PR 5 improves on; BENCH_pr4.json)
BASELINE_EPS_PR4 = 163_186
#: wall seconds the calibration loop takes on the same reference machine
#: (timed inside the function below — function-local loops run ~2x faster
#: than the same statements at module scope)
REFERENCE_CALIBRATION_SECONDS = 0.065


def interpreter_speed_factor():
    """This machine's speed relative to the reference machine (1.0 = same).

    Times a fixed pure-Python accumulation loop (best of 3) — the DES hot
    path is interpreter-bound, so this tracks the relevant axis.
    """
    best = None
    for _ in range(3):
        start = time.perf_counter()
        x = 0
        for i in range(2_000_000):
            x += i
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return REFERENCE_CALIBRATION_SECONDS / best


def events_per_second(duration):
    """Events/sec of an n=32 saturated WAN ladon-pbft run."""
    cell = ExperimentCell(
        protocol="ladon-pbft", n=32, environment="wan", duration=duration, batch_size=1024
    )
    system = build_system(cell.to_system_config())
    start = time.perf_counter()
    system.run()
    elapsed = time.perf_counter() - start
    events = system.runtime.events_processed
    assert events > 0
    return events / elapsed, events


def test_des_hot_path_sustains_baseline_throughput():
    """Tier-1 guard: a short run must beat PR 4's post-overhaul rate with
    margin (floor: 1.15x the PR-4 163k, machine-calibrated — the measured
    PR-5 rate is ~1.6x, so this catches protocol-layer regressions while
    riding out scheduler noise)."""
    factor = interpreter_speed_factor()
    floor = 1.15 * BASELINE_EPS_PR4 * factor
    eps, events = events_per_second(duration=2.0)
    assert eps > floor, (
        f"protocol hot path regressed: {eps:,.0f} events/s < floor {floor:,.0f} "
        f"(machine speed factor {factor:.2f}, {events} events)"
    )


@pytest.mark.slow
def test_protocol_hot_path_events_per_sec_full():
    """The PR-5 measurement run: the full 10-simulated-second n=32 saturated
    cell must hold >=1.35x PR 4's 163k events/s (machine-calibrated;
    measured best ~1.6x, recorded in BENCH_pr5.json) — and, transitively,
    >=3.8x the original pre-PR-4 57.3k."""
    factor = interpreter_speed_factor()
    eps, events = events_per_second(duration=10.0)
    print(f"\nn=32 saturated hot path: {events:,} events at {eps:,.0f} events/s "
          f"(machine speed factor {factor:.2f})")
    assert eps >= 1.35 * BASELINE_EPS_PR4 * factor, (
        f"expected >=1.35x the {BASELINE_EPS_PR4:,} PR-4 baseline, got {eps:,.0f}"
    )
    assert eps >= 3.8 * BASELINE_EPS_PRE_PR4 * factor
