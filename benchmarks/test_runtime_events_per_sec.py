"""Micro-benchmark: DES hot-path events/sec on the n=32 saturated cell.

PR 4 overhauled the discrete-event hot path — tuple-keyed heap entries
(C-level ordering instead of a Python ``__lt__`` per sift), ``__slots__``
events, closure-free message deliveries (``schedule_call``), a fused
multicast fan-out, and counter-based per-replica resource accounting.  The
pre-overhaul baseline on the reference machine was ~57.3k events/sec; the
overhauled path measures ~2.9x that (recorded in ``BENCH_pr4.json``).

Absolute wall-clock floors are hardware-dependent, so both guards scale
their threshold by a measured interpreter-speed calibration (a fixed pure
Python loop timed on the reference machine): a slower CI box gets a
proportionally lower floor instead of a spurious failure, while a real hot
path regression still trips the assert on any machine.
"""

import time

import pytest

from repro.bench.config import ExperimentCell
from repro.protocols.registry import build_system

#: events/sec of the n=32 saturated cell before / after the PR-4 overhaul,
#: measured on the reference machine (see BENCH_pr4.json)
BASELINE_EPS_BEFORE = 57_325
#: wall seconds the calibration loop takes on the same reference machine
#: (timed inside the function below — function-local loops run ~2x faster
#: than the same statements at module scope)
REFERENCE_CALIBRATION_SECONDS = 0.065


def interpreter_speed_factor():
    """This machine's speed relative to the reference machine (1.0 = same).

    Times a fixed pure-Python accumulation loop (best of 3) — the DES hot
    path is interpreter-bound, so this tracks the relevant axis.
    """
    best = None
    for _ in range(3):
        start = time.perf_counter()
        x = 0
        for i in range(2_000_000):
            x += i
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return REFERENCE_CALIBRATION_SECONDS / best


def events_per_second(duration):
    """Events/sec of an n=32 saturated WAN ladon-pbft run."""
    cell = ExperimentCell(
        protocol="ladon-pbft", n=32, environment="wan", duration=duration, batch_size=1024
    )
    system = build_system(cell.to_system_config())
    start = time.perf_counter()
    system.run()
    elapsed = time.perf_counter() - start
    events = system.runtime.events_processed
    assert events > 0
    return events / elapsed, events


def test_des_hot_path_sustains_baseline_throughput():
    """Tier-1 guard: a short run must comfortably clear the pre-overhaul
    events/sec (floor: 1.2x the old baseline, machine-calibrated, ~2.4x
    headroom below the measured post-overhaul rate)."""
    factor = interpreter_speed_factor()
    floor = 1.2 * BASELINE_EPS_BEFORE * factor
    eps, events = events_per_second(duration=2.0)
    assert eps > floor, (
        f"DES hot path regressed: {eps:,.0f} events/s < floor {floor:,.0f} "
        f"(machine speed factor {factor:.2f}, {events} events)"
    )


@pytest.mark.slow
def test_des_hot_path_events_per_sec_full():
    """The PR-4 acceptance measurement: >=2x the pre-overhaul 57.3k events/s
    on the full 10-simulated-second n=32 saturated cell (machine-calibrated)."""
    factor = interpreter_speed_factor()
    eps, events = events_per_second(duration=10.0)
    print(f"\nn=32 saturated DES hot path: {events:,} events at {eps:,.0f} events/s "
          f"(machine speed factor {factor:.2f})")
    assert eps >= 2 * BASELINE_EPS_BEFORE * factor, (
        f"expected >=2x the {BASELINE_EPS_BEFORE:,} baseline, got {eps:,.0f}"
    )
