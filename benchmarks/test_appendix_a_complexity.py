"""Appendix A — message and authenticator complexity of PBFT vs Ladon-PBFT
vs Ladon-opt, plus a measured cross-check on the simulator.

Paper: Ladon-PBFT raises the pre-prepare phase from O(n) to O(n^2) units of
rank information (and O(n) extra verifications per backup); Ladon-opt's
aggregate signatures restore O(n) / O(1).  Total protocol complexity stays
O(n^2) for all three.
"""

from repro.bench import experiments
from repro.bench.config import ExperimentCell
from repro.bench.report import format_table
from repro.bench.runner import run_des_cell

from conftest import run_once


def test_appendix_a_analytical_complexity(benchmark):
    rows = run_once(benchmark, experiments.appendix_a_complexity, replica_counts=(4, 16, 64, 128))
    print()
    print(format_table(
        rows,
        ["protocol", "n", "pre_prepare_units", "backup_verifications_pre_prepare", "total_messages"],
        title="Appendix A — per-round complexity profiles",
    ))
    by = {(r["protocol"], r["n"]): r for r in rows}
    for n in (16, 64, 128):
        pbft = by[("pbft", n)]
        ladon = by[("ladon-pbft", n)]
        opt = by[("ladon-opt", n)]
        # Ladon-PBFT pre-prepare rank data grows ~quorum times faster than PBFT's.
        assert ladon["pre_prepare_units"] > 10 * pbft["pre_prepare_units"] or n < 32
        # Ladon-opt collapses it back to PBFT's O(n).
        assert opt["pre_prepare_units"] == pbft["pre_prepare_units"]
        assert opt["backup_verifications_pre_prepare"] == 1
        # Total message complexity stays the same order.
        assert ladon["total_messages"] <= pbft["total_messages"] + 2 * n


def test_appendix_a_measured_pre_prepare_bytes(benchmark):
    """Cross-check on the simulator: Ladon-opt's pre-prepare traffic is smaller
    than Ladon-PBFT's for the same workload (the aggregate-signature saving)."""

    def run_pair():
        results = {}
        for protocol in ("ladon-pbft", "ladon-opt"):
            cell = ExperimentCell(
                protocol=protocol, n=7, duration=8.0, batch_size=16,
                total_block_rate=8.0, environment="lan", engine="des",
            )
            results[protocol] = run_des_cell(cell)
        return results

    results = run_once(benchmark, run_pair)
    plain_bytes = results["ladon-pbft"].network_stats.bytes_sent
    opt_bytes = results["ladon-opt"].network_stats.bytes_sent
    print()
    print(f"ladon-pbft bytes sent: {plain_bytes}")
    print(f"ladon-opt  bytes sent: {opt_bytes}")
    assert opt_bytes < plain_bytes
