"""Fig. 2 — the cost of pre-determined global ordering under stragglers.

* Fig. 2a (analytical): queued partially committed blocks and ordering delay
  grow without bound under pre-determined ordering, stay bounded under
  dynamic ordering.
* Fig. 2b (experimental): ISS-PBFT with 0, 1 and 3 stragglers in WAN — with
  stragglers the maximum throughput collapses (paper: -89.7% with one
  straggler) and latency explodes (paper: up to 12x).
"""

import pytest

from repro.bench import experiments
from repro.bench.report import format_table

from conftest import run_once


def test_fig2a_analytical_straggler_model(benchmark):
    data = run_once(benchmark, experiments.fig2a_analytical, rounds=100)
    predetermined = data["predetermined_queued"]
    dynamic = data["dynamic_queued"]
    # Backlog grows linearly under pre-determined ordering...
    assert predetermined[-1] > predetermined[49] > predetermined[0]
    # ...but stays bounded by one straggler period under dynamic ordering.
    assert max(dynamic) <= (16 - 1) * 10
    # Confirmed throughput is ~1/k of ideal (paper Sec. 2.1).
    assert abs(data["throughput_ratio"] - 0.1) < 1e-9
    print()
    print("Fig. 2a (paper): backlog and ordering delay grow over time with a straggler")
    print(f"  pre-determined backlog after 100 rounds: {predetermined[-1]:.1f} blocks")
    print(f"  dynamic (Ladon) backlog bound:           {max(dynamic):.1f} blocks")


@pytest.mark.slow
def test_fig2b_iss_with_stragglers(benchmark):
    results = run_once(
        benchmark, experiments.fig2b_iss_stragglers, straggler_counts=(0, 1, 3), n=16, duration=40.0
    )
    rows = [
        {"stragglers": count, **{k: v for k, v in metrics.items() if k in ("throughput_tps", "average_latency_s", "confirmed_blocks")}}
        for count, metrics in sorted(results.items())
    ]
    print()
    print(format_table(rows, ["stragglers", "throughput_tps", "average_latency_s", "confirmed_blocks"],
                       title="Fig. 2b — ISS-PBFT, WAN, 16 replicas (paper: -89.7% tput, 12x latency @1 straggler)"))
    no_straggler = results[0]
    one = results[1]
    three = results[3]
    # Throughput collapses with stragglers (paper: ~90% drop).
    assert one["throughput_tps"] < 0.45 * no_straggler["throughput_tps"]
    assert three["throughput_tps"] < 0.45 * no_straggler["throughput_tps"]
    # Latency inflates by at least several times.
    assert one["average_latency_s"] > 3 * no_straggler["average_latency_s"]
