"""Table 2 — inter-block causal strength (CS) of the five protocols.

Paper (16 replicas, WAN): Ladon's CS is 1.0 in every setting; Mir/ISS/RCC/
DQBFT degrade sharply as stragglers are added or the straggler's proposal
rate drops (ISS/RCC down to ~1e-5 .. 1e-16).
"""

import pytest

from repro.bench import experiments
from repro.bench.report import format_table

from conftest import run_once


@pytest.mark.slow
def test_table2_causal_strength(benchmark):
    data = run_once(
        benchmark,
        experiments.table2_causality,
        n=16,
        straggler_counts=(1, 3, 5),
        proposal_rates=(0.5, 0.1),
        duration=25.0,
        batch_size=256,
    )
    by_count = data["by_straggler_count"]
    by_rate = data["by_proposal_rate"]
    print()
    print(format_table(
        sorted(by_count, key=lambda r: (r["stragglers"], r["protocol"])),
        ["protocol", "stragglers", "causal_strength"],
        title="Table 2 (left) — CS vs straggler count (paper: Ladon 1.0, others << 1)",
    ))
    print(format_table(
        sorted(by_rate, key=lambda r: (r["proposal_rate"], r["protocol"])),
        ["protocol", "proposal_rate", "causal_strength"],
        title="Table 2 (right) — CS vs straggler proposal rate",
    ))

    def cs(rows, protocol, **filters):
        return next(
            r["causal_strength"] for r in rows
            if r["protocol"] == protocol and all(r[k] == v for k, v in filters.items())
        )

    for count in (1, 3, 5):
        ladon = cs(by_count, "ladon-pbft", stragglers=count)
        # Paper: 1.0.  Short runs plus epoch-boundary rank clamping cost a few
        # violations in this reproduction (EXPERIMENTS.md, deviation 5), but
        # Ladon stays far above every pre-determined-ordering baseline.
        assert ladon > 0.75
        for baseline in ("iss-pbft", "rcc", "mir"):
            assert cs(by_count, baseline, stragglers=count) < 0.7
            assert cs(by_count, baseline, stragglers=count) < ladon
    assert cs(by_rate, "ladon-pbft", proposal_rate=0.1) > 0.75
    for baseline in ("iss-pbft", "rcc", "mir"):
        for rate in (0.5, 0.1):
            assert cs(by_rate, baseline, proposal_rate=rate) < cs(by_rate, "ladon-pbft", proposal_rate=rate)
