"""Fig. 5 (a)-(h) — throughput and latency vs replica count, WAN and LAN.

Paper headline (128 replicas, WAN, one straggler): Ladon-PBFT achieves about
9x the throughput of ISS/RCC/Mir and ~62% lower latency, while without
stragglers all pre-determined-ordering protocols and Ladon are within a few
percent of each other.
"""

import pytest

from repro.bench import experiments
from repro.bench.report import format_table

from conftest import run_once


REPLICAS = (8, 32, 128)
PROTOCOLS = ("ladon-pbft", "iss-pbft", "rcc", "mir", "dqbft")


def _by(rows, **filters):
    out = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    return {r["protocol"]: r for r in out}


@pytest.mark.slow
def test_fig5_wan_scaling(benchmark):
    rows = run_once(
        benchmark,
        experiments.fig5_scaling,
        replica_counts=REPLICAS,
        protocols=PROTOCOLS,
        environments=("wan",),
        straggler_counts=(0, 1),
        duration=300.0,
    )
    print()
    print(format_table(
        sorted(rows, key=lambda r: (r["stragglers"], r["n"], r["protocol"])),
        ["protocol", "n", "stragglers", "throughput_tps", "average_latency_s"],
        title="Fig. 5a-d — WAN (paper @128/1 straggler: Ladon ~9x ISS tput, ~62% lower latency)",
    ))
    clean = _by(rows, n=128, stragglers=0)
    faulty = _by(rows, n=128, stragglers=1)
    # (a) Without stragglers Ladon is within ~10% of ISS/RCC.
    assert abs(clean["ladon-pbft"]["throughput_tps"] - clean["iss-pbft"]["throughput_tps"]) < 0.1 * clean["iss-pbft"]["throughput_tps"]
    # (b) With one straggler Ladon wins by a large factor (paper ~9x; shape >= 4x).
    assert faulty["ladon-pbft"]["throughput_tps"] > 4 * faulty["iss-pbft"]["throughput_tps"]
    assert faulty["ladon-pbft"]["throughput_tps"] > 4 * faulty["mir"]["throughput_tps"]
    assert faulty["ladon-pbft"]["throughput_tps"] > 4 * faulty["rcc"]["throughput_tps"]
    # Pre-determined ordering loses most of its throughput (paper ~90%).
    assert faulty["iss-pbft"]["throughput_tps"] < 0.3 * clean["iss-pbft"]["throughput_tps"]
    # Ladon only loses a modest fraction (paper ~9%).
    assert faulty["ladon-pbft"]["throughput_tps"] > 0.6 * clean["ladon-pbft"]["throughput_tps"]
    # (d) Latency: Ladon well below ISS with one straggler (paper ~62% lower).
    assert faulty["ladon-pbft"]["average_latency_s"] < 0.7 * faulty["iss-pbft"]["average_latency_s"]
    # DQBFT declines as the replica count grows (ordering-leader bottleneck).
    dqbft_small = _by(rows, n=8, stragglers=0)["dqbft"]["throughput_tps"]
    dqbft_large = clean["dqbft"]["throughput_tps"]
    assert dqbft_large < 0.8 * dqbft_small


@pytest.mark.slow
def test_fig5_lan_scaling(benchmark):
    rows = run_once(
        benchmark,
        experiments.fig5_scaling,
        replica_counts=REPLICAS,
        protocols=("ladon-pbft", "iss-pbft"),
        environments=("lan",),
        straggler_counts=(0, 1),
        duration=200.0,
    )
    print()
    print(format_table(
        sorted(rows, key=lambda r: (r["stragglers"], r["n"], r["protocol"])),
        ["protocol", "n", "stragglers", "throughput_tps", "average_latency_s"],
        title="Fig. 5e-h — LAN (same trends as WAN, higher throughput / lower latency)",
    ))
    faulty = _by(rows, n=128, stragglers=1)
    clean = _by(rows, n=128, stragglers=0)
    assert faulty["ladon-pbft"]["throughput_tps"] > 4 * faulty["iss-pbft"]["throughput_tps"]
    # LAN latency is lower than WAN latency for the same protocol/size.
    assert clean["iss-pbft"]["average_latency_s"] < 10.0
