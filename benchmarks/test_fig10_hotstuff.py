"""Fig. 10 (Appendix D) — Ladon-HotStuff vs ISS-HotStuff.

Paper (WAN, 16 blocks/s): without stragglers the two are comparable; with one
straggler Ladon-HotStuff reaches ~2.7x the throughput and ~23% lower latency
of ISS-HotStuff at 128 replicas.  Both are hit harder than their PBFT
counterparts because chained HotStuff commits a block only after three
successors.
"""

import pytest

from repro.bench import experiments
from repro.bench.report import format_table

from conftest import run_once


@pytest.mark.slow
def test_fig10_hotstuff_scaling(benchmark):
    rows = run_once(
        benchmark,
        experiments.fig10_hotstuff,
        replica_counts=(8, 32, 128),
        straggler_counts=(0, 1),
        duration=900.0,
    )
    print()
    print(format_table(
        sorted(rows, key=lambda r: (r["stragglers"], r["n"], r["protocol"])),
        ["protocol", "n", "stragglers", "throughput_tps", "average_latency_s"],
        title="Fig. 10 — HotStuff instances, WAN (paper @128/1 straggler: Ladon-HS ~2.7x ISS-HS)",
    ))
    by = {(r["protocol"], r["n"], r["stragglers"]): r for r in rows}
    # Comparable without stragglers.
    clean_ladon = by[("ladon-hotstuff", 128, 0)]["throughput_tps"]
    clean_iss = by[("iss-hotstuff", 128, 0)]["throughput_tps"]
    assert abs(clean_ladon - clean_iss) < 0.15 * clean_iss
    # Ladon-HotStuff wins clearly with one straggler (paper: 2.7x).
    for n in (32, 128):
        ladon = by[("ladon-hotstuff", n, 1)]["throughput_tps"]
        iss = by[("iss-hotstuff", n, 1)]["throughput_tps"]
        assert ladon > 2 * iss
    # Chained HotStuff with a straggler is hit harder than Ladon-PBFT would be:
    # the straggler's blocks commit only after three of its own successors.
    assert by[("ladon-hotstuff", 128, 1)]["average_latency_s"] > by[("ladon-hotstuff", 128, 0)]["average_latency_s"]
