"""Fig. 6 — varying the number of stragglers (16 replicas, WAN).

Paper: from 1 to 5 stragglers the throughput of every protocol stays roughly
flat (the slowest straggler dominates), with Ladon and DQBFT far above the
pre-determined-ordering protocols throughout.
"""

from repro.bench import experiments
from repro.bench.report import format_table

from conftest import run_once


def test_fig6_straggler_count(benchmark):
    rows = run_once(
        benchmark,
        experiments.fig6_straggler_count,
        straggler_counts=(1, 3, 5),
        n=16,
        duration=120.0,
    )
    print()
    print(format_table(
        sorted(rows, key=lambda r: (r["stragglers"], r["protocol"])),
        ["protocol", "stragglers", "throughput_tps", "average_latency_s"],
        title="Fig. 6 — 16 replicas, WAN, 1-5 stragglers (paper: Ladon/DQBFT stay high and flat)",
    ))
    by = {(r["protocol"], r["stragglers"]): r for r in rows}
    for count in (1, 3, 5):
        assert by[("ladon-pbft", count)]["throughput_tps"] > 3 * by[("iss-pbft", count)]["throughput_tps"]
    # Robustness to additional stragglers: Ladon's throughput does not collapse
    # between 1 and 5 stragglers (paper: ~10% drop).
    assert by[("ladon-pbft", 5)]["throughput_tps"] > 0.6 * by[("ladon-pbft", 1)]["throughput_tps"]
    # ISS stays uniformly bad: adding stragglers barely changes it (paper: ~1%).
    assert by[("iss-pbft", 5)]["throughput_tps"] < 1.5 * by[("iss-pbft", 1)]["throughput_tps"] + 1
