"""Fig. 8 — Ladon throughput over time with one crash fault.

Paper: a replica crashes at t=11 s, throughput drops; the 10 s view-change
timeout expires and the view change completes around t=21 s, after which
throughput recovers.  Later dips correspond to epoch changes.
"""

import pytest

from repro.bench import experiments
from repro.bench.report import format_series

from conftest import run_once


@pytest.mark.slow
def test_fig8_crash_recovery_timeline(benchmark):
    data = run_once(
        benchmark,
        experiments.fig8_crash_recovery,
        n=16,
        duration=60.0,
        crash_at=11.0,
        view_change_timeout=10.0,
        batch_size=512,
    )
    series = data["throughput_series"]
    print()
    print(format_series(series, title="Fig. 8 — Ladon throughput over time (crash at 11 s)"))
    print(f"view change completed at: {data['view_change_completed_at']}")
    print(f"epoch advancements: {data['epoch_advancements'][:5]}")

    def window_average(start, end):
        points = [v for t, v in series if start <= t < end]
        return sum(points) / len(points) if points else 0.0

    before = window_average(4.0, 11.0)
    after_recovery = window_average(30.0, 55.0)
    assert before > 0
    # Throughput recovers after the view change (crashed leader replaced).
    assert after_recovery > 0.5 * before
    # The view change completes roughly one timeout after the crash.
    completed = data["view_change_completed_at"]
    assert completed is not None
    assert 11.0 < completed < 35.0
    # The crashed instance's throughput share (1/16) is the only permanent loss.
    assert after_recovery > 0.7 * before
