"""Micro-benchmark: heap-based DynamicOrderer drain vs the seed O(k²) scan.

The hot path of the global ordering layer is the drain that runs when a
straggler's fresh block lifts the confirmation bar over a large backlog.  The
seed implementation re-ran ``min()`` over every unconfirmed block per
confirmation (O(k²) for a k-block drain); the orderer now keeps a min-heap
keyed by ``ordering_key`` (O(k log k)).  This benchmark builds a k-block
backlog behind a silent instance, then times the single release drain.

The 10k-block comparison (paper-scale backlog, ≥10x requirement) is marked
``slow``; a 2k-block version guards the speedup in the tier-1 run.
"""

import pytest

from repro.core.block import Block
from repro.core.ordering import DynamicOrderer, ScanDrainDynamicOrderer

from conftest import time_once


def build_backlog(orderer_cls, pending):
    """Queue ``pending`` blocks of instance 0 while instance 1 stays silent.

    Intermediate drains are suppressed so both implementations start the
    timed release from an identical k-block backlog.
    """
    orderer = orderer_cls(num_instances=2)
    real_drain, orderer._drain = orderer._drain, lambda now: []
    orderer.add_partially_committed(Block(instance=1, round=1, rank=0), now=0.0)
    for round_ in range(1, pending + 1):
        orderer.add_partially_committed(Block(instance=0, round=round_, rank=round_), now=0.0)
    orderer._drain = real_drain
    return orderer


def timed_release(orderer_cls, pending):
    """Time the single drain triggered by the straggler's release block."""
    orderer = build_backlog(orderer_cls, pending)
    release = Block(instance=1, round=2, rank=pending + 1)
    newly, seconds = time_once(orderer.add_partially_committed, release, now=1.0)
    # Everything up to and including instance 1's round-1 block drains; only
    # the release block itself stays pending (above the new bar).
    assert len(newly) == pending + 1
    assert [c.sn for c in newly] == list(range(pending + 1))
    return seconds


def test_drain_speedup_2k_pending():
    """Tier-1 guard: the heap drain beats the seed scan by >=5x at 2k blocks."""
    scan = timed_release(ScanDrainDynamicOrderer, 2000)
    heap = timed_release(DynamicOrderer, 2000)
    assert heap * 5 <= scan, f"expected >=5x speedup, got {scan / heap:.1f}x"


@pytest.mark.slow
def test_drain_speedup_10k_pending():
    """Acceptance bar: >=10x over the seed O(k²) drain at 10k pending blocks."""
    scan = timed_release(ScanDrainDynamicOrderer, 10_000)
    heap = timed_release(DynamicOrderer, 10_000)
    speedup = scan / heap
    print(f"\n10k-block drain: scan {scan * 1000:.1f} ms, heap {heap * 1000:.1f} ms "
          f"({speedup:.0f}x)")
    assert speedup >= 10.0
