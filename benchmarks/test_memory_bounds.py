"""Bounded-memory guards for the protocol layer.

PR 5 made long DES runs O(active-window) in memory: committed round
entries and their quorum vote state are pruned as the contiguous committed
prefix advances, rank-report buffers follow the proposal cursor, the
orderers drop per-round buffers behind the partially-confirmed prefix, and
every replica except the observer keeps compact audit fingerprints instead
of full Block/ConfirmedBlock histories.

Reference points on the reference machine (ladon-pbft n=32 WAN saturated,
see BENCH_pr5.json): pre-overhaul peak RSS grew 44.8 → 63.2 → 93.5 MB over
5 → 10 → 20 simulated seconds (~1.45x per horizon doubling); post-overhaul
it is ~34 → 38 → 40 MB (~1.08x per doubling).

The doubling test runs each horizon in a fresh subprocess because peak RSS
(``ru_maxrss``) is a process-lifetime high-water mark.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.bench.config import ExperimentCell
from repro.protocols.registry import build_system

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

_CHILD = """
import json, resource, sys
sys.path.insert(0, {src!r})
from repro.bench.config import ExperimentCell
from repro.protocols.registry import build_system
cell = ExperimentCell(protocol="ladon-pbft", n=32, environment="wan",
                      duration={duration}, batch_size=1024)
system = build_system(cell.to_system_config())
result = system.run()
print(json.dumps({{
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    "events": system.runtime.events_processed,
    "confirmed": len(result.confirmed),
}}))
"""


def _run_horizon(duration: float) -> dict:
    code = _CHILD.format(src=SRC, duration=duration)
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


@pytest.mark.slow
def test_peak_rss_sublinear_in_horizon():
    """Doubling the simulated horizon must not come close to doubling peak
    RSS: retained state is O(active window), and only the observer keeps
    full histories.  (The pre-overhaul code measured ~1.45x per doubling;
    the bound here also gives a hard absolute ceiling for the long run.)"""
    short = _run_horizon(6.0)
    long = _run_horizon(12.0)
    assert long["events"] > 1.8 * short["events"]  # the workload really doubled
    ratio = long["peak_rss_mb"] / short["peak_rss_mb"]
    assert ratio < 1.30, (
        f"peak RSS grew {ratio:.2f}x when the horizon doubled "
        f"({short['peak_rss_mb']:.1f} -> {long['peak_rss_mb']:.1f} MB): "
        "memory is no longer O(active window)"
    )
    assert long["peak_rss_mb"] < 120.0, (
        f"12-simulated-second n=32 cell peaked at {long['peak_rss_mb']:.1f} MB "
        "(reference machine: ~38 MB; pre-overhaul: ~70 MB)"
    )


@pytest.mark.slow
def test_n128_cell_within_budget():
    """The n=128 WAN saturated cell is routinely runnable: the documented
    budget (EXPERIMENTS.md "Performance") is <= 400 MB peak RSS and about a
    half-million events per simulated second.  A 2-simulated-second slice
    keeps the guard fast; the full 10 s measurement lives in BENCH_pr5.json."""
    code = _CHILD.format(src=SRC, duration=2.0).replace("n=32", "n=128")
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    row = json.loads(out.stdout.strip().splitlines()[-1])
    # (confirmations need every instance's first proposal, which the stagger
    # spreads over a full 8 s proposal interval at m=128 — the 2 s slice
    # exercises the message hot path, not the confirmation tail)
    assert row["events"] > 500_000
    assert row["peak_rss_mb"] < 400.0, (
        f"n=128 slice peaked at {row['peak_rss_mb']:.1f} MB "
        "(reference machine: ~110 MB for this slice)"
    )


class TestBoundedStateStructure:
    """Fast tier-1 checks: the per-replica containers that used to leak are
    empty (or watermark-sized) after a saturated run."""

    @pytest.fixture(scope="class")
    def system(self):
        cell = ExperimentCell(
            protocol="ladon-pbft", n=8, environment="wan", duration=8.0,
            batch_size=256,
        )
        system = build_system(cell.to_system_config())
        system.run()
        return system

    def test_non_observers_keep_no_block_histories(self, system):
        observer = system._observer_id
        for replica_id, replica in system.replicas.items():
            if replica_id == observer:
                assert replica.metrics.confirmed  # the observer retains all
                continue
            assert replica.metrics.confirmed == []
            assert replica.metrics.confirmed_count > 0  # streaming counters live
            for instance in replica.instances.values():
                assert instance.delivered_blocks == []
                assert len(instance.commit_log) > 0  # compact audit log

    def test_committed_round_entries_pruned(self, system):
        for replica in system.replicas.values():
            for instance in replica.instances.values():
                committed_rounds = instance.last_committed_round
                assert committed_rounds > 3  # the run made progress
                # The log holds only the active window above the watermark.
                assert len(instance.log) <= committed_rounds / 2 + 4
                assert instance._stable_round > 0

    def test_quorum_vote_state_released(self, system):
        for replica in system.replicas.values():
            for instance in replica.instances.values():
                # Vote state is cleared on commit: only in-flight rounds
                # (and stragglers' late keys) remain.
                assert instance.prepare_votes.tracked_keys() <= 6
                assert instance.commit_votes.tracked_keys() <= 6

    def test_rank_reports_follow_cursor(self, system):
        for replica in system.replicas.values():
            for instance in replica.instances.values():
                reports = getattr(instance, "rank_reports", None)
                if reports is None:
                    continue
                assert len(reports) <= 3  # only rounds near the cursor

    def test_orderer_buffers_pruned(self, system):
        for replica in system.replicas.values():
            orderer = replica.orderer
            for buffered in orderer._by_instance.values():
                assert len(buffered) <= 2
            assert orderer.confirmed_count > 0
