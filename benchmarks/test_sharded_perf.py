"""Benchmark guards for the sharded conservative-parallel DES (PR 9).

The sharded backend's headline is wall-clock scaling on multi-core
machines: at n=128 the single-process DES spends all its time in one
interpreter, while four workers each simulate 32 replicas and only meet at
lookahead barriers (~40 ms of simulated time apart in the WAN, hundreds of
simulated events per shard per window).

Speedup is a *hardware property*: on a single-core box the workers
serialize, so the barrier + IPC cost is all overhead (short runs pay
~1.5x for process startup; longer runs amortize it, and the smaller
per-shard event heaps roughly break even — BENCH_pr9.json records
n=128 at 32.4 s sharded vs 33.8 s single on one core).  The speedup
guard therefore only arms when the machine actually exposes enough
cores; everywhere else it degrades to a bounded-overhead sanity check so
CI on small runners still exercises the whole code path without
asserting physics it cannot observe.
"""

import os
import time

import pytest

from repro.bench.config import ExperimentCell
from repro.protocols.registry import build_system


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def run_wall_seconds(n: int, duration: float, shards: int = 1, seed: int = 0):
    """Wall time and result of one saturated WAN ladon-pbft cell."""
    cell = ExperimentCell(
        protocol="ladon-pbft",
        n=n,
        environment="wan",
        duration=duration,
        batch_size=256,
        seed=seed,
        runtime="sharded" if shards > 1 else "des",
        shards=shards,
    )
    system = build_system(cell.to_system_config())
    start = time.perf_counter()
    result = system.run()
    return time.perf_counter() - start, result


def test_two_shard_smoke_n64():
    """Tier-1 guard: the 2-shard n=64 cell completes, confirms blocks, and
    stays within a bounded overhead of the single-process run.

    The n=64 WAN proposal interval is n/16 = 4 s, so the duration must
    exceed it for any block to confirm.  The overhead bound (4x) is loose
    on purpose: on one core the sharded run pays IPC + barrier cost with
    zero parallelism (~1.5x measured), and CI boxes add scheduler noise.
    """
    wall_single, single = run_wall_seconds(n=64, duration=6.0)
    wall_sharded, sharded = run_wall_seconds(n=64, duration=6.0, shards=2)
    assert len(sharded.confirmed) > 0
    assert len(sharded.confirmed) == len(single.confirmed)
    assert sharded.audit.safety_ok and single.audit.safety_ok
    assert sharded.metrics.extra.get("sync_min_margin_ms", 0.0) >= 0.0
    assert wall_sharded < 4.0 * wall_single + 2.0, (
        f"sharded overhead blew past the bound: {wall_sharded:.2f}s vs "
        f"{wall_single:.2f}s single ({available_cores()} cores)"
    )


@pytest.mark.slow
def test_sharded_n128_scaling():
    """The acceptance measurement: sharded n=128 on >= 4 workers.

    On a machine with >= 4 usable cores the 4-shard run must finish in at
    most half the single-process wall time (the >= 2x speedup headline).
    With fewer cores there is no parallel hardware to claim the speedup
    from, so the guard degrades to completion + equivalence-grade checks;
    the speedup itself is recorded in BENCH_pr9.json from a multi-core
    run.
    """
    cores = available_cores()
    wall_single, single = run_wall_seconds(n=128, duration=10.0)
    wall_sharded, sharded = run_wall_seconds(n=128, duration=10.0, shards=4)
    print(
        f"\nn=128: single {wall_single:.2f}s vs 4-shard {wall_sharded:.2f}s "
        f"on {cores} cores; confirmed {len(single.confirmed)}/{len(sharded.confirmed)}"
    )
    assert len(sharded.confirmed) == len(single.confirmed)
    assert sharded.audit.safety_ok
    if cores >= 4:
        assert wall_sharded <= 0.5 * wall_single, (
            f"sharded n=128 did not reach 2x on {cores} cores: "
            f"{wall_sharded:.2f}s vs {wall_single:.2f}s"
        )
    else:
        pytest.skip(
            f"only {cores} core(s) visible: speedup is unobservable; "
            f"ran both backends (single {wall_single:.2f}s, "
            f"4-shard {wall_sharded:.2f}s) and checked equivalence"
        )


@pytest.mark.slow
def test_sharded_n512_runs_within_budget():
    """n=512 on 8 shards is *runnable*: a 2-simulated-second slice completes
    and confirms nothing only because the n=512 proposal interval (32 s)
    exceeds the slice — the budget note in EXPERIMENTS.md documents the
    full-interval cost.  This guards start-up, partitioning, barrier
    rounds, and merge at the extreme scale without paying the full run."""
    wall, result = run_wall_seconds(n=512, duration=2.0, shards=8)
    assert result.metrics.extra["shards"] == 8.0
    assert result.metrics.extra["sync_rounds"] > 0
    print(f"\nn=512 x 8 shards, 2 simulated seconds: {wall:.1f}s wall")
