"""Shared helpers for the benchmark drivers.

Each benchmark regenerates one table or figure of the paper.  The underlying
experiments are full simulation sweeps, so every benchmark is run exactly
once (``rounds=1``) — the interesting output is the regenerated table, not a
timing distribution.
"""

import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def time_once(fn, *args, **kwargs):
    """Run ``fn`` once and return ``(result, wall-clock seconds)``.

    Default timing helper for micro-benchmarks that compare two
    implementations directly (e.g. the orderer drain benchmark) instead of
    collecting a pytest-benchmark distribution.
    """
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
