#!/usr/bin/env python3
"""Compare all five Multi-BFT protocols at a larger scale.

Uses the block-level analytical engine (the same one behind the Fig. 5
benchmarks) to sweep Ladon, ISS, RCC, Mir and DQBFT from 8 to 128 replicas
with and without a straggler — in seconds rather than hours.

Run with:  python examples/protocol_comparison.py
"""

import os

from repro.bench.analytical import AnalyticalConfig, run_analytical
from repro.bench.report import format_table


def main() -> None:
    rows = []
    for stragglers in (0, 1):
        for n in (8, 32, 128):
            for protocol in ("ladon-pbft", "iss-pbft", "rcc", "mir", "dqbft"):
                metrics = run_analytical(
                    AnalyticalConfig(
                        protocol=protocol,
                        n=n,
                        stragglers=stragglers,
                        environment="wan",
                        duration=60.0 if os.environ.get("REPRO_FAST") else 240.0,
                        seed=1,
                    )
                )
                rows.append(
                    {
                        "protocol": protocol,
                        "n": n,
                        "stragglers": stragglers,
                        "throughput_tps": metrics.throughput_tps,
                        "latency_s": metrics.average_latency_s,
                        "CS": metrics.causal_strength,
                    }
                )
    print(format_table(
        rows,
        ["protocol", "n", "stragglers", "throughput_tps", "latency_s", "CS"],
        title="Multi-BFT protocol comparison (WAN, analytical engine)",
    ))
    print()
    print("Things to look for (mirroring the paper's Fig. 5 and Table 2):")
    print(" * without stragglers every protocol lands in the same throughput band;")
    print(" * with one straggler the pre-determined-ordering protocols collapse")
    print("   while Ladon (and, until the sequencer saturates, DQBFT) hold;")
    print(" * Ladon keeps CS = 1 in every configuration.")


if __name__ == "__main__":
    main()
