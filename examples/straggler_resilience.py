#!/usr/bin/env python3
"""Straggler resilience: Ladon vs ISS with one slow leader.

This is the paper's headline scenario (Sec. 2.1 / Fig. 5): one of the leaders
proposes blocks at a tenth of the normal rate.  Under ISS's pre-determined
global ordering the holes it leaves block everything behind them; under
Ladon's dynamic ordering the other instances keep confirming.

Run with:  python examples/straggler_resilience.py
"""

import os

from repro import FaultConfig, StragglerSpec, SystemConfig, build_system

DURATION = 10.0 if os.environ.get("REPRO_FAST") else 30.0


def run(protocol: str, stragglers: int) -> "tuple":
    faults = (
        FaultConfig(stragglers=(StragglerSpec(replica=2, slowdown=10.0),))
        if stragglers
        else FaultConfig()
    )
    config = SystemConfig(
        protocol=protocol,
        n=8,
        batch_size=256,
        total_block_rate=16.0,
        environment="wan",
        duration=DURATION,
        seed=3,
        faults=faults,
    )
    metrics = build_system(config).run().metrics
    return metrics.throughput_tps, metrics.average_latency_s, metrics.causal_strength


def main() -> None:
    print("protocol     stragglers  throughput(tx/s)  latency(s)  causal strength")
    print("-" * 72)
    for protocol in ("ladon-pbft", "iss-pbft"):
        for stragglers in (0, 1):
            tput, latency, cs = run(protocol, stragglers)
            print(f"{protocol:12s} {stragglers:^10d} {tput:14,.0f} {latency:11.2f} {cs:12.3f}")

    print()
    print("Expected shape (paper Fig. 5, scaled down): with one straggler ISS loses")
    print("most of its throughput and its latency explodes, while Ladon keeps most")
    print("of its throughput, stays at much lower latency, and preserves causality.")


if __name__ == "__main__":
    main()
