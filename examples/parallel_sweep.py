"""Parallel experiment sweeps with caching.

Runs a Fig. 6-style straggler sweep twice through the sweep harness: first
cold across worker processes, then warm from the on-disk cache, printing the
per-cell progress stream and the resulting table both times.

Run with::

    PYTHONPATH=src python examples/parallel_sweep.py
"""

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench import experiments
from repro.bench.report import format_table
from repro.bench.sweep import SweepRunner, expand_grid


def progress(tick):
    source = "cache" if tick.source == "cache" else "run  "
    print(f"  [{tick.done:2d}/{tick.total}] {source} {tick.label}")


def main():
    with tempfile.TemporaryDirectory(prefix="sweep-cache-") as cache_dir:
        for attempt in ("cold (worker processes)", "warm (disk cache)"):
            print(f"\n=== Fig. 6 sweep, {attempt} ===")
            runner = SweepRunner(workers=4, cache_dir=cache_dir, progress=progress)
            start = time.perf_counter()
            rows = experiments.fig6_straggler_count(
                straggler_counts=(1, 2, 3),
                protocols=("ladon-pbft", "iss-pbft", "dqbft"),
                duration=60.0,
                sweep=runner,
            )
            elapsed = time.perf_counter() - start
            print(format_table(
                rows,
                ["protocol", "stragglers", "throughput_tps", "average_latency_s", "causal_strength"],
                title=f"Fig. 6 subset ({elapsed:.2f}s)",
            ))

    # Grids are plain cell lists: anything expand_grid produces (or any
    # hand-built list of ExperimentCells) runs through the same machinery.
    cells = expand_grid(
        {"n": (8, 16, 32), "protocol": ("ladon-pbft", "iss-pbft")},
        defaults=dict(duration=60.0, engine="analytical", seed=0),
    )
    rows = SweepRunner(workers=2).run(cells)
    print(format_table(
        rows,
        ["protocol", "n", "throughput_tps", "average_latency_s"],
        title="\nCustom grid: scaling without stragglers",
    ))


if __name__ == "__main__":
    main()
