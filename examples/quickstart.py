#!/usr/bin/env python3
"""Quickstart: run a small Ladon-PBFT deployment and print what happened.

Builds a 4-replica, 4-instance Ladon-PBFT system on the simulated LAN, runs
it for ten virtual seconds, and prints the throughput/latency summary plus
the head of the globally confirmed log (rank / instance / global index).

Run with:  python examples/quickstart.py
"""

from repro import SystemConfig, build_system


def main() -> None:
    config = SystemConfig(
        protocol="ladon-pbft",
        n=4,                  # replicas (one consensus instance per replica)
        batch_size=128,       # transactions per block
        total_block_rate=8.0, # blocks per second across all instances
        environment="lan",
        duration=10.0,        # virtual seconds
        seed=7,
    )
    system = build_system(config)
    result = system.run()

    metrics = result.metrics
    print("=== Ladon-PBFT quickstart ===")
    print(f"replicas / instances : {config.n} / {config.m}")
    print(f"confirmed blocks     : {metrics.confirmed_blocks}")
    print(f"confirmed txs        : {metrics.confirmed_txs}")
    print(f"throughput           : {metrics.throughput_tps:,.0f} tx/s")
    print(f"avg end-to-end latency: {metrics.average_latency_s:.3f} s")
    print(f"causal strength (CS) : {metrics.causal_strength:.3f}")

    print("\nfirst ten globally confirmed blocks (sn, instance, round, rank):")
    for confirmed in result.confirmed[:10]:
        block = confirmed.block
        print(f"  sn={confirmed.sn:3d}  instance={block.instance}  round={block.round:2d}  rank={block.rank:3d}")


if __name__ == "__main__":
    main()
