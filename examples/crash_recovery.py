#!/usr/bin/env python3
"""Crash fault and view change (paper Sec. 6.3.2 / Fig. 8).

Crashes the leader of one instance mid-run and shows the throughput timeline:
the dip after the crash, the view change completing one timeout later, and
throughput recovering once a new leader takes over the instance.

Run with:  python examples/crash_recovery.py
"""

import os

from repro import CrashSpec, FaultConfig, SystemConfig, build_system

DURATION = 20.0 if os.environ.get("REPRO_FAST") else 40.0
from repro.bench.report import format_series


def main() -> None:
    n = 8
    crash_at = 6.0
    config = SystemConfig(
        protocol="ladon-pbft",
        n=n,
        batch_size=128,
        total_block_rate=16.0,
        environment="wan",
        duration=DURATION,
        seed=5,
        faults=FaultConfig(crashes=(CrashSpec(replica=n - 1, at=crash_at),)),
        propose_timeout=5.0,
        view_change_timeout=5.0,
    )
    result = build_system(config).run()

    print(f"crash injected at t={crash_at:.0f}s (replica {n - 1}, leader of instance {n - 1})")
    completions = [t for t, instance, _ in result.view_change_times if instance == n - 1]
    if completions:
        print(f"view change for that instance completed at t={min(completions):.1f}s")
    if result.epoch_advancements:
        print(f"epoch advancements at: {[round(t, 1) for t, _ in result.epoch_advancements[:6]]}")
    print()
    print(format_series(result.throughput_series, title="throughput (tx/s) over time"))


if __name__ == "__main__":
    main()
