"""Run the same Multi-BFT system on both execution backends.

The protocol stack is sans-I/O: replicas talk to a ``Runtime`` interface and
never to the simulator or the network directly, so the identical state
machines run on the discrete-event backend (virtual time, deterministic) and
on the asyncio realtime backend (wall clock, real sleeps, artificial latency
from the same topology).  This example runs a small LAN deployment on both
and shows that they confirm the same block sequence.

``REPRO_FAST=1`` (set by the docs smoke test) shrinks the simulated duration.
"""

import os

from repro.protocols.base import SystemConfig
from repro.protocols.registry import build_system

FAST = os.environ.get("REPRO_FAST") == "1"
DURATION = 1.5 if FAST else 5.0
#: wall seconds per simulated second for the realtime run
TIME_SCALE = 0.4 if FAST else 1.0


def run(runtime_kind: str):
    config = SystemConfig(
        protocol="ladon-pbft",
        n=4,
        duration=DURATION,
        environment="lan",
        batch_size=256,
        runtime=runtime_kind,
        realtime_timescale=TIME_SCALE,
    )
    result = build_system(config).run()
    sequence = [(c.block.instance, c.block.rank) for c in result.confirmed]
    return result, sequence


def main() -> None:
    des_result, des_sequence = run("des")
    print(f"DES      : {des_result.metrics.confirmed_blocks} blocks, "
          f"{des_result.metrics.throughput_tps:,.0f} tx/s, "
          f"audit={'SAFE' if des_result.audit.safety_ok else 'UNSAFE'}")

    realtime_result, realtime_sequence = run("realtime")
    print(f"realtime : {realtime_result.metrics.confirmed_blocks} blocks, "
          f"{realtime_result.metrics.throughput_tps:,.0f} tx/s, "
          f"audit={'SAFE' if realtime_result.audit.safety_ok else 'UNSAFE'}")

    overlap = min(len(des_sequence), len(realtime_sequence))
    agree = des_sequence[:overlap] == realtime_sequence[:overlap]
    print(f"confirmed sequences agree on the common prefix ({overlap} blocks): {agree}")
    if not agree:
        # Wall-clock load can reorder realtime timers against message
        # deliveries, so prefix divergence here is informational; the strict
        # (load-controlled) check is the slow-marked equivalence test in
        # tests/test_runtime.py.
        print("note: divergence usually means the machine was busy during "
              "the wall-clock run; see tests/test_runtime.py for the "
              "controlled equivalence check")
    if not (des_result.audit.safety_ok and realtime_result.audit.safety_ok):
        raise SystemExit("audit failure on an honest run")
    if min(len(des_sequence), len(realtime_sequence)) == 0:
        raise SystemExit("a backend confirmed no blocks at all")


if __name__ == "__main__":
    main()
