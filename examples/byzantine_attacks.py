#!/usr/bin/env python3
"""Tour of the Byzantine adversary catalog and the safety auditor.

Runs a 4-replica Ladon-PBFT deployment four times — honest, under a
tolerated single-replica equivocation, under targeted censorship, and
under a colluding f >= n/3 equivocation — and prints what each attack does
to the metrics plus the safety auditor's verdict.  The last run is the
negative control: with two of four replicas conspiring, both forks of the
equivocation reach a quorum and the auditor reports the conflicting
commits that prove the f < n/3 bound is tight.

Run with:  python examples/byzantine_attacks.py
(set REPRO_FAST=1 for a shorter smoke run)
"""

import os

from repro import (
    AdversarySpec,
    Equivocation,
    FaultConfig,
    Silence,
    SystemConfig,
    build_system,
)

DURATION = 6.0 if os.environ.get("REPRO_FAST") else 20.0


def run(name, adversary=None):
    faults = FaultConfig(adversary=adversary) if adversary else FaultConfig()
    config = SystemConfig(
        protocol="ladon-pbft",
        n=4,
        batch_size=256,
        environment="lan",
        duration=DURATION,
        seed=7,
        faults=faults,
    )
    result = build_system(config).run()
    metrics = result.metrics
    print(f"--- {name} ---")
    if adversary is not None:
        print(f"adversary : {adversary.describe()}")
    print(f"throughput: {metrics.throughput_tps:,.0f} tx/s"
          f"   avg latency: {metrics.average_latency_s:.3f} s")
    print(f"audit     : {result.audit.summary()}")
    for violation in result.audit.violations[:3]:
        print(f"  VIOLATION {violation}")
    if len(result.audit.violations) > 3:
        print(f"  ... and {len(result.audit.violations) - 3} more")
    print()
    return result


def main() -> None:
    honest = run("honest baseline")

    tolerated = run(
        "equivocation, f < n/3 (tolerated)",
        AdversarySpec(attacks=(Equivocation(replicas=(3,)),)),
    )
    assert tolerated.audit.safety_ok, "a single equivocator must not break safety"

    censored = run(
        "silence: replica 3 censors its proposals towards replica 0",
        AdversarySpec(
            attacks=(Silence(replicas=(3,), targets=(0,), kinds=("proposal",), start=2.0),)
        ),
    )
    assert censored.metrics.throughput_tps < honest.metrics.throughput_tps

    colluding = run(
        "equivocation, f >= n/3 (negative control)",
        AdversarySpec(attacks=(Equivocation(replicas=(2, 3)),)),
    )
    assert not colluding.audit.safety_ok, "the auditor must catch the fork"

    print("summary: the auditor certified safety for every tolerable run and")
    print("reported conflicting commits exactly when the fault bound was exceeded.")


if __name__ == "__main__":
    main()
