"""Scenario engine showcase.

Runs a handful of named scenarios end-to-end on the message-level simulator
and prints what each one does to throughput, latency, and the event
timeline.  Also shows how to declare a custom scenario from scratch —
topology, dynamics timeline, and traffic profile — and how scenarios compose
with the parallel sweep harness.

Run with::

    PYTHONPATH=src python examples/scenario_showcase.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench.config import ExperimentCell
from repro.bench.report import format_table
from repro.bench.runner import run_des_cell
from repro.bench.sweep import SweepRunner, expand_grid
from repro.protocols.registry import build_system
from repro.scenario import (
    LossBurst,
    Partition,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    get_scenario,
)
from repro.workload.generator import RampTraffic

DURATION = 8.0 if os.environ.get("REPRO_FAST") else 20.0


def run_named_scenarios():
    print("=== Built-in scenarios (ladon-pbft, n=8, 20s) ===")
    rows = []
    for name in ("wan", "wan-partition", "lossy-lan", "flash-crowd", "churn"):
        cell = ExperimentCell(
            protocol="ladon-pbft", n=8, duration=DURATION, batch_size=512, scenario=name,
            environment=get_scenario(name).environment,
        )
        result = run_des_cell(cell)
        row = result.metrics.as_dict()
        row["scenario"] = name
        row["events"] = len(result.dynamics_log)
        rows.append(row)
    print(format_table(
        rows,
        ["scenario", "throughput_tps", "average_latency_s", "confirmed_blocks", "events"],
    ))


def run_custom_scenario():
    print("\n=== A custom scenario, declared inline ===")
    scenario = ScenarioSpec(
        name="two-dc-ramp",
        description="two asymmetric datacenters, ramping load, a mid-run loss burst",
        topology=TopologySpec(
            kind="custom",
            regions=("dc-east", "dc-west"),
            links=(
                ("dc-east", "dc-west", 0.030),
                ("dc-west", "dc-east", 0.055),  # congested return path
            ),
            symmetric=False,
        ),
        dynamics=(LossBurst(at=8.0, until=11.0, drop_probability=0.10),),
        traffic=TrafficSpec(profile=RampTraffic(start_tps=500.0, end_tps=40_000.0,
                                                ramp_duration=10.0)),
    )
    config = scenario.system_config(
        protocol="ladon-pbft", n=6, duration=DURATION, batch_size=512, seed=7
    )
    result = build_system(config).run()
    print(f"  confirmed {result.metrics.confirmed_blocks} blocks, "
          f"{result.metrics.throughput_tps:.0f} tx/s, "
          f"avg latency {result.metrics.average_latency_s*1000:.0f} ms")
    for time, kind, detail in result.dynamics_log:
        print(f"  t={time:6.2f}s  {kind:14s} {detail}")


def run_scenario_sweep():
    print("\n=== Scenarios x protocols through the sweep harness ===")
    cells = expand_grid(
        {"scenario": ("wan", "wan-partition", "regional-outage"),
         "protocol": ("ladon-pbft", "iss-pbft")},
        defaults=dict(n=8, duration=DURATION, batch_size=512),
    )
    rows = SweepRunner(workers=2).run(cells)
    for cell, row in zip(cells, rows):
        row["scenario"] = cell.scenario
    print(format_table(rows, ["scenario", "protocol", "throughput_tps",
                              "average_latency_s", "confirmed_blocks"]))


def show_partition_impact():
    print("\n=== Partition vs. static baseline (same seed) ===")
    baseline = run_des_cell(ExperimentCell(
        protocol="ladon-pbft", n=8, duration=DURATION, batch_size=512, scenario="wan"))
    partitioned = run_des_cell(ExperimentCell(
        protocol="ladon-pbft", n=8, duration=DURATION, batch_size=512, scenario="wan-partition"))
    print(f"  static    : {baseline.metrics.confirmed_blocks} blocks confirmed")
    print(f"  partition : {partitioned.metrics.confirmed_blocks} blocks confirmed "
          "(split at t=8s, healed at t=16s)")


if __name__ == "__main__":
    run_named_scenarios()
    run_custom_scenario()
    run_scenario_sweep()
    show_partition_impact()
