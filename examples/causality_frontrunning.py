#!/usr/bin/env python3
"""Causality and front-running (paper Sec. 4.3 and Sec. 6.4).

A front-runner watches partially committed blocks of other instances and then
gets its own, later-created transaction ordered *before* them.  That is only
possible when the global order disagrees with block generation order — which
the causal-strength metric (CS) measures.  This example runs ISS and Ladon
with a slow instance and counts how many confirmed blocks were generated
after a block they precede had already committed (each one is a front-running
opportunity).

Run with:  python examples/causality_frontrunning.py
"""

import os

from repro import FaultConfig, StragglerSpec, SystemConfig, build_system
from repro.core.causality import count_causality_violations

DURATION = 10.0 if os.environ.get("REPRO_FAST") else 30.0


def run(protocol: str):
    config = SystemConfig(
        protocol=protocol,
        n=8,
        batch_size=128,
        total_block_rate=16.0,
        environment="wan",
        duration=DURATION,
        seed=11,
        faults=FaultConfig(stragglers=(StragglerSpec(replica=3, slowdown=10.0),)),
    )
    result = build_system(config).run()
    violations = count_causality_violations(result.confirmed)
    return result.metrics, violations, len(result.confirmed)


def main() -> None:
    print("One straggling leader (instance 3, 10x slower), 8 replicas, WAN\n")
    for protocol in ("iss-pbft", "ladon-pbft"):
        metrics, violations, confirmed = run(protocol)
        print(f"{protocol}:")
        print(f"  confirmed blocks            : {confirmed}")
        print(f"  causality violations        : {violations}")
        print(f"  causal strength CS = e^-N/n : {metrics.causal_strength:.4f}")
        if violations:
            print("  -> every violation is a window in which an adversary could have")
            print("     front-run an already-committed transaction (Sec. 4.3).")
        else:
            print("  -> no block jumped ahead of an already-committed one; nothing to front-run.")
        print()


if __name__ == "__main__":
    main()
