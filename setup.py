"""Setup shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose ``pip``/``setuptools`` combination lacks the ``wheel``
package required by the PEP 660 build path (``pip install -e . --no-use-pep517``
falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
