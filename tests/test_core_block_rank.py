"""Tests for blocks, the ordering relation and monotonic rank bookkeeping."""

import pytest

from repro.core.block import Block, BlockId, ordering_key, precedes
from repro.core.rank import (
    RankCertificate,
    RankReport,
    RankState,
    choose_rank,
    merge_reports,
)


def make_block(instance=0, round=1, rank=0, **kwargs):
    return Block(instance=instance, round=round, rank=rank, **kwargs)


class TestBlock:
    def test_block_id(self):
        assert make_block(instance=2, round=5).block_id == BlockId(instance=2, round=5)

    def test_tx_count_from_txs(self):
        block = make_block(txs=("a", "b", "c"))
        assert block.tx_count == 3

    def test_tx_count_from_hint(self):
        block = make_block(tx_count_hint=4096)
        assert block.tx_count == 4096

    def test_materialised_txs_take_priority_over_hint(self):
        block = make_block(txs=("a",), tx_count_hint=10)
        assert block.tx_count == 1

    def test_payload_digest_filled(self):
        assert make_block().payload_digest != ""

    def test_with_commit_time(self):
        block = make_block()
        committed = block.with_commit_time(4.5)
        assert committed.committed_at == 4.5
        assert committed.block_id == block.block_id
        assert block.committed_at is None

    @pytest.mark.parametrize("field,value", [("rank", -1), ("round", -1), ("instance", -1)])
    def test_negative_fields_rejected(self, field, value):
        kwargs = {"instance": 0, "round": 1, "rank": 0}
        kwargs[field] = value
        with pytest.raises(ValueError):
            Block(**kwargs)


class TestOrderingRelation:
    def test_lower_rank_precedes(self):
        assert precedes(make_block(rank=1, instance=5), make_block(rank=2, instance=0))

    def test_tie_broken_by_instance(self):
        assert precedes(make_block(rank=3, instance=0), make_block(rank=3, instance=1))
        assert not precedes(make_block(rank=3, instance=1), make_block(rank=3, instance=0))

    def test_not_reflexive(self):
        block = make_block(rank=2, instance=2)
        assert not precedes(block, block)

    def test_ordering_key_matches_relation(self):
        a = make_block(rank=1, instance=3)
        b = make_block(rank=2, instance=0)
        assert (ordering_key(a) < ordering_key(b)) == precedes(a, b)


class TestRankState:
    def test_observe_advances(self):
        state = RankState()
        assert state.observe(5)
        assert state.rank == 5

    def test_observe_ignores_lower_or_equal(self):
        state = RankState()
        state.observe(5)
        assert not state.observe(5)
        assert not state.observe(3)
        assert state.rank == 5

    def test_observe_keeps_certificate(self):
        state = RankState()
        cert = RankCertificate(rank=7, signer_count=3)
        state.observe(7, cert)
        assert state.certificate is cert

    def test_report_carries_state(self):
        state = RankState()
        state.observe(9)
        report = state.report(replica=2, view=0, round=4, instance=1)
        assert report.rank == 9
        assert report.replica == 2
        assert report.round == 4


def _report(replica, rank):
    return RankReport(replica=replica, rank=rank, view=0, round=1, instance=0)


class TestChooseRank:
    def test_honest_takes_max_plus_one(self):
        reports = [_report(0, 3), _report(1, 2), _report(2, 2)]
        rank, winning = choose_rank(reports, quorum=3, max_rank=100)
        assert rank == 4
        assert winning.replica == 0

    def test_clamped_to_max_rank(self):
        reports = [_report(0, 63), _report(1, 63), _report(2, 62)]
        rank, _ = choose_rank(reports, quorum=3, max_rank=63)
        assert rank == 63

    def test_requires_quorum(self):
        with pytest.raises(ValueError):
            choose_rank([_report(0, 1)], quorum=3, max_rank=10)

    def test_byzantine_discards_highest_when_extra_reports(self):
        # Appendix B case 3: ranks {3, 2, 2, 2} with quorum 3 -> honest picks
        # 4, a manipulating leader keeps the lowest three and picks 3.
        reports = [_report(0, 3), _report(1, 2), _report(2, 2), _report(3, 2)]
        honest_rank, _ = choose_rank(reports, quorum=3, max_rank=100)
        byz_rank, _ = choose_rank(reports, quorum=3, max_rank=100, byzantine_minimize=True)
        assert honest_rank == 4
        assert byz_rank == 3

    def test_byzantine_with_exact_quorum_cannot_manipulate(self):
        reports = [_report(0, 3), _report(1, 2), _report(2, 2)]
        byz_rank, _ = choose_rank(reports, quorum=3, max_rank=100, byzantine_minimize=True)
        assert byz_rank == 4

    def test_byzantine_rank_at_least_median_of_reports(self):
        # Sec. 4.4: the manipulated rank is >= the median reported rank + 1.
        reports = [_report(i, rank) for i, rank in enumerate([10, 9, 8, 7, 6, 5, 4])]
        quorum = 5
        byz_rank, _ = choose_rank(reports, quorum=quorum, max_rank=1000, byzantine_minimize=True)
        median = sorted(r.rank for r in reports)[len(reports) // 2]
        assert byz_rank >= median + 1


class TestMergeReports:
    def test_keeps_highest_per_replica(self):
        merged = merge_reports([_report(0, 3), _report(1, 2)], [_report(0, 5)])
        by_replica = {r.replica: r.rank for r in merged}
        assert by_replica == {0: 5, 1: 2}

    def test_sorted_by_replica(self):
        merged = merge_reports([_report(2, 1)], [_report(0, 1), _report(1, 1)])
        assert [r.replica for r in merged] == [0, 1, 2]


class TestRankCertificate:
    def test_genesis_certificate(self):
        cert = RankCertificate(rank=0)
        assert cert.is_genesis()
        assert cert.size_bytes == 8

    def test_modelled_certificate_size_grows_with_signers(self):
        small = RankCertificate(rank=1, signer_count=3)
        large = RankCertificate(rank=1, signer_count=85)
        assert not small.is_genesis()
        assert large.size_bytes > small.size_bytes
