"""Tests for rotating buckets, the epoch pacemaker and checkpoints."""

import pytest

from repro.consensus.checkpoint import CheckpointManager
from repro.core.buckets import RotatingBuckets
from repro.core.epoch import EpochConfig, EpochPacemaker
from repro.workload.transactions import TransactionFactory


class TestRotatingBuckets:
    def test_requires_enough_buckets(self):
        with pytest.raises(ValueError):
            RotatingBuckets(num_buckets=2, num_instances=4)

    def test_transaction_maps_to_stable_bucket(self):
        buckets = RotatingBuckets(num_buckets=8, num_instances=4)
        assert buckets.bucket_of(1234) == buckets.bucket_of(1234)

    def test_every_bucket_assigned_each_epoch(self):
        buckets = RotatingBuckets(num_buckets=8, num_instances=4)
        assignment = buckets.assignment_for_epoch(0)
        assigned = [b for ids in assignment.values() for b in ids]
        assert sorted(assigned) == list(range(8))

    def test_assignment_rotates_between_epochs(self):
        buckets = RotatingBuckets(num_buckets=8, num_instances=4)
        epoch0 = buckets.assignment_for_epoch(0)
        epoch1 = buckets.assignment_for_epoch(1)
        assert epoch0 != epoch1

    def test_rotation_covers_all_instances(self):
        # Censorship resistance: every bucket visits every instance over m epochs.
        buckets = RotatingBuckets(num_buckets=4, num_instances=4)
        visited = {bucket: set() for bucket in range(4)}
        for epoch in range(4):
            for instance, ids in buckets.assignment_for_epoch(epoch).items():
                for bucket in ids:
                    visited[bucket].add(instance)
        assert all(len(instances) == 4 for instances in visited.values())

    def test_add_and_cut(self):
        buckets = RotatingBuckets(num_buckets=4, num_instances=2)
        factory = TransactionFactory()
        txs = [factory.create(client_id=0, submitted_at=0.0) for _ in range(20)]
        for tx in txs:
            buckets.add_transaction(tx, tx_id=tx.tx_id)
        total_cut = 0
        for instance in range(2):
            batch = buckets.cut_batch(instance, epoch=0, max_txs=50)
            total_cut += len(batch)
        assert total_cut == 20
        assert buckets.pending_count() == 0

    def test_cut_respects_max(self):
        buckets = RotatingBuckets(num_buckets=2, num_instances=1)
        factory = TransactionFactory()
        for _ in range(10):
            tx = factory.create(client_id=0, submitted_at=0.0)
            buckets.add_transaction(tx, tx_id=tx.tx_id)
        batch = buckets.cut_batch(0, epoch=0, max_txs=3)
        assert len(batch) == 3
        assert buckets.pending_count() == 7

    def test_no_transaction_in_two_instances(self):
        buckets = RotatingBuckets(num_buckets=6, num_instances=3)
        factory = TransactionFactory()
        for _ in range(60):
            tx = factory.create(client_id=1, submitted_at=0.0)
            buckets.add_transaction(tx, tx_id=tx.tx_id)
        seen = set()
        for instance in range(3):
            for tx in buckets.cut_batch(instance, epoch=0, max_txs=100):
                assert tx.tx_id not in seen
                seen.add(tx.tx_id)


class TestEpochConfig:
    def test_rank_ranges_follow_paper(self):
        config = EpochConfig(length=64, num_instances=4)
        assert config.min_rank(0) == 0
        assert config.max_rank(0) == 63
        assert config.min_rank(1) == 64
        assert config.max_rank(2) == 191

    def test_epoch_of_rank(self):
        config = EpochConfig(length=10, num_instances=2)
        assert config.epoch_of_rank(0) == 0
        assert config.epoch_of_rank(9) == 0
        assert config.epoch_of_rank(10) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            EpochConfig(length=0, num_instances=1)
        with pytest.raises(ValueError):
            EpochConfig(length=4, num_instances=0)


class TestEpochPacemaker:
    def _pacemaker(self, m=2, length=4, quorum=3):
        return EpochPacemaker(EpochConfig(length=length, num_instances=m), quorum=quorum)

    def test_epoch_not_complete_until_all_instances_reach_max_rank(self):
        pacemaker = self._pacemaker()
        pacemaker.observe_commit(instance=0, rank=3, now=1.0)
        assert not pacemaker.epoch_complete()
        pacemaker.observe_commit(instance=1, rank=3, now=2.0)
        assert pacemaker.epoch_complete()

    def test_lower_ranks_do_not_complete_epoch(self):
        pacemaker = self._pacemaker()
        pacemaker.observe_commit(instance=0, rank=2, now=1.0)
        pacemaker.observe_commit(instance=1, rank=2, now=1.0)
        assert not pacemaker.epoch_complete()

    def test_advance_requires_completion_and_checkpoint(self):
        pacemaker = self._pacemaker()
        pacemaker.observe_commit(instance=0, rank=3, now=1.0)
        pacemaker.observe_commit(instance=1, rank=3, now=1.0)
        assert not pacemaker.try_advance(now=2.0)  # no stable checkpoint yet
        for replica in range(3):
            pacemaker.observe_checkpoint(0, replica)
        assert pacemaker.try_advance(now=3.0)
        assert pacemaker.current_epoch == 1
        assert pacemaker.min_rank() == 4

    def test_checkpoint_becomes_stable_exactly_once(self):
        pacemaker = self._pacemaker()
        assert not pacemaker.observe_checkpoint(0, 0)
        assert not pacemaker.observe_checkpoint(0, 1)
        assert pacemaker.observe_checkpoint(0, 2)
        assert not pacemaker.observe_checkpoint(0, 3)

    def test_advancement_log(self):
        pacemaker = self._pacemaker()
        pacemaker.observe_commit(0, 3, 1.0)
        pacemaker.observe_commit(1, 3, 1.0)
        for replica in range(3):
            pacemaker.observe_checkpoint(0, replica)
        pacemaker.try_advance(now=5.0)
        assert pacemaker.advancement_log == [(5.0, 1)]


class TestCheckpointManager:
    def test_stable_after_quorum(self):
        manager = CheckpointManager(replica_id=0, quorum=3)
        msg = manager.build_checkpoint(epoch=0, confirmed_count=10)
        assert manager.on_checkpoint(msg) is False
        from repro.consensus.messages import CheckpointMessage

        for sender in (1, 2):
            vote = CheckpointMessage(
                sender=sender, instance=-1, view=0, round=0, epoch=0, state_digest=msg.state_digest
            )
            became_stable = manager.on_checkpoint(vote)
        assert became_stable is True
        assert manager.is_stable(0)
        assert manager.votes(0) == 3

    def test_different_epochs_tracked_separately(self):
        manager = CheckpointManager(replica_id=0, quorum=2)
        manager.build_checkpoint(epoch=0, confirmed_count=5)
        manager.build_checkpoint(epoch=1, confirmed_count=9)
        from repro.consensus.messages import CheckpointMessage

        manager.on_checkpoint(CheckpointMessage(sender=0, instance=-1, view=0, round=0, epoch=0))
        manager.on_checkpoint(CheckpointMessage(sender=1, instance=-1, view=0, round=0, epoch=1))
        assert not manager.is_stable(0)
        assert not manager.is_stable(1)
