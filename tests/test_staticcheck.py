"""Tests for :mod:`repro.staticcheck` — the determinism & isolation suite.

Covers:

* a positive (violating) and negative (clean near-miss) fixture for every
  rule ID, driven through the real engine via ``check_source``;
* inline suppressions: same-line, standalone-line, wildcard, wrong-id,
  and the mandatory-reason policy (``SC-001``);
* rule selection (`--select`/`--ignore` semantics) and the baseline file;
* the CLI: exit codes, text and JSON output schemas, ``--list-rules``;
* **the enforcement test**: the full suite over ``src/repro/`` must report
  zero violations — this is what makes the invariants permanent.
"""

import json
import os

import pytest

from repro.staticcheck import (
    ALL_RULES,
    ALL_RULE_IDS,
    check_paths,
    check_source,
    select_rules,
)
from repro.staticcheck.baseline import load_baseline, write_baseline
from repro.staticcheck.cli import main as cli_main

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

HOT = "# staticcheck: hot-path\n"

#: rule id -> (dotted module the fixture pretends to live in, violating code)
POSITIVE_FIXTURES = {
    "SEAM-001": (
        "repro.protocols._fixture",
        "from repro.sim.simulator import Simulator\n",
    ),
    "SEAM-002": ("repro.consensus._fixture", "import asyncio\n"),
    "DET-001": (
        # sim, not consensus: in a sans-I/O package the bare ``import time``
        # would *also* fire SEAM-002, muddying the selection tests
        "repro.sim._fixture",
        "import time\n\ndef f():\n    return time.time()\n",
    ),
    "DET-002": (
        "repro.core._fixture",
        "import random\n\ndef f():\n    return random.randint(0, 10)\n",
    ),
    "DET-003": (
        "repro.sim._fixture",
        "import os\n\ndef f():\n    return os.urandom(8)\n",
    ),
    "DET-004": (
        "repro.core._fixture",
        "def f(blocks):\n    return sorted(blocks, key=id)\n",
    ),
    "DET-005": (
        "repro.scenario._fixture",
        "def f(xs):\n    for x in set(xs):\n        print(x)\n",
    ),
    "ISO-001": ("repro.consensus._fixture", "PENDING = {}\n"),
    "ISO-002": (
        "repro.consensus._fixture",
        "class H:\n"
        "    def on_message(self, sender, message):\n"
        "        message.count += 1\n",
    ),
    "ISO-003": (
        "repro.consensus._fixture",
        "class M:\n"
        "    def poke(self):\n"
        "        object.__setattr__(self, 'x', 1)\n",
    ),
    "HOT-001": (
        "repro.consensus._fixture",
        HOT + "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class FooMessage:\n"
        "    a: int\n",
    ),
    "HOT-002": (
        "repro.consensus._fixture",
        HOT + "def f(x):\n    return f'value={x}'\n",
    ),
    "HOT-003": (
        "repro.metrics._fixture",
        "def f(x, acc=[]):\n    acc.append(x)\n    return acc\n",
    ),
    "SHARD-001": (
        "repro.shard._fixture",
        "import multiprocessing\n\n"
        "def hub():\n"
        "    return multiprocessing.Manager().dict()\n",
    ),
    "SHARD-002": (
        "repro.shard._fixture",
        "import pickle\n\ndef encode(x):\n    return pickle.dumps(x)\n",
    ),
}

#: rule id -> clean near-miss code in the same scope (must NOT fire that rule)
NEGATIVE_FIXTURES = {
    "SEAM-001": (
        "repro.protocols._fixture",
        "from typing import TYPE_CHECKING\n"
        "from repro.sim.latency import UniformLatency\n"
        "if TYPE_CHECKING:\n"
        "    from repro.sim.network import Network\n",
    ),
    "SEAM-002": (
        "repro.sim._fixture",  # sim package is allowed to see the engine
        "import time\n",
    ),
    "DET-001": (
        "repro.consensus._fixture",
        "def f(self):\n    return self.runtime.now()\n",
    ),
    "DET-002": (
        "repro.core._fixture",
        "import random\n\ndef f(seed):\n    return random.Random(seed).random()\n",
    ),
    "DET-003": (
        "repro.sim._fixture",
        "import uuid\n\ndef f(s):\n    return uuid.UUID(s)\n",
    ),
    "DET-004": (
        "repro.core._fixture",
        "def f(blocks):\n    return sorted(blocks, key=lambda b: b.rank)\n",
    ),
    "DET-005": (
        "repro.scenario._fixture",
        "def f(xs):\n"
        "    if 3 in {1, 2, 3}:\n"
        "        pass\n"
        "    for x in sorted(set(xs)):\n"
        "        print(x)\n"
        "    for y in dict.fromkeys(xs):\n"
        "        print(y)\n",
    ),
    "ISO-001": (
        "repro.consensus._fixture",
        "from types import MappingProxyType\n"
        "from typing import Dict\n"
        "__all__ = ['KINDS']\n"
        "KINDS = ('a', 'b')\n"
        "TABLE = MappingProxyType({'a': 1})\n"
        "annotated_only: Dict[str, int]\n",
    ),
    "ISO-002": (
        "repro.consensus._fixture",
        "class H:\n"
        "    def on_message(self, sender, message):\n"
        "        votes = list(message.votes)\n"
        "        votes.append(sender)\n"
        "        self.count += message.weight\n"
        "    def helper(self, accumulator):\n"
        "        accumulator.append(1)\n",
    ),
    "ISO-003": (
        "repro.consensus._fixture",
        "class M:\n"
        "    def __post_init__(self):\n"
        "        object.__setattr__(self, 'size', 10)\n",
    ),
    "HOT-001": (
        "repro.consensus._fixture",
        HOT + "from dataclasses import dataclass\n\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class FooMessage:\n"
        "    a: int\n\n"
        "@dataclass(slots=True)\n"
        "class RoundState:\n"  # not a message: mutable per-round log entry
        "    r: int\n",
    ),
    "HOT-002": (
        "repro.consensus._fixture",
        HOT + "def f(x):\n"
        "    if x < 0:\n"
        "        raise ValueError(f'bad {x}')\n"
        "    assert x < 100, f'huge {x}'\n"
        "    return x\n\n"
        "class C:\n"
        "    def __repr__(self):\n"
        "        return f'C({self!r})'\n",
    ),
    "HOT-003": (
        "repro.metrics._fixture",
        "def f(x, acc=None, tail=()):\n"
        "    acc = [] if acc is None else acc\n"
        "    acc.append(x)\n"
        "    return acc\n",
    ),
    "SHARD-001": (
        # message passing (Pipe/Process from a context) is the sanctioned
        # idiom; only *shared* state is banned
        "repro.shard._fixture",
        "import multiprocessing\n\n"
        "def spawn(entry):\n"
        "    ctx = multiprocessing.get_context('fork')\n"
        "    parent, child = ctx.Pipe(duplex=True)\n"
        "    return ctx.Process(target=entry, args=(child,)), parent\n",
    ),
    "SHARD-002": (
        # repro.shard.ipc is the chokepoint: pickling there is the point
        "repro.shard.ipc",
        "import pickle\n\ndef encode(x):\n    return pickle.dumps(x)\n",
    ),
}


def rule_ids(violations):
    return [v.rule for v in violations]


# ------------------------------------------------------------ rule fixtures
class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(POSITIVE_FIXTURES))
    def test_positive_fixture_fires(self, rule_id):
        module, source = POSITIVE_FIXTURES[rule_id]
        found = rule_ids(check_source(source, module=module))
        assert rule_id in found, f"{rule_id} did not fire on its fixture"

    @pytest.mark.parametrize("rule_id", sorted(NEGATIVE_FIXTURES))
    def test_negative_fixture_is_clean(self, rule_id):
        module, source = NEGATIVE_FIXTURES[rule_id]
        found = rule_ids(check_source(source, module=module))
        assert rule_id not in found, f"{rule_id} false-positive on clean code"

    def test_every_rule_has_both_fixtures(self):
        assert set(POSITIVE_FIXTURES) == set(ALL_RULE_IDS)
        assert set(NEGATIVE_FIXTURES) == set(ALL_RULE_IDS)

    def test_rules_scope_by_package(self):
        # the same wall-clock call is fine in bench (measurement code) and
        # in the realtime backend (it IS the wall clock)
        _, source = POSITIVE_FIXTURES["DET-001"]
        assert not check_source(source, module="repro.bench._fixture")
        assert not check_source(source, module="repro.runtime.realtime")
        # engine imports are fine outside the sans-I/O packages
        _, seam = POSITIVE_FIXTURES["SEAM-001"]
        assert not check_source(seam, module="repro.bench._fixture")

    def test_seam_catches_aliased_and_submodule_imports(self):
        for source in (
            "import repro.sim.simulator as sim_engine\n",
            "from repro.sim import network\n",
        ):
            found = rule_ids(check_source(source, module="repro.consensus._fixture"))
            assert "SEAM-001" in found, source

    def test_det_follows_import_aliases(self):
        source = "from time import time as now\n\ndef f():\n    return now()\n"
        found = rule_ids(check_source(source, module="repro.core._fixture"))
        assert "DET-001" in found

    def test_hot_rules_require_the_marker(self):
        _, source = POSITIVE_FIXTURES["HOT-002"]
        unmarked = source.replace(HOT, "")
        assert "HOT-002" not in rule_ids(
            check_source(unmarked, module="repro.consensus._fixture")
        )


# ------------------------------------------------------------- suppressions
class TestSuppressions:
    MODULE = "repro.consensus._fixture"

    def test_same_line_suppression(self):
        source = "PENDING = {}  # staticcheck: ignore[ISO-001] -- registry seeded before fork\n"
        assert not check_source(source, module=self.MODULE)

    def test_standalone_line_suppression_covers_next_line(self):
        source = (
            "# staticcheck: ignore[ISO-001] -- registry seeded before fork\n"
            "PENDING = {}\n"
        )
        assert not check_source(source, module=self.MODULE)

    def test_wildcard_suppression(self):
        source = "PENDING = {}  # staticcheck: ignore[*] -- fixture\n"
        assert not check_source(source, module=self.MODULE)

    def test_wrong_rule_id_does_not_suppress(self):
        source = "PENDING = {}  # staticcheck: ignore[DET-001] -- wrong id\n"
        assert "ISO-001" in rule_ids(check_source(source, module=self.MODULE))

    def test_reasonless_suppression_is_an_sc001_violation(self):
        source = "PENDING = {}  # staticcheck: ignore[ISO-001]\n"
        found = rule_ids(check_source(source, module=self.MODULE))
        assert "ISO-001" not in found  # the suppression still works ...
        assert "SC-001" in found  # ... but the missing reason is flagged

    def test_multiple_ids_in_one_comment(self):
        source = (
            "def f(x, acc=[]):  # staticcheck: ignore[HOT-003,DET-001] -- fixture\n"
            "    return acc\n"
        )
        assert not check_source(source, module="repro.metrics._fixture")


# ---------------------------------------------------------------- selection
class TestSelection:
    def test_family_prefix_selects_all_members(self):
        det = select_rules(["DET"])
        assert [rule.id for rule in det] == [
            "DET-001",
            "DET-002",
            "DET-003",
            "DET-004",
            "DET-005",
        ]

    def test_ignore_drops_members(self):
        remaining = {rule.id for rule in select_rules(ignore=["HOT", "SEAM-001"])}
        assert "SEAM-002" in remaining
        assert not remaining & {"HOT-001", "HOT-002", "HOT-003", "SEAM-001"}

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="unknown rule selector"):
            select_rules(["NOPE-999"])

    def test_rule_metadata_complete(self):
        for rule in ALL_RULES:
            assert rule.id and rule.name and rule.scope
            assert rule.severity in ("warning", "error")


# ----------------------------------------------------------------- baseline
class TestBaseline:
    def test_roundtrip_filters_known_violations(self, tmp_path):
        module, source = POSITIVE_FIXTURES["ISO-001"]
        violations = check_source(source, module=module)
        assert violations
        path = tmp_path / "baseline.json"
        count = write_baseline(str(path), violations)
        assert count == len(violations)
        fingerprints = load_baseline(str(path))
        assert set(fingerprints) == {v.fingerprint for v in violations}

    def test_bad_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(str(path))


# --------------------------------------------------------------------- CLI
def _fixture_tree(tmp_path, rule_id):
    """Materialise one positive fixture as a real repro-shaped tree."""
    module, source = POSITIVE_FIXTURES[rule_id]
    relpath = os.path.join(*module.split(".")) + ".py"
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(tmp_path)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = _fixture_tree(tmp_path, "ISO-001")
        clean = tmp_path / "repro" / "consensus" / "_fixture.py"
        clean.write_text("KINDS = ('a', 'b')\n")
        assert cli_main([root]) == 0
        assert "0 violations" in capsys.readouterr().out

    @pytest.mark.parametrize("rule_id", sorted(POSITIVE_FIXTURES))
    def test_each_rule_fails_the_cli(self, tmp_path, capsys, rule_id):
        root = _fixture_tree(tmp_path, rule_id)
        assert cli_main([root]) == 1
        assert rule_id in capsys.readouterr().out

    def test_json_output_schema(self, tmp_path, capsys):
        root = _fixture_tree(tmp_path, "DET-001")
        assert cli_main([root, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["exit_code"] == 1
        assert payload["checked_files"] == 1
        assert payload["counts"].get("DET-001", 0) >= 1
        (violation,) = [
            v for v in payload["violations"] if v["rule"] == "DET-001"
        ]
        for key in ("path", "line", "col", "severity", "message", "snippet", "fingerprint"):
            assert key in violation
        assert violation["severity"] == "error"
        assert violation["line"] == 4

    def test_select_and_ignore(self, tmp_path):
        root = _fixture_tree(tmp_path, "DET-001")
        assert cli_main([root, "--select", "SEAM"]) == 0
        assert cli_main([root, "--select", "DET-001"]) == 1
        assert cli_main([root, "--ignore", "DET"]) == 0

    def test_unknown_selector_is_usage_error(self, tmp_path):
        root = _fixture_tree(tmp_path, "DET-001")
        with pytest.raises(SystemExit) as excinfo:
            cli_main([root, "--select", "BOGUS"])
        assert excinfo.value.code == 2

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["definitely/not/here"])
        assert excinfo.value.code == 2

    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_baseline_flow(self, tmp_path, capsys):
        root = _fixture_tree(tmp_path, "HOT-003")
        baseline = tmp_path / "baseline.json"
        assert cli_main([root, "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert cli_main([root, "--baseline", str(baseline)]) == 0

    def test_syntax_error_reported_not_crashing(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def broken(:\n")
        assert cli_main([str(tmp_path)]) == 1
        assert "SC-000" in capsys.readouterr().out


# ------------------------------------------------------- the enforcement test
class TestShippedTree:
    def test_full_suite_over_src_repro_is_clean(self):
        """The tentpole invariant: every SEAM/DET/ISO/HOT rule holds over the
        shipped tree (or carries an explicit, reasoned suppression)."""
        report = check_paths([os.path.join(SRC, "repro")])
        details = "\n".join(
            v.format_text() for v in report.parse_errors + report.violations
        )
        assert report.exit_code == 0, f"staticcheck violations:\n{details}"
        assert report.checked_files > 70  # the walk really saw the tree

    def test_hot_modules_are_marked(self):
        """The PR 5 flyweight/hot-path modules must stay opted in to HOT."""
        from repro.staticcheck.engine import SourceModule

        for relpath in (
            "consensus/messages.py",
            "consensus/quorum.py",
            "consensus/pbft.py",
            "core/ordering.py",
            "sim/network.py",
            "sim/events.py",
            "sim/simulator.py",
            "runtime/des.py",
        ):
            module = SourceModule.from_path(os.path.join(SRC, "repro", relpath))
            assert module.is_hot, f"{relpath} lost its hot-path marker"

    def test_every_shipped_suppression_has_a_reason(self):
        """Redundant with SC-001 but cheap: grep the tree for reasonless
        suppressions so the policy failure names the file directly."""
        offenders = []
        for root, dirs, names in os.walk(os.path.join(SRC, "repro")):
            # the checker's own sources document the syntax; skip them like
            # the engine's discovery does
            dirs[:] = [d for d in dirs if d != "staticcheck"]
            for name in names:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                with open(path, encoding="utf-8") as handle:
                    for lineno, line in enumerate(handle, start=1):
                        if "staticcheck: ignore[" in line and "--" not in line:
                            offenders.append(f"{path}:{lineno}")
        assert not offenders, f"suppressions without reasons: {offenders}"
