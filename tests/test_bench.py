"""Tests for the benchmark harness: cells, runner, analytical engine, report."""

import pytest

from repro.bench.analytical import AnalyticalConfig, run_analytical
from repro.bench.config import ExperimentCell
from repro.bench.report import format_series, format_table
from repro.bench.runner import metrics_by_label, run_cell
from repro.bench import experiments


class TestExperimentCell:
    def test_block_rate_defaults(self):
        assert ExperimentCell(protocol="iss-pbft", n=8, environment="wan").block_rate() == 16.0
        assert ExperimentCell(protocol="iss-pbft", n=8, environment="lan").block_rate() == 32.0
        assert ExperimentCell(protocol="iss-pbft", n=8, total_block_rate=4.0).block_rate() == 4.0

    def test_to_system_config_carries_faults(self):
        cell = ExperimentCell(protocol="ladon-pbft", n=8, stragglers=2, byzantine=True)
        config = cell.to_system_config()
        assert config.faults.straggler_count() == 2
        assert all(s.byzantine for s in config.faults.stragglers)

    def test_label(self):
        cell = ExperimentCell(protocol="ladon-pbft", n=16, stragglers=1, byzantine=True)
        assert cell.label() == "ladon-pbft-n16-s1-byz-wan"


class TestAnalyticalEngine:
    def test_deterministic(self):
        config = AnalyticalConfig(protocol="ladon-pbft", n=16, stragglers=1, duration=60.0, seed=3)
        a = run_analytical(config)
        b = run_analytical(config)
        assert a.throughput_tps == b.throughput_tps
        assert a.average_latency_s == b.average_latency_s

    def test_no_straggler_protocols_comparable(self):
        ladon = run_analytical(AnalyticalConfig(protocol="ladon-pbft", n=32, duration=60.0))
        iss = run_analytical(AnalyticalConfig(protocol="iss-pbft", n=32, duration=60.0))
        assert ladon.throughput_tps == pytest.approx(iss.throughput_tps, rel=0.1)

    def test_straggler_separates_ladon_from_iss(self):
        ladon = run_analytical(
            AnalyticalConfig(protocol="ladon-pbft", n=32, stragglers=1, duration=120.0)
        )
        iss = run_analytical(
            AnalyticalConfig(protocol="iss-pbft", n=32, stragglers=1, duration=120.0)
        )
        assert ladon.throughput_tps > 3 * iss.throughput_tps
        assert iss.average_latency_s > ladon.average_latency_s

    def test_dqbft_declines_at_scale(self):
        small = run_analytical(AnalyticalConfig(protocol="dqbft", n=16, duration=60.0))
        large = run_analytical(AnalyticalConfig(protocol="dqbft", n=128, duration=60.0))
        assert large.throughput_tps < 0.8 * small.throughput_tps

    def test_ladon_causal_strength_one(self):
        metrics = run_analytical(
            AnalyticalConfig(protocol="ladon-pbft", n=16, stragglers=2, duration=120.0)
        )
        assert metrics.causal_strength == pytest.approx(1.0, abs=0.02)

    def test_lan_faster_than_wan(self):
        wan = run_analytical(AnalyticalConfig(protocol="iss-pbft", n=16, environment="wan", duration=60.0))
        lan = run_analytical(AnalyticalConfig(protocol="iss-pbft", n=16, environment="lan", duration=60.0))
        assert lan.average_latency_s < wan.average_latency_s
        assert lan.throughput_tps > wan.throughput_tps


class TestRunner:
    def test_run_cell_analytical(self):
        cell = ExperimentCell(protocol="iss-pbft", n=16, duration=30.0, engine="analytical")
        metrics = run_cell(cell)
        assert metrics.protocol == "iss-pbft"
        assert metrics.throughput_tps > 0

    def test_run_cell_des_small(self):
        cell = ExperimentCell(
            protocol="ladon-pbft", n=4, duration=4.0, batch_size=32,
            total_block_rate=8.0, environment="lan", engine="des",
        )
        metrics = run_cell(cell)
        assert metrics.confirmed_blocks > 0

    def test_metrics_by_label(self):
        cells = [
            ExperimentCell(protocol="iss-pbft", n=8, duration=20.0, engine="analytical"),
            ExperimentCell(protocol="ladon-pbft", n=8, duration=20.0, engine="analytical"),
        ]
        results = metrics_by_label(cells)
        assert set(results) == {"iss-pbft-n8-s0-wan", "ladon-pbft-n8-s0-wan"}


class TestExperimentFunctions:
    def test_fig2a_analytical_shapes(self):
        data = experiments.fig2a_analytical(rounds=20)
        assert len(data["predetermined_queued"]) == 20
        assert data["predetermined_queued"][-1] > data["dynamic_queued"][-1] * 0  # both defined
        assert data["throughput_ratio"] == pytest.approx(0.1)

    def test_appendix_a_rows(self):
        rows = experiments.appendix_a_complexity(replica_counts=(4, 16))
        assert len(rows) == 6
        assert {row["protocol"] for row in rows} == {"pbft", "ladon-pbft", "ladon-opt"}

    def test_fig5_scaling_small_grid(self):
        rows = experiments.fig5_scaling(
            replica_counts=(8,),
            protocols=("ladon-pbft", "iss-pbft"),
            environments=("wan",),
            straggler_counts=(0, 1),
            duration=60.0,
        )
        assert len(rows) == 4
        with_straggler = {r["protocol"]: r for r in rows if r["stragglers"] == 1}
        assert with_straggler["ladon-pbft"]["throughput_tps"] > with_straggler["iss-pbft"]["throughput_tps"]


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.001}]
        text = format_table(rows, columns=["a", "b"], title="demo")
        assert "demo" in text
        assert "10" in text

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], columns=["a"])

    def test_format_series(self):
        text = format_series([(0.0, 1.0), (1.0, 2.0)], title="tps")
        assert "tps" in text
        assert "#" in text
