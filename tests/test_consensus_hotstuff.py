"""Unit tests for chained HotStuff and Ladon-HotStuff (Algorithm 3)."""

import pytest

from repro.consensus.base import CollectingContext, InstanceConfig
from repro.consensus.hotstuff import HotStuffInstance
from repro.consensus.ladon_hotstuff import LadonHotStuffInstance
from repro.consensus.messages import HotStuffProposal, HotStuffVote
from repro.workload.transactions import Batch


N = 4
QUORUM = 3


def make_instance(cls=HotStuffInstance, replica_id=0, instance_id=0, rank=0, **kwargs):
    config = InstanceConfig(instance_id=instance_id, replica_id=replica_id, n=N)
    context = CollectingContext(rank=rank)
    return cls(config, context, **kwargs), context


def drive_chain(leader, leader_ctx, backups, rounds):
    """Drive ``rounds`` chained proposals end to end (leader + backups)."""
    all_nodes = [(leader, leader_ctx)] + backups
    for round in range(1, rounds + 1):
        proposal = leader.propose(Batch.synthetic(2, 0.0), now=float(round))
        assert proposal is not None, f"leader not ready at round {round}"
        for node, _ in all_nodes:
            node.on_message(proposal.sender, proposal)
        # Gather votes sent to the leader (and the leader's own local vote).
        votes = []
        for node, ctx in all_nodes:
            votes.extend(m for _, m, _ in ctx.sent if isinstance(m, HotStuffVote) and m.round == round)
        for vote in votes:
            leader.on_message(vote.sender, vote)


class TestChainedHotStuff:
    def test_leader_waits_for_qc_before_next_proposal(self):
        leader, ctx = make_instance()
        leader.propose(Batch.synthetic(1, 0.0), now=0.0)
        assert not leader.ready_to_propose()

    def test_three_chain_commit_rule(self):
        leader, leader_ctx = make_instance(replica_id=0)
        backups = [make_instance(replica_id=r) for r in range(1, N)]
        drive_chain(leader, leader_ctx, backups, rounds=3)
        # After 3 proposals nothing is committed yet (round 1 needs round 4).
        assert leader_ctx.delivered == []
        drive_chain(leader, leader_ctx, backups, rounds=0)  # no-op
        # The 4th proposal commits round 1 at every replica that saw it.
        proposal4 = leader.propose(Batch.synthetic(2, 0.0), now=10.0)
        for node, ctx in [(leader, leader_ctx)] + backups:
            node.on_message(proposal4.sender, proposal4)
            assert len(ctx.delivered) == 1
            assert ctx.delivered[0].round == 1

    def test_blocks_commit_in_round_order(self):
        leader, leader_ctx = make_instance(replica_id=0)
        backups = [make_instance(replica_id=r) for r in range(1, N)]
        drive_chain(leader, leader_ctx, backups, rounds=6)
        rounds = [b.round for b in leader_ctx.delivered]
        assert rounds == sorted(rounds)
        assert rounds == [1, 2, 3]

    def test_proposal_from_non_leader_rejected(self):
        backup, ctx = make_instance(replica_id=1)
        bogus = HotStuffProposal(sender=2, instance=0, view=0, round=1, digest="d", tx_count=1)
        backup.on_message(2, bogus)
        assert not any(isinstance(m, HotStuffVote) for _, m, _ in ctx.sent)

    def test_proposal_without_quorum_justification_rejected(self):
        backup, ctx = make_instance(replica_id=1)
        bogus = HotStuffProposal(
            sender=0, instance=0, view=0, round=2, digest="d", tx_count=1, justify_votes=1
        )
        backup.on_message(0, bogus)
        assert not any(isinstance(m, HotStuffVote) for _, m, _ in ctx.sent)

    def test_vote_quorum_advances_high_qc(self):
        leader, _ = make_instance()
        proposal = leader.propose(Batch.synthetic(1, 0.0), now=0.0)
        leader.on_message(0, proposal)
        for sender in range(QUORUM):
            leader.on_message(
                sender,
                HotStuffVote(sender=sender, instance=0, view=0, round=1, digest=proposal.digest),
            )
        assert leader.high_qc_round == 1
        assert leader.ready_to_propose()


class TestLadonHotStuff:
    def test_proposal_rank_is_cur_rank_plus_one(self):
        leader, ctx = make_instance(cls=LadonHotStuffInstance, rank=11)
        proposal = leader.propose(Batch.synthetic(1, 0.0), now=0.0)
        assert proposal.rank == 12
        assert proposal.rank_m == 11

    def test_backup_adopts_leaders_rank_m(self):
        backup, ctx = make_instance(cls=LadonHotStuffInstance, replica_id=1, rank=0)
        proposal = HotStuffProposal(
            sender=0, instance=0, view=0, round=1, digest="d", tx_count=1, rank=8, rank_m=7
        )
        backup.on_message(0, proposal)
        assert ctx.rank == 7

    def test_votes_carry_voters_cur_rank(self):
        backup, ctx = make_instance(cls=LadonHotStuffInstance, replica_id=1, rank=33)
        proposal = HotStuffProposal(
            sender=0, instance=0, view=0, round=1, digest="d", tx_count=1, rank=8, rank_m=7
        )
        backup.on_message(0, proposal)
        votes = [m for _, m, _ in ctx.sent if isinstance(m, HotStuffVote)]
        assert votes and votes[0].rank_m == 33

    def test_leader_adopts_highest_vote_rank(self):
        leader, ctx = make_instance(cls=LadonHotStuffInstance, rank=0)
        proposal = leader.propose(Batch.synthetic(1, 0.0), now=0.0)
        leader.on_message(0, proposal)
        leader.on_message(
            2, HotStuffVote(sender=2, instance=0, view=0, round=1, digest=proposal.digest, rank_m=55)
        )
        assert ctx.rank == 55

    def test_rank_clamped_to_epoch_max_stops_proposals(self):
        leader, ctx = make_instance(cls=LadonHotStuffInstance, rank=62)
        ctx.epoch_length = 64
        proposal = leader.propose(Batch.synthetic(1, 0.0), now=0.0)
        assert proposal.rank == 63
        assert leader.stopped_for_epoch
        leader.begin_epoch(1)
        assert not leader.stopped_for_epoch

    def test_full_chain_commits_blocks_with_monotonic_ranks(self):
        leader, leader_ctx = make_instance(cls=LadonHotStuffInstance, replica_id=0)
        backups = [make_instance(cls=LadonHotStuffInstance, replica_id=r) for r in range(1, N)]
        drive_chain(leader, leader_ctx, backups, rounds=6)
        ranks = [b.rank for b in leader_ctx.delivered]
        assert len(ranks) >= 2
        assert all(later > earlier for earlier, later in zip(ranks, ranks[1:]))
