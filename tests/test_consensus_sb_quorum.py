"""Tests for the Sequenced Broadcast abstraction and quorum tracking."""

import pytest

from repro.consensus.quorum import QuorumTracker
from repro.consensus.sb import NIL, InMemorySequencedBroadcast


class TestQuorumTracker:
    def test_fires_exactly_once_at_threshold(self):
        tracker = QuorumTracker(threshold=3)
        assert not tracker.add_vote("k", 0)
        assert not tracker.add_vote("k", 1)
        assert tracker.add_vote("k", 2)
        assert not tracker.add_vote("k", 3)

    def test_duplicate_votes_not_counted(self):
        tracker = QuorumTracker(threshold=3)
        tracker.add_vote("k", 0)
        assert not tracker.add_vote("k", 0)
        assert tracker.count("k") == 1

    def test_independent_keys(self):
        tracker = QuorumTracker(threshold=2)
        tracker.add_vote("a", 0)
        assert not tracker.has_quorum("a")
        tracker.add_vote("b", 0)
        assert tracker.add_vote("a", 1)
        assert not tracker.has_quorum("b")

    def test_voters_sorted(self):
        tracker = QuorumTracker(threshold=5)
        for voter in (3, 1, 2):
            tracker.add_vote("k", voter)
        assert tracker.voters("k") == (1, 2, 3)

    def test_clear(self):
        tracker = QuorumTracker(threshold=1)
        tracker.add_vote("k", 0)
        tracker.clear("k")
        assert not tracker.has_quorum("k")
        assert tracker.add_vote("k", 1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            QuorumTracker(threshold=0)


class TestSequencedBroadcast:
    def test_integrity_only_designated_sender(self):
        sb = InMemorySequencedBroadcast(sender=1, rounds=(1, 2))
        with pytest.raises(PermissionError):
            sb.broadcast("m", 1, by=2)

    def test_integrity_round_set_enforced(self):
        sb = InMemorySequencedBroadcast(sender=0, rounds=(1, 2))
        with pytest.raises(ValueError):
            sb.broadcast("m", 9)

    def test_integrity_message_set_enforced(self):
        sb = InMemorySequencedBroadcast(sender=0, rounds=(1,), allowed_messages=["a"])
        with pytest.raises(ValueError):
            sb.broadcast("b", 1)

    def test_agreement_single_delivery_per_round(self):
        sb = InMemorySequencedBroadcast(sender=0, rounds=(1,))
        sb.broadcast("m", 1)
        sb.broadcast("m", 1)  # same message is fine
        with pytest.raises(AssertionError):
            sb._deliver("other", 1)

    def test_termination_via_suspicion(self):
        sb = InMemorySequencedBroadcast(sender=0, rounds=(1, 2, 3))
        sb.broadcast("m", 2)
        sb.suspect()
        delivered = sb.delivered()
        assert delivered[2] == "m"
        assert delivered[1] is NIL and delivered[3] is NIL
        assert sb.is_complete()

    def test_deliver_callback_invoked(self):
        seen = []
        sb = InMemorySequencedBroadcast(
            sender=0, rounds=(1,), on_deliver=lambda msg, r: seen.append((msg, r))
        )
        sb.broadcast("m", 1)
        assert seen == [("m", 1)]


class ReferenceSetTracker:
    """The seed dict-of-sets tracker, kept inline as the equivalence oracle."""

    def __init__(self, threshold, track_post_quorum=True):
        self.threshold = threshold
        self.track_post_quorum = track_post_quorum
        self._votes = {}
        self._reached = set()

    def add_vote(self, key, voter):
        if key in self._reached:
            if self.track_post_quorum:
                self._votes.setdefault(key, set()).add(voter)
            return False
        voters = self._votes.setdefault(key, set())
        voters.add(voter)
        if len(voters) >= self.threshold:
            self._reached.add(key)
            return True
        return False

    def voters(self, key):
        return tuple(sorted(self._votes.get(key, set())))

    def count(self, key):
        return len(self._votes.get(key, set()))

    def has_quorum(self, key):
        return key in self._reached

    def clear(self, key):
        self._votes.pop(key, None)
        self._reached.discard(key)


class TestBitmaskEquivalence:
    """Property tests: the bitmask tracker ≡ the seed dict-of-sets tracker
    over randomized vote traces with late, duplicate, and post-quorum votes
    (and interleaved clears)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_vote_traces(self, seed):
        import random

        rng = random.Random(4000 + seed)
        n = rng.randint(4, 40)
        threshold = (2 * ((n - 1) // 3)) + 1
        track = bool(seed % 2)
        bitmask = QuorumTracker(threshold=threshold, track_post_quorum=track)
        reference = ReferenceSetTracker(threshold=threshold, track_post_quorum=track)
        keys = [(0, r, d) for r in range(1, 5) for d in range(2)]
        for step in range(600):
            key = rng.choice(keys)
            if rng.random() < 0.03:
                bitmask.clear(key)
                reference.clear(key)
                continue
            # Duplicate voters are common (network retransmissions) and
            # votes keep arriving long after quorum.
            voter = rng.randint(0, n - 1)
            assert bitmask.add_vote(key, voter) == reference.add_vote(key, voter), (
                f"divergence at step {step} key {key} voter {voter}"
            )
            assert bitmask.has_quorum(key) == reference.has_quorum(key)
            assert bitmask.count(key) == reference.count(key)
            assert bitmask.voters(key) == reference.voters(key)

    def test_post_quorum_votes_dropped_by_default(self):
        tracker = QuorumTracker(threshold=2)
        assert not tracker.add_vote("k", 0)
        assert tracker.add_vote("k", 1)
        # A post-quorum vote flood must not grow per-key state.
        before = tracker.count("k")
        for voter in range(2, 50):
            assert not tracker.add_vote("k", voter)
        assert tracker.count("k") == before == 2
        assert tracker.voters("k") == (0, 1)

    def test_post_quorum_tracking_opt_in(self):
        tracker = QuorumTracker(threshold=2, track_post_quorum=True)
        tracker.add_vote("k", 0)
        tracker.add_vote("k", 1)
        assert not tracker.add_vote("k", 5)
        assert tracker.count("k") == 3
        assert tracker.voters("k") == (0, 1, 5)
        assert tracker.has_quorum("k")

    def test_clear_releases_all_state(self):
        tracker = QuorumTracker(threshold=1)
        tracker.add_vote("k", 3)
        assert tracker.has_quorum("k")
        assert tracker.tracked_keys() == 1
        tracker.clear("k")
        assert tracker.tracked_keys() == 0
        assert not tracker.has_quorum("k")
        # The key can reach quorum again after a clear (fresh state).
        assert tracker.add_vote("k", 4)

    def test_large_voter_ids_supported(self):
        tracker = QuorumTracker(threshold=2)
        tracker.add_vote("k", 1000)
        assert tracker.add_vote("k", 2000)
        assert tracker.voters("k") == (1000, 2000)
