"""Tests for the Sequenced Broadcast abstraction and quorum tracking."""

import pytest

from repro.consensus.quorum import QuorumTracker
from repro.consensus.sb import NIL, InMemorySequencedBroadcast


class TestQuorumTracker:
    def test_fires_exactly_once_at_threshold(self):
        tracker = QuorumTracker(threshold=3)
        assert not tracker.add_vote("k", 0)
        assert not tracker.add_vote("k", 1)
        assert tracker.add_vote("k", 2)
        assert not tracker.add_vote("k", 3)

    def test_duplicate_votes_not_counted(self):
        tracker = QuorumTracker(threshold=3)
        tracker.add_vote("k", 0)
        assert not tracker.add_vote("k", 0)
        assert tracker.count("k") == 1

    def test_independent_keys(self):
        tracker = QuorumTracker(threshold=2)
        tracker.add_vote("a", 0)
        assert not tracker.has_quorum("a")
        tracker.add_vote("b", 0)
        assert tracker.add_vote("a", 1)
        assert not tracker.has_quorum("b")

    def test_voters_sorted(self):
        tracker = QuorumTracker(threshold=5)
        for voter in (3, 1, 2):
            tracker.add_vote("k", voter)
        assert tracker.voters("k") == (1, 2, 3)

    def test_clear(self):
        tracker = QuorumTracker(threshold=1)
        tracker.add_vote("k", 0)
        tracker.clear("k")
        assert not tracker.has_quorum("k")
        assert tracker.add_vote("k", 1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            QuorumTracker(threshold=0)


class TestSequencedBroadcast:
    def test_integrity_only_designated_sender(self):
        sb = InMemorySequencedBroadcast(sender=1, rounds=(1, 2))
        with pytest.raises(PermissionError):
            sb.broadcast("m", 1, by=2)

    def test_integrity_round_set_enforced(self):
        sb = InMemorySequencedBroadcast(sender=0, rounds=(1, 2))
        with pytest.raises(ValueError):
            sb.broadcast("m", 9)

    def test_integrity_message_set_enforced(self):
        sb = InMemorySequencedBroadcast(sender=0, rounds=(1,), allowed_messages=["a"])
        with pytest.raises(ValueError):
            sb.broadcast("b", 1)

    def test_agreement_single_delivery_per_round(self):
        sb = InMemorySequencedBroadcast(sender=0, rounds=(1,))
        sb.broadcast("m", 1)
        sb.broadcast("m", 1)  # same message is fine
        with pytest.raises(AssertionError):
            sb._deliver("other", 1)

    def test_termination_via_suspicion(self):
        sb = InMemorySequencedBroadcast(sender=0, rounds=(1, 2, 3))
        sb.broadcast("m", 2)
        sb.suspect()
        delivered = sb.delivered()
        assert delivered[2] == "m"
        assert delivered[1] is NIL and delivered[3] is NIL
        assert sb.is_complete()

    def test_deliver_callback_invoked(self):
        seen = []
        sb = InMemorySequencedBroadcast(
            sender=0, rounds=(1,), on_deliver=lambda msg, r: seen.append((msg, r))
        )
        sb.broadcast("m", 1)
        assert seen == [("m", 1)]
