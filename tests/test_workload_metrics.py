"""Tests for the workload substrate and the metrics package."""

import pytest

from repro.core.block import Block
from repro.core.ordering import ConfirmedBlock
from repro.metrics.collector import MetricsCollector
from repro.metrics.latency import LatencyAccumulator
from repro.metrics.resources import CryptoCostModel, ResourceModel
from repro.metrics.throughput import ThroughputSeries, peak_throughput
from repro.workload.clients import ClientPool
from repro.workload.generator import OpenLoopGenerator, WorkloadConfig, generate_transactions
from repro.workload.transactions import Batch, Transaction, TransactionFactory


class TestTransactions:
    def test_factory_ids_unique_and_increasing(self):
        factory = TransactionFactory()
        txs = [factory.create(0, 0.0) for _ in range(10)]
        ids = [tx.tx_id for tx in txs]
        assert ids == sorted(set(ids))

    def test_payload_size_default_500(self):
        tx = TransactionFactory().create(0, 0.0)
        assert tx.size_bytes == 500

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError):
            Transaction(tx_id=0, client_id=0, submitted_at=0.0, payload_bytes=0)


class TestBatch:
    def test_materialised_batch(self):
        factory = TransactionFactory()
        txs = [factory.create(0, float(i)) for i in range(4)]
        batch = Batch.from_txs(txs)
        assert batch.tx_count == 4
        assert batch.size_bytes == 2000
        assert batch.mean_submitted_at() == pytest.approx(1.5)

    def test_synthetic_batch(self):
        batch = Batch.synthetic(4096, submitted_at=3.0)
        assert batch.tx_count == 4096
        assert batch.size_bytes == 4096 * 500
        assert batch.mean_submitted_at() == 3.0

    def test_empty_batch(self):
        batch = Batch.empty()
        assert batch.tx_count == 0
        assert batch.size_bytes == 0

    def test_cannot_mix_representations(self):
        with pytest.raises(ValueError):
            Batch(txs=(1,), synthetic_count=5)


class TestWorkloadGenerator:
    def test_generate_transactions_count(self):
        config = WorkloadConfig(num_clients=4, arrival_rate_tps=100.0, seed=1)
        txs = generate_transactions(config, duration=2.0)
        assert len(txs) == 200
        assert txs[0].submitted_at <= txs[-1].submitted_at

    def test_open_loop_generator_streams_in_order(self):
        generator = OpenLoopGenerator(WorkloadConfig(num_clients=2, arrival_rate_tps=10.0))
        first = generator.transactions_until(1.0)
        second = generator.transactions_until(2.0)
        assert len(first) == 11  # arrivals at 0.0 .. 1.0 inclusive
        assert len(second) == 10
        assert generator.generated_count == 21

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_clients=0)
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_rate_tps=0)

    def test_open_loop_generator_with_profile_tracks_cumulative(self):
        from repro.workload.generator import RampTraffic

        profile = RampTraffic(start_tps=0.0, end_tps=100.0, ramp_duration=10.0)
        generator = OpenLoopGenerator(
            WorkloadConfig(num_clients=4, arrival_rate_tps=1.0), profile=profile
        )
        first = generator.transactions_until(5.0)   # integral: 125
        second = generator.transactions_until(10.0)  # integral: 500
        assert len(first) == 125
        assert len(first) + len(second) == 500
        times = [tx.submitted_at for tx in first + second]
        assert times == sorted(times)
        assert all(0.0 <= t <= 10.0 for t in times)

    def test_open_loop_generator_zipf_skews_clients(self):
        generator = OpenLoopGenerator(
            WorkloadConfig(num_clients=8, arrival_rate_tps=1000.0, seed=2, zipf_s=1.2)
        )
        txs = generator.transactions_until(2.0)
        counts = {}
        for tx in txs:
            counts[tx.client_id] = counts.get(tx.client_id, 0) + 1
        assert counts[0] > counts.get(7, 0) * 2

    def test_zipf_client_selection_deterministic(self):
        def run():
            generator = OpenLoopGenerator(
                WorkloadConfig(num_clients=8, arrival_rate_tps=100.0, seed=5, zipf_s=0.9)
            )
            return [tx.client_id for tx in generator.transactions_until(1.0)]

        assert run() == run()


class TestClientPool:
    def test_latency_measured_from_submission(self):
        pool = ClientPool()
        tx = Transaction(tx_id=1, client_id=0, submitted_at=2.0)
        pool.submit(tx)
        latency = pool.confirm(tx, confirmed_at=5.0)
        assert latency == pytest.approx(3.0)
        assert pool.stats.average_latency == pytest.approx(3.0)

    def test_duplicate_confirmation_ignored(self):
        pool = ClientPool()
        tx = Transaction(tx_id=1, client_id=0, submitted_at=0.0)
        pool.submit(tx)
        pool.confirm(tx, 1.0)
        assert pool.confirm(tx, 2.0) is None
        assert pool.stats.confirmed == 1

    def test_unknown_tx_ignored(self):
        pool = ClientPool()
        tx = Transaction(tx_id=9, client_id=0, submitted_at=0.0)
        assert pool.confirm(tx, 1.0) is None

    def test_outstanding(self):
        pool = ClientPool()
        txs = [Transaction(tx_id=i, client_id=0, submitted_at=0.0) for i in range(3)]
        pool.submit_many(txs)
        pool.confirm(txs[0], 1.0)
        assert pool.outstanding == 2

    def test_percentile(self):
        pool = ClientPool()
        for i in range(10):
            tx = Transaction(tx_id=i, client_id=0, submitted_at=0.0)
            pool.submit(tx)
            pool.confirm(tx, confirmed_at=float(i + 1))
        assert pool.stats.percentile_latency(50) == pytest.approx(5.0, abs=1.0)


class TestThroughput:
    def test_series_bins(self):
        series = ThroughputSeries(bin_width=1.0)
        series.record(0.5, 100)
        series.record(0.7, 50)
        series.record(2.2, 30)
        points = dict(series.series(until=3.0))
        assert points[0.0] == 150
        assert points[1.0] == 0
        assert points[2.0] == 30

    def test_average_and_peak(self):
        series = ThroughputSeries()
        series.record(0.5, 100)
        series.record(1.5, 300)
        assert series.average(2.0) == 200
        assert series.peak() == 300

    def test_peak_throughput_helper(self):
        assert peak_throughput([(0.1, 10), (0.2, 10), (1.5, 5)]) == 20

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ThroughputSeries().record(0.0, -1)

    def test_negative_time_clamped_into_bin_zero(self):
        # Regression: negative timestamps used to land in negative bins that
        # series() silently dropped while total_txs/peak() still counted them.
        series = ThroughputSeries(bin_width=1.0)
        series.record(-0.5, 10)
        series.record(0.5, 5)
        points = dict(series.series())
        assert points[0.0] == 15
        assert series.total_txs == 15
        assert series.peak() == 15
        assert sum(count for _, count in series.series()) == series.total_txs

    def test_bin_zero_boundary(self):
        series = ThroughputSeries(bin_width=2.0)
        series.record(0.0, 3)
        series.record(2.0, 4)  # exactly on a bin edge opens the next bin
        points = dict(series.series())
        assert points[0.0] == 1.5
        assert points[2.0] == 2.0

    def test_series_until_none_and_empty(self):
        assert ThroughputSeries().series() == []
        assert ThroughputSeries().series(until=None) == []

    def test_series_negative_until_clamped(self):
        series = ThroughputSeries()
        assert series.series(until=-3.0) == [(0.0, 0.0)]


class TestLatencyAccumulator:
    def test_weighted_average(self):
        acc = LatencyAccumulator()
        acc.record_block(0.0, 1.0, tx_count=1)
        acc.record_block(0.0, 3.0, tx_count=3)
        assert acc.average() == pytest.approx((1.0 + 9.0) / 4)

    def test_zero_tx_blocks_ignored(self):
        acc = LatencyAccumulator()
        acc.record_block(0.0, 5.0, tx_count=0)
        assert acc.count == 0

    def test_percentile(self):
        acc = LatencyAccumulator()
        for i in range(1, 11):
            acc.record_block(0.0, float(i), tx_count=1)
        assert acc.percentile(100) == 10.0
        assert acc.percentile(10) <= acc.percentile(90)


class TestResources:
    def test_crypto_cost_charged(self):
        model = ResourceModel()
        model.record_crypto(0, "verify", count=10)
        usage = model.usage(0)
        assert usage.crypto_ops["verify"] == 10
        assert usage.cpu_seconds == pytest.approx(10 * CryptoCostModel().verify)

    def test_unknown_operation_rejected(self):
        with pytest.raises(KeyError):
            ResourceModel().record_crypto(0, "teleport")

    def test_bandwidth_accounting(self):
        model = ResourceModel()
        model.record_bytes_sent(1, 2_000_000)
        assert model.usage(1).bandwidth_mbps(2.0) == pytest.approx(1.0)

    def test_cpu_percent_normalised_by_duration(self):
        model = ResourceModel()
        model.record_crypto(0, "sign", count=40_000)  # 1 CPU-second at 25 us
        assert model.usage(0).cpu_percent(duration=1.0) == pytest.approx(100.0, rel=0.01)

    def test_averages_over_replicas(self):
        model = ResourceModel()
        model.record_bytes_sent(0, 1_000_000)
        model.record_bytes_sent(1, 3_000_000)
        assert model.average_bandwidth_mbps(1.0) == pytest.approx(2.0)
        assert model.total_bytes() == 4_000_000


class TestMetricsCollector:
    def _confirmed(self, sn, tx_count, confirmed_at, submitted_at=0.0):
        block = Block(
            instance=0, round=sn + 1, rank=sn, tx_count_hint=tx_count,
            proposed_at=submitted_at, committed_at=confirmed_at, batch_submitted_at=submitted_at,
        )
        return ConfirmedBlock(block=block, sn=sn, confirmed_at=confirmed_at)

    def test_summary_counts(self):
        collector = MetricsCollector()
        collector.record_partial_commit()
        collector.record_partial_commit()
        collector.record_confirmations([self._confirmed(0, 100, 1.0), self._confirmed(1, 50, 2.0)])
        metrics = collector.summarise("ladon-pbft", n=4, stragglers=0, duration=10.0)
        assert metrics.confirmed_blocks == 2
        assert metrics.confirmed_txs == 150
        assert metrics.partially_committed_blocks == 2
        assert metrics.throughput_tps == pytest.approx(15.0)
        assert metrics.causal_strength == 1.0

    def test_warmup_excluded_from_throughput(self):
        collector = MetricsCollector()
        collector.record_confirmation(self._confirmed(0, 100, confirmed_at=1.0))
        collector.record_confirmation(self._confirmed(1, 100, confirmed_at=9.0))
        metrics = collector.summarise("iss-pbft", n=4, stragglers=0, duration=10.0, warmup=5.0)
        assert metrics.confirmed_txs == 100

    def test_as_dict_round_trip(self):
        collector = MetricsCollector()
        collector.record_confirmation(self._confirmed(0, 10, 1.0))
        metrics = collector.summarise("mir", n=4, stragglers=1, duration=5.0)
        data = metrics.as_dict()
        assert data["protocol"] == "mir"
        assert data["stragglers"] == 1
