"""Tests for the event queue, virtual clock and simulator core."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advances(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_rejects_backwards(self):
        clock = VirtualClock(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while queue:
            queue.pop().callback()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append(1))
        queue.push(1.0, lambda: order.append(2))
        queue.push(1.0, lambda: order.append(3))
        while queue:
            queue.pop().callback()
        assert order == [1, 2, 3]

    def test_cancel_skips_event(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        assert len(queue) == 1
        popped = queue.pop()
        assert popped.time == 2.0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        queue.cancel(event)
        assert queue.peek_time() == 5.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue


class TestSimulator:
    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(sim.now()))
        sim.schedule_after(0.5, lambda: fired.append(sim.now()))
        sim.run()
        assert fired == [0.5, 1.0]

    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        end = sim.run(until=2.0)
        assert end == 2.0
        assert len(sim.queue) == 1  # future event still pending

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_after(1.0, lambda: fired.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now() == 2.0

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_step(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_deterministic_rng(self):
        a = Simulator(seed=42).rng.random()
        b = Simulator(seed=42).rng.random()
        assert a == b

    def test_cancel_event(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []
