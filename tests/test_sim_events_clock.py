"""Tests for the event queue, virtual clock and simulator core."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advances(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_rejects_backwards(self):
        clock = VirtualClock(2.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while queue:
            queue.pop().callback()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append(1))
        queue.push(1.0, lambda: order.append(2))
        queue.push(1.0, lambda: order.append(3))
        while queue:
            queue.pop().callback()
        assert order == [1, 2, 3]

    def test_cancel_skips_event(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        assert len(queue) == 1
        popped = queue.pop()
        assert popped.time == 2.0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        queue.cancel(event)
        assert queue.peek_time() == 5.0

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None
        assert not queue

    def test_cancel_after_pop_does_not_corrupt_live_count(self):
        # Regression: a late cancel() on an already-popped event used to
        # decrement the live count a second time, driving it negative and
        # making the queue report empty while events remained.
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is event
        queue.cancel(event)  # late cancel of the delivered event
        assert len(queue) == 1
        assert queue  # the t=2.0 event is still live
        assert queue.pop().time == 2.0

    def test_cancel_twice_decrements_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 1


class TestSimulator:
    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(sim.now()))
        sim.schedule_after(0.5, lambda: fired.append(sim.now()))
        sim.run()
        assert fired == [0.5, 1.0]

    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        end = sim.run(until=2.0)
        assert end == 2.0
        assert len(sim.queue) == 1  # future event still pending

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule_after(1.0, lambda: fired.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now() == 2.0

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule_at(float(i + 1), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_max_events_break_does_not_fast_forward_clock(self):
        # Regression: breaking on max_events used to advance the clock to
        # ``until`` even though events remained in the queue, so the next
        # run() processed them "in the past".
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule_at(float(i + 1), lambda i=i: fired.append((i, sim.now())))
        sim.run(until=100.0, max_events=2)
        assert sim.now() == 2.0  # clock stays at the last processed event
        sim.run(until=100.0)
        # The remaining events fire at their scheduled (future) times.
        assert fired == [(0, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), (4, 5.0)]
        assert sim.now() == 100.0  # queue drained: now the horizon applies

    def test_run_until_fast_forwards_when_drained(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        end = sim.run(until=10.0)
        assert end == 10.0

    def test_direct_event_cancel_still_fast_forwards(self):
        # Timers cancel their events directly (Event.cancel), bypassing
        # EventQueue.cancel; the live count must reconcile lazily so
        # run(until=...) still recognises a drained queue and fast-forwards.
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        event.cancel()
        assert sim.run(until=10.0) == 10.0
        assert len(sim.queue) == 0

    def test_direct_then_queue_cancel_counts_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()  # direct cancel: reconciled lazily
        queue.cancel(event)  # then the queue-level cancel must not double count
        assert queue.peek_time() == 2.0
        assert len(queue) == 1

    def test_late_cancel_does_not_end_run_early(self):
        # Regression companion to the EventQueue fix: cancelling an event
        # that already fired must not make the run loop believe the queue
        # drained while live events remain.
        sim = Simulator()
        fired = []
        first = sim.schedule_at(1.0, lambda: fired.append("first"))
        sim.schedule_at(2.0, lambda: (sim.cancel(first), fired.append("second")))
        sim.schedule_at(3.0, lambda: fired.append("third"))
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_step(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_deterministic_rng(self):
        a = Simulator(seed=42).rng.random()
        b = Simulator(seed=42).rng.random()
        assert a == b

    def test_cancel_event(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append(1))
        sim.cancel(event)
        sim.run()
        assert fired == []
