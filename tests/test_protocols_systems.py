"""Integration tests: end-to-end Multi-BFT systems on the simulator.

These use small deployments (n = 4-7, small batches, short durations) so the
whole module runs in a few seconds while still exercising the full message
path: pacing -> consensus instances -> global ordering -> metrics.
"""

import pytest

from repro.protocols.base import SystemConfig
from repro.protocols.registry import available_protocols, build_system, resolve_protocol
from repro.sim.faults import CrashSpec, FaultConfig, StragglerSpec


def small_config(protocol, n=4, duration=6.0, stragglers=0, byzantine=False, **kwargs):
    faults = kwargs.pop("faults", None)
    if faults is None:
        faults = (
            FaultConfig.with_stragglers(stragglers, n, slowdown=5.0, byzantine=byzantine, seed=3)
            if stragglers
            else FaultConfig()
        )
    return SystemConfig(
        protocol=protocol,
        n=n,
        batch_size=64,
        total_block_rate=8.0,
        duration=duration,
        environment="lan",
        seed=1,
        faults=faults,
        **kwargs,
    )


class TestRegistry:
    def test_all_protocols_listed(self):
        names = available_protocols()
        for expected in ("ladon-pbft", "ladon-opt", "ladon-hotstuff", "iss-pbft", "iss-hotstuff", "mir", "rcc", "dqbft"):
            assert expected in names

    def test_aliases_resolve(self):
        assert resolve_protocol("ladon") == "ladon-pbft"
        assert resolve_protocol("iss") == "iss-pbft"
        assert resolve_protocol("dqbft-pbft") == "dqbft"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            resolve_protocol("raft")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(protocol="ladon-pbft", n=3)
        with pytest.raises(ValueError):
            SystemConfig(protocol="ladon-pbft", n=4, environment="moon")
        with pytest.raises(ValueError):
            SystemConfig(protocol="ladon-pbft", n=4, total_block_rate=0)


@pytest.mark.parametrize("protocol", ["ladon-pbft", "ladon-opt", "iss-pbft", "mir", "rcc", "dqbft"])
class TestEveryPBFTSystemMakesProgress:
    def test_confirms_blocks_and_txs(self, protocol):
        result = build_system(small_config(protocol)).run()
        metrics = result.metrics
        assert metrics.confirmed_blocks > 10
        assert metrics.confirmed_txs > 500
        assert metrics.throughput_tps > 0
        assert 0 < metrics.average_latency_s < 5.0


@pytest.mark.parametrize("protocol", ["ladon-hotstuff", "iss-hotstuff"])
class TestHotStuffSystemsMakeProgress:
    def test_confirms_blocks(self, protocol):
        result = build_system(small_config(protocol, duration=10.0)).run()
        assert result.metrics.confirmed_blocks > 5
        assert result.metrics.confirmed_txs > 300


class TestLadonBehaviour:
    def test_ladon_global_order_respects_rank_then_instance(self):
        result = build_system(small_config("ladon-pbft")).run()
        keys = [(c.block.rank, c.block.instance) for c in result.confirmed]
        assert keys == sorted(keys)

    def test_ladon_sn_consecutive(self):
        result = build_system(small_config("ladon-pbft")).run()
        assert [c.sn for c in result.confirmed] == list(range(len(result.confirmed)))

    def test_ladon_epochs_advance(self):
        config = small_config("ladon-pbft", duration=12.0)
        config.epoch_length = 16
        result = build_system(config).run()
        assert len(result.epoch_advancements) >= 1
        # Ranks must keep increasing across the epoch boundary.
        ranks = [c.block.rank for c in result.confirmed]
        assert max(ranks) > 16

    def test_ladon_causal_strength_near_one(self):
        result = build_system(small_config("ladon-pbft", duration=8.0)).run()
        assert result.metrics.causal_strength > 0.9

    def test_replicas_agree_on_confirmed_prefix(self):
        system = build_system(small_config("ladon-pbft"))
        system.run()
        # Non-observer replicas keep compact fingerprints only (bounded
        # memory), which carry exactly the identity the prefix check needs.
        logs = [
            [(inst, round) for _sn, inst, round, _rank, _digest
             in replica.orderer.confirmed_fingerprints()]
            for replica in system.replicas.values()
        ]
        shortest = min(len(log) for log in logs)
        assert shortest > 0
        reference = logs[0][:shortest]
        for log in logs[1:]:
            assert log[:shortest] == reference

    def test_ladon_opt_uses_less_bandwidth_than_plain(self):
        plain = build_system(small_config("ladon-pbft")).run()
        opt = build_system(small_config("ladon-opt")).run()
        assert opt.network_stats.bytes_sent < plain.network_stats.bytes_sent


class TestStragglerImpact:
    def test_iss_throughput_collapses_with_straggler_but_ladon_does_not(self):
        duration = 20.0
        faults = FaultConfig(stragglers=(StragglerSpec(replica=2, slowdown=10.0),))
        ladon = build_system(small_config("ladon-pbft", duration=duration, faults=faults)).run()
        iss = build_system(small_config("iss-pbft", duration=duration, faults=faults)).run()
        assert ladon.metrics.throughput_tps > 2.5 * iss.metrics.throughput_tps

    def test_iss_latency_much_higher_with_straggler(self):
        duration = 20.0
        faults = FaultConfig(stragglers=(StragglerSpec(replica=2, slowdown=10.0),))
        ladon = build_system(small_config("ladon-pbft", duration=duration, faults=faults)).run()
        iss = build_system(small_config("iss-pbft", duration=duration, faults=faults)).run()
        assert iss.metrics.average_latency_s > ladon.metrics.average_latency_s

    def test_straggler_blocks_are_empty(self):
        faults = FaultConfig(stragglers=(StragglerSpec(replica=2, slowdown=5.0),))
        result = build_system(small_config("ladon-pbft", duration=10.0, faults=faults)).run()
        straggler_blocks = [c.block for c in result.confirmed if c.block.instance == 2]
        assert all(block.tx_count == 0 for block in straggler_blocks)

    def test_causality_violated_by_predetermined_ordering_under_straggler(self):
        duration = 20.0
        faults = FaultConfig(stragglers=(StragglerSpec(replica=2, slowdown=10.0),))
        iss = build_system(small_config("iss-pbft", duration=duration, faults=faults)).run()
        ladon = build_system(small_config("ladon-pbft", duration=duration, faults=faults)).run()
        assert iss.metrics.causal_strength < 0.9
        assert ladon.metrics.causal_strength > iss.metrics.causal_strength

    def test_byzantine_straggler_bounded_impact(self):
        duration = 15.0
        honest_faults = FaultConfig(stragglers=(StragglerSpec(replica=2, slowdown=5.0),))
        byz_faults = FaultConfig(
            stragglers=(StragglerSpec(replica=2, slowdown=5.0, byzantine=True),)
        )
        honest = build_system(small_config("ladon-pbft", duration=duration, faults=honest_faults)).run()
        byz = build_system(small_config("ladon-pbft", duration=duration, faults=byz_faults)).run()
        # The manipulation costs some throughput but does not collapse it.
        assert byz.metrics.throughput_tps > 0.3 * honest.metrics.throughput_tps


class TestDQBFT:
    def test_sequencer_orders_all_confirmed_blocks(self):
        result = build_system(small_config("dqbft")).run()
        assert [c.sn for c in result.confirmed] == list(range(len(result.confirmed)))

    def test_ordering_instance_blocks_not_in_global_log(self):
        system = build_system(small_config("dqbft"))
        result = system.run()
        ordering_id = system.replicas[0].ordering_instance_id
        assert all(c.block.instance != ordering_id for c in result.confirmed)

    def test_dqbft_latency_above_iss(self):
        dqbft = build_system(small_config("dqbft", duration=10.0)).run()
        iss = build_system(small_config("iss-pbft", duration=10.0)).run()
        assert dqbft.metrics.average_latency_s > iss.metrics.average_latency_s


class TestCrashRecovery:
    def test_view_change_recovers_crashed_leader_instance(self):
        n = 4
        crash_at = 3.0
        config = small_config(
            "ladon-pbft",
            n=n,
            duration=25.0,
            faults=FaultConfig(crashes=(CrashSpec(replica=3, at=crash_at),)),
            propose_timeout=5.0,
            view_change_timeout=5.0,
        )
        result = build_system(config).run()
        # Some replica installed a new view for the crashed leader's instance.
        instances_changed = {instance for _, instance, _ in result.view_change_times}
        assert 3 in instances_changed
        # And the crashed instance produced blocks again after the view change.
        post_recovery = [
            c for c in result.confirmed
            if c.block.instance == 3 and c.block.proposed_at > crash_at + 5.0
        ]
        assert post_recovery, "instance led by the crashed replica never recovered"

    def test_crash_log_recorded(self):
        config = small_config(
            "ladon-pbft",
            duration=8.0,
            faults=FaultConfig(crashes=(CrashSpec(replica=3, at=2.0),)),
        )
        result = build_system(config).run()
        assert result.crash_log == [(2.0, 3, "crash")]


class TestObserverSelection:
    def test_observer_skips_stragglers_and_crashed(self):
        faults = FaultConfig(
            stragglers=(StragglerSpec(replica=0, slowdown=5.0),),
            crashes=(CrashSpec(replica=1, at=1.0),),
        )
        system = build_system(small_config("ladon-pbft", faults=faults))
        assert system.observer_id() == 2


class TestResourceAccounting:
    def test_bandwidth_and_cpu_positive(self):
        result = build_system(small_config("ladon-pbft")).run()
        assert result.metrics.bandwidth_mbps > 0
        assert result.metrics.cpu_percent > 0

    def test_ladon_bandwidth_at_least_iss(self):
        # Ladon adds rank reports/certificates to the wire; with the same
        # workload it should not use less bandwidth than ISS.
        ladon = build_system(small_config("ladon-pbft")).run()
        iss = build_system(small_config("iss-pbft")).run()
        assert ladon.network_stats.bytes_sent >= 0.95 * iss.network_stats.bytes_sent
