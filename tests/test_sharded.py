"""Tests for the sharded conservative-parallel DES backend (PR 9).

Covers the full stack: partitioner, lookahead derivation, IPC contracts,
config validation, and — the load-bearing part — **equivalence against the
single-process DES oracle** plus bit-exact within-backend determinism.

Equivalence semantics
---------------------

The sharded runtime gives each worker its own seeded RNG stream (shard-local
jitter draws must not be correlated across processes), so sharded and
single-process runs of the same cell are *different valid schedules* of the
same protocol execution — exactly the relationship the schedule-space fuzzer
(PR 7) establishes between perturbed and unperturbed runs.  Rank labels and
confirmation timestamps are schedule-dependent (ranks are collected from
whichever 2f+1 replies land first), so the oracle compares what the protocol
*guarantees* to be schedule-independent:

* the **set** of confirmed ``(instance, round, payload digest)`` blocks;
* the **per-instance confirmed sequence** of ``(round, digest)`` (each
  instance's log is totally ordered by its consensus rounds);
* the confirmed-block **count**, the **audit verdict** (safety + liveness +
  stalled instances), and the **crash/recovery log**.

Within one backend, determinism is still bit-exact: same (seed, shards)
implies identical full tuples including ranks and timestamps.
"""

import os
from dataclasses import replace

import pytest

from repro.bench.config import ExperimentCell
from repro.bench.sweep import cell_key
from repro.protocols.base import SystemConfig
from repro.protocols.registry import build_system
from repro.runtime import build_runtime
from repro.runtime.sharded import ShardedSystem, _merge_dynamics_logs
from repro.shard import derive_lookahead, plan_shards
from repro.shard.ipc import (
    check_flyweight,
    decode_batch,
    derive_shard_seed,
    encode_batch,
    validate_entries,
)
from repro.shard.partition import ShardPlan
from repro.sim.faults import CrashSpec, DegradationSpec, FaultConfig
from repro.sim.latency import LanLatency, UniformLatency, WanLatency


# ------------------------------------------------------------- partitioner
class TestPartitioner:
    def test_affine_keeps_regions_whole(self):
        latency = WanLatency(16)  # 4 regions, round-robin assignment
        plan = plan_shards(16, 4, latency)
        for shard_members in plan.members_by_shard():
            regions = {latency.region_of(r) for r in shard_members}
            assert len(regions) == 1, "affine placement split a region"
        assert sorted(len(m) for m in plan.members_by_shard()) == [4, 4, 4, 4]

    def test_affine_balances_without_regions(self):
        plan = plan_shards(10, 3, UniformLatency())
        sizes = sorted(len(m) for m in plan.members_by_shard())
        assert sizes == [2, 3, 5] or max(sizes) - min(sizes) <= 3
        assert sum(sizes) == 10

    def test_affine_splits_when_fewer_regions_than_shards(self):
        latency = WanLatency(8)  # 4 regions
        plan = plan_shards(8, 6, latency)
        assert plan.shards == 6
        assert all(plan.members(s) for s in range(6))

    def test_hash_strategy(self):
        plan = plan_shards(8, 3, UniformLatency(), strategy="hash")
        assert plan.assignment == (0, 1, 2, 0, 1, 2, 0, 1)

    def test_plan_is_deterministic(self):
        a = plan_shards(32, 4, WanLatency(32))
        b = plan_shards(32, 4, WanLatency(32))
        assert a == b

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            plan_shards(8, 0, UniformLatency())
        with pytest.raises(ValueError, match="cannot spread"):
            plan_shards(2, 3, UniformLatency())
        with pytest.raises(ValueError, match="unknown strategy"):
            plan_shards(8, 2, UniformLatency(), strategy="random")
        with pytest.raises(ValueError, match="every shard"):
            ShardPlan(shards=2, assignment=(0, 0, 0), strategy="affine")


# --------------------------------------------------------------- lookahead
class TestLookahead:
    def test_wan_affine_lookahead_is_the_wan_floor(self):
        latency = WanLatency(8)
        plan = plan_shards(8, 2, latency)
        lookahead = derive_lookahead(plan, latency)
        # Every cross-shard link is inter-region, so the window is the
        # smallest inter-region one-way delay — tens of milliseconds.
        assert lookahead.seconds >= 0.01
        sender, receiver = lookahead.min_pair
        assert latency.region_of(sender) != latency.region_of(receiver)

    def test_hash_placement_shrinks_the_window(self):
        latency = WanLatency(8)
        affine = derive_lookahead(plan_shards(8, 2, latency), latency)
        hashed = derive_lookahead(
            plan_shards(8, 2, latency, strategy="hash"), latency
        )
        assert hashed.seconds <= affine.seconds

    def test_degradation_below_one_shrinks_the_window(self):
        latency = WanLatency(8)
        plan = plan_shards(8, 2, latency)
        base = derive_lookahead(plan, latency)
        faults = FaultConfig(
            degradations=(DegradationSpec(at=1.0, until=2.0, factor=0.5),)
        )
        shrunk = derive_lookahead(plan, latency, faults=faults)
        assert shrunk.min_scale == 0.5
        assert shrunk.seconds == pytest.approx(base.seconds * 0.5)

    def test_slowdown_degradation_does_not_grow_the_window(self):
        latency = WanLatency(8)
        plan = plan_shards(8, 2, latency)
        faults = FaultConfig(
            degradations=(DegradationSpec(at=1.0, until=2.0, factor=4.0),)
        )
        assert derive_lookahead(plan, latency, faults=faults).min_scale == 1.0

    def test_zero_min_delay_is_refused(self):
        plan = plan_shards(8, 2, UniformLatency(base=0.0))
        with pytest.raises(ValueError, match="non-positive lookahead"):
            derive_lookahead(plan, UniformLatency(base=0.0))

    def test_requires_two_shards(self):
        latency = LanLatency()
        with pytest.raises(ValueError, match=">= 2 shards"):
            derive_lookahead(plan_shards(8, 1, latency), latency)


# --------------------------------------------------------------------- ipc
class TestIpc:
    def test_shard_seeds_are_distinct_and_stable(self):
        seeds = [derive_shard_seed(42, shard) for shard in range(8)]
        assert len(set(seeds)) == 8
        assert seeds == [derive_shard_seed(42, shard) for shard in range(8)]
        assert derive_shard_seed(42, 0) != derive_shard_seed(43, 0)

    def test_batch_roundtrip(self):
        from repro.consensus.messages import Prepare

        message = Prepare(instance=1, view=0, round=3, digest="d" * 8, sender=2)
        entries = [(1.25, 2, 5, message)]
        assert decode_batch(encode_batch(entries)) == entries

    def test_flyweight_contract(self):
        from repro.consensus.messages import Prepare

        message = Prepare(instance=1, view=0, round=3, digest="d" * 8, sender=2)
        assert check_flyweight(message)
        assert not check_flyweight({"not": "a dataclass"})
        validate_entries([(0.5, 0, 1, message)])
        with pytest.raises(TypeError, match="non-flyweight"):
            validate_entries([(0.5, 0, 1, object())])


# ------------------------------------------------------------ config seams
class TestConfigValidation:
    def test_shards_require_the_sharded_runtime(self):
        with pytest.raises(ValueError):
            SystemConfig(protocol="ladon-pbft", n=8, shards=2)

    def test_sharded_runtime_requires_shards(self):
        with pytest.raises(ValueError):
            SystemConfig(protocol="ladon-pbft", n=8, runtime="sharded")

    def test_more_shards_than_replicas_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(protocol="ladon-pbft", n=4, runtime="sharded", shards=8)

    def test_trace_is_single_process_only(self):
        with pytest.raises(ValueError, match="single-process"):
            SystemConfig(
                protocol="ladon-pbft", n=8, runtime="sharded", shards=2, trace=True
            )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(
                protocol="ladon-pbft",
                n=8,
                runtime="sharded",
                shards=2,
                shard_strategy="roulette",
            )

    def test_build_runtime_needs_the_system_config(self):
        with pytest.raises(ValueError, match="system_config"):
            build_runtime("sharded")

    def test_build_system_dispatches_to_sharded(self):
        config = SystemConfig(
            protocol="ladon-pbft", n=8, duration=1.0, runtime="sharded", shards=2
        )
        system = build_system(config)
        assert isinstance(system, ShardedSystem)
        assert system.plan.shards == 2
        assert system.lookahead.seconds > 0
        system.runtime.close()

    def test_cell_label_and_cache_key(self):
        base = ExperimentCell(protocol="ladon-pbft", n=64)
        sharded = replace(base, runtime="sharded", shards=4)
        assert "rt:shardedx4" in sharded.label()
        assert cell_key(base) != cell_key(sharded)
        assert cell_key(sharded) != cell_key(replace(sharded, shards=2))


# ----------------------------------------------------- dynamics-log merging
class TestDynamicsMerge:
    def test_global_kinds_come_from_shard_zero_only(self):
        logs = [
            [(1.0, "partition", "groups=2"), (2.0, "crash", "replica 0")],
            [(1.0, "partition", "groups=2"), (3.0, "crash", "replica 5")],
        ]
        merged = _merge_dynamics_logs(logs)
        assert merged == [
            (1.0, "partition", "groups=2"),
            (2.0, "crash", "replica 0"),
            (3.0, "crash", "replica 5"),
        ]

    def test_attack_entries_dedupe_exact_duplicates(self):
        logs = [
            [(1.0, "attack:equivocation", "on")],
            [(1.0, "attack:equivocation", "on"), (2.0, "attack:equivocation-end", "shard stats")],
        ]
        merged = _merge_dynamics_logs(logs)
        assert merged.count((1.0, "attack:equivocation", "on")) == 1
        assert (2.0, "attack:equivocation-end", "shard stats") in merged


# --------------------------------------------------- equivalence vs oracle
def confirmed_set(result):
    return {
        (c.block.instance, c.block.round, c.block.payload_digest)
        for c in result.confirmed
    }


def per_instance_sequences(result):
    sequences = {}
    for c in result.confirmed:
        sequences.setdefault(c.block.instance, []).append(
            (c.block.round, c.block.payload_digest)
        )
    return sequences


def full_tuples(result):
    return [
        (
            c.block.instance,
            c.block.round,
            c.block.rank,
            c.block.payload_digest,
            c.confirmed_at,
        )
        for c in result.confirmed
    ]


#: the oracle cells: four protocol families, plus crash/recovery and
#: straggler cells, across 2/3/4-shard plans
ORACLE_CELLS = [
    pytest.param(
        SystemConfig(
            protocol="ladon-pbft", n=8, duration=5.0, batch_size=64, seed=7
        ),
        2,
        id="ladon-pbft-2sh",
    ),
    pytest.param(
        SystemConfig(protocol="iss-pbft", n=8, duration=5.0, batch_size=64, seed=3),
        2,
        id="iss-pbft-2sh",
    ),
    pytest.param(
        SystemConfig(protocol="mir", n=8, duration=5.0, batch_size=64, seed=5),
        4,
        id="mir-4sh",
    ),
    pytest.param(
        SystemConfig(protocol="dqbft", n=8, duration=5.0, batch_size=64, seed=1),
        2,
        id="dqbft-2sh",
    ),
    pytest.param(
        SystemConfig(
            protocol="ladon-pbft",
            n=12,
            duration=6.0,
            batch_size=64,
            seed=11,
            faults=FaultConfig(
                crashes=(CrashSpec(replica=3, at=2.0, recover_at=4.0),)
            ),
        ),
        3,
        id="crash-recover-3sh",
    ),
    pytest.param(
        SystemConfig(
            protocol="ladon-pbft",
            n=8,
            duration=5.0,
            batch_size=64,
            seed=2,
            faults=FaultConfig.with_stragglers(2, 8, slowdown=10.0, seed=2),
        ),
        2,
        id="stragglers-2sh",
    ),
]


class TestEquivalence:
    @pytest.mark.parametrize("config,shards", ORACLE_CELLS)
    def test_sharded_matches_single_process_oracle(self, config, shards):
        single = build_system(config).run()
        sharded = build_system(
            replace(config, runtime="sharded", shards=shards)
        ).run()

        assert len(sharded.confirmed) == len(single.confirmed)
        assert confirmed_set(sharded) == confirmed_set(single)
        assert per_instance_sequences(sharded) == per_instance_sequences(single)
        assert sharded.audit.safety_ok == single.audit.safety_ok
        assert sharded.audit.live == single.audit.live
        assert sharded.audit.stalled_instances == single.audit.stalled_instances
        assert sorted(sharded.crash_log) == sorted(single.crash_log)

    def test_sharded_run_is_bit_deterministic(self):
        config = SystemConfig(
            protocol="ladon-pbft",
            n=8,
            duration=5.0,
            batch_size=64,
            seed=7,
            runtime="sharded",
            shards=2,
        )
        first = build_system(config).run()
        second = build_system(config).run()
        assert full_tuples(first) == full_tuples(second)
        assert first.metrics.extra["sync_rounds"] == second.metrics.extra["sync_rounds"]
        assert first.metrics.extra.get("sync_min_margin_ms") == second.metrics.extra.get(
            "sync_min_margin_ms"
        )

    def test_lookahead_safety_margin_never_negative(self):
        # ShardSyncError would have aborted the run; the recorded minimum
        # margin double-checks that no remote arrival ever landed at or
        # before a shard's executed horizon.
        config = SystemConfig(
            protocol="ladon-pbft",
            n=8,
            duration=5.0,
            batch_size=64,
            seed=9,
            runtime="sharded",
            shards=4,
        )
        result = build_system(config).run()
        assert result.metrics.extra["shards"] == 4.0
        assert result.metrics.extra["sync_rounds"] > 0
        assert result.metrics.extra["lookahead_ms"] > 0
        margin = result.metrics.extra.get("sync_min_margin_ms")
        assert margin is not None and margin >= 0.0

    def test_worker_rss_accounting(self):
        config = SystemConfig(
            protocol="ladon-pbft",
            n=8,
            duration=2.0,
            batch_size=64,
            seed=0,
            runtime="sharded",
            shards=2,
        )
        system = build_system(config)
        system.run()
        workers = system.runtime.worker_peak_rss_bytes
        assert len(workers) == 2
        assert all(rss > 0 for rss in workers)
        assert system.runtime.total_peak_rss_bytes() >= sum(workers)
