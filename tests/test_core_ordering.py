"""Tests for the global ordering layer: dynamic (Ladon), pre-determined
(ISS/Mir/RCC) and DQBFT orderers."""

import random

import pytest

from repro.core.block import Block, BlockId, ordering_key
from repro.core.dqbft_ordering import DQBFTOrderer
from repro.core.ordering import (
    ConfirmationBar,
    DynamicOrderer,
    ScanDrainDynamicOrderer,
)
from repro.core.predetermined import PredeterminedOrderer


def block(instance, round, rank, proposed_at=0.0, committed_at=None):
    return Block(
        instance=instance,
        round=round,
        rank=rank,
        proposed_at=proposed_at,
        committed_at=committed_at,
        tx_count_hint=10,
    )


class TestConfirmationBar:
    def test_admits_lower_rank(self):
        bar = ConfirmationBar(rank=3, instance=1)
        assert bar.admits(block(0, 1, 2))

    def test_admits_equal_rank_lower_instance(self):
        bar = ConfirmationBar(rank=3, instance=1)
        assert bar.admits(block(0, 1, 3))

    def test_rejects_equal_rank_same_instance(self):
        bar = ConfirmationBar(rank=3, instance=1)
        assert not bar.admits(block(1, 1, 3))

    def test_rejects_higher_rank(self):
        bar = ConfirmationBar(rank=3, instance=1)
        assert not bar.admits(block(0, 1, 4))


class TestDynamicOrdererPaperExample:
    def test_figure_3_example(self):
        """Reproduce the worked example of Fig. 3 / Sec. 4.2.

        Instances 0,1,2; when B^2_2 is partially committed the replica can
        confirm B^1_2 and B^0_3 but not B^2_2 itself.
        """
        orderer = DynamicOrderer(num_instances=3)
        # Ranks chosen to match the figure: G_out = {B01, B02, B11, B21}
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        orderer.add_partially_committed(block(1, 1, 0), now=1.0)
        orderer.add_partially_committed(block(2, 1, 0), now=1.0)
        orderer.add_partially_committed(block(0, 2, 1), now=2.0)
        orderer.add_partially_committed(block(0, 3, 3), now=3.0)
        orderer.add_partially_committed(block(1, 2, 2), now=3.0)
        already = {c.block.block_id for c in orderer.confirmed}
        assert BlockId(0, 1) in already and BlockId(1, 1) in already
        # Now B^2_2 with rank 4 arrives: bar becomes (3, 1) and B^1_2 (rank 2)
        # and B^0_3 (rank 3, instance 0 < 1) are confirmed; B^2_2 is not.
        newly = orderer.add_partially_committed(block(2, 2, 4), now=4.0)
        newly_ids = [c.block.block_id for c in newly]
        assert BlockId(1, 2) in newly_ids
        assert BlockId(0, 3) in newly_ids
        assert BlockId(2, 2) not in newly_ids
        assert orderer.pending_count == 1


class TestDynamicOrderer:
    def test_nothing_confirmed_until_every_instance_contributes(self):
        orderer = DynamicOrderer(num_instances=3)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        newly = orderer.add_partially_committed(block(1, 1, 1), now=1.0)
        assert newly == []
        assert orderer.confirmed == ()

    def test_confirmation_order_follows_rank_then_instance(self):
        orderer = DynamicOrderer(num_instances=2)
        orderer.add_partially_committed(block(1, 1, 0), now=1.0)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        orderer.add_partially_committed(block(0, 2, 1), now=2.0)
        orderer.add_partially_committed(block(1, 2, 2), now=2.0)
        ranks = [(c.block.rank, c.block.instance) for c in orderer.confirmed]
        assert ranks == sorted(ranks)

    def test_global_indices_are_consecutive(self):
        orderer = DynamicOrderer(num_instances=2)
        for round in range(1, 5):
            orderer.add_partially_committed(block(0, round, round), now=round)
            orderer.add_partially_committed(block(1, round, round), now=round)
        sns = [c.sn for c in orderer.confirmed]
        assert sns == list(range(len(sns)))

    def test_duplicate_delivery_ignored(self):
        orderer = DynamicOrderer(num_instances=1)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        again = orderer.add_partially_committed(block(0, 1, 0), now=2.0)
        assert again == []

    def test_out_of_order_rounds_wait_for_prefix(self):
        # A block only becomes partially *confirmed* when all earlier rounds
        # of its instance are partially committed; the bar must not advance
        # past a gap.
        orderer = DynamicOrderer(num_instances=2)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        orderer.add_partially_committed(block(1, 2, 5), now=1.0)  # round 1 missing
        orderer.add_partially_committed(block(0, 2, 6), now=2.0)
        assert orderer.confirmed == ()
        # Fill the gap: now instance 1's prefix reaches round 2 (rank 5).
        orderer.add_partially_committed(block(1, 1, 1), now=3.0)
        confirmed_ranks = [c.block.rank for c in orderer.confirmed]
        assert 0 in confirmed_ranks and 1 in confirmed_ranks and 5 in confirmed_ranks

    def test_straggler_release_on_next_block(self):
        """Blocks pile up while one instance is silent and flush when it speaks."""
        orderer = DynamicOrderer(num_instances=3)
        # Round 1 from everyone.
        for inst in range(3):
            orderer.add_partially_committed(block(inst, 1, inst), now=1.0)
        # Instance 2 goes quiet; instances 0 and 1 keep producing.
        rank = 3
        for round in range(2, 7):
            for inst in (0, 1):
                orderer.add_partially_committed(block(inst, round, rank), now=float(round))
                rank += 1
        pending_before = orderer.pending_count
        assert pending_before >= 8
        # The straggler's next block carries a fresh (high) rank and releases
        # everything below the new bar; only the very last blocks of the fast
        # instances (and the straggler's own new block) can remain pending.
        newly = orderer.add_partially_committed(block(2, 2, rank + 1), now=10.0)
        assert len(newly) >= pending_before - 2
        assert orderer.pending_count <= 2

    def test_rejects_unknown_instance(self):
        orderer = DynamicOrderer(num_instances=2)
        with pytest.raises(ValueError):
            orderer.add_partially_committed(block(5, 1, 0), now=0.0)

    def test_rejects_zero_instances(self):
        with pytest.raises(ValueError):
            DynamicOrderer(num_instances=0)

    def test_current_bar_none_before_full_coverage(self):
        orderer = DynamicOrderer(num_instances=2)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        assert orderer.current_bar() is None

    def test_unconfirmed_blocks_sorted(self):
        orderer = DynamicOrderer(num_instances=3)
        orderer.add_partially_committed(block(0, 1, 5), now=1.0)
        orderer.add_partially_committed(block(1, 1, 2), now=1.0)
        pending = orderer.unconfirmed_blocks()
        assert [b.rank for b in pending] == [2, 5]


def random_workload(seed, num_instances, rounds):
    """A randomized partial-commit schedule: per-instance monotone ranks,
    random cross-instance interleaving, occasional out-of-order delivery."""
    rng = random.Random(seed)
    blocks = []
    rank = 0
    per_instance = {i: [] for i in range(num_instances)}
    for round_ in range(1, rounds + 1):
        instances = list(range(num_instances))
        rng.shuffle(instances)
        for instance in instances:
            rank += rng.randint(1, 3)
            per_instance[instance].append(Block(instance=instance, round=round_, rank=rank))
    for instance, seq in per_instance.items():
        blocks.extend(seq)
    rng.shuffle(blocks)
    # Out-of-order delivery within an instance is allowed (the orderer must
    # wait for the contiguous round prefix); the shuffle above produces it.
    return blocks


class TestHeapDrainEquivalence:
    """Property tests: heap-based drain ≡ the seed implementation."""

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_workloads_confirm_identically(self, seed):
        rng = random.Random(1000 + seed)
        num_instances = rng.randint(1, 6)
        blocks = random_workload(seed, num_instances, rounds=rng.randint(3, 25))
        heap_orderer = DynamicOrderer(num_instances)
        scan_orderer = ScanDrainDynamicOrderer(num_instances)
        for step, blk in enumerate(blocks):
            now = float(step)
            newly_heap = heap_orderer.add_partially_committed(blk, now=now)
            newly_scan = scan_orderer.add_partially_committed(blk, now=now)
            assert [(c.block.block_id, c.sn, c.confirmed_at) for c in newly_heap] == [
                (c.block.block_id, c.sn, c.confirmed_at) for c in newly_scan
            ]
        assert [(c.block.block_id, c.sn) for c in heap_orderer.confirmed] == [
            (c.block.block_id, c.sn) for c in scan_orderer.confirmed
        ]
        assert heap_orderer.pending_count == scan_orderer.pending_count
        assert [b.block_id for b in heap_orderer.unconfirmed_blocks()] == [
            b.block_id for b in scan_orderer.unconfirmed_blocks()
        ]

    @pytest.mark.parametrize("seed", range(4))
    def test_confirmed_follows_precedence_order(self, seed):
        blocks = random_workload(seed, num_instances=4, rounds=20)
        orderer = DynamicOrderer(4)
        for step, blk in enumerate(blocks):
            orderer.add_partially_committed(blk, now=float(step))
        keys = [ordering_key(c.block) for c in orderer.confirmed]
        assert keys == sorted(keys)
        assert [c.sn for c in orderer.confirmed] == list(range(len(keys)))

    def test_duplicate_delivery_keeps_heap_consistent(self):
        orderer = DynamicOrderer(2)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        orderer.add_partially_committed(block(0, 1, 0), now=1.5)  # duplicate
        orderer.add_partially_committed(block(1, 1, 1), now=2.0)
        assert [c.block.block_id for c in orderer.confirmed] == [BlockId(0, 1)]
        assert orderer.pending_count == 1


class TestIncrementalBarEquivalence:
    """The O(log m) incremental bar ≡ the O(m) scan, step for step."""

    @pytest.mark.parametrize("seed", range(10))
    def test_bar_matches_scan_after_every_delivery(self, seed):
        rng = random.Random(7000 + seed)
        num_instances = rng.randint(1, 7)
        blocks = random_workload(seed, num_instances, rounds=rng.randint(3, 30))
        orderer = DynamicOrderer(num_instances)
        for step, blk in enumerate(blocks):
            orderer.add_partially_committed(blk, now=float(step))
            scan_bar = orderer._compute_bar()
            incremental = orderer._bar_key()
            if scan_bar is None:
                assert incremental is None
            else:
                assert incremental == (scan_bar.rank, scan_bar.instance)

    @pytest.mark.parametrize("seed", range(6))
    def test_non_monotone_ranks_still_agree(self, seed):
        """Ranks clamped at an epoch maxRank (equal across rounds) and even
        adversarially *decreasing* ranks must not break the lazy bar heap."""
        rng = random.Random(9000 + seed)
        num_instances = rng.randint(2, 5)
        orderer = DynamicOrderer(num_instances)
        scan = ScanDrainDynamicOrderer(num_instances)
        step = 0
        for round_ in range(1, 15):
            for instance in range(num_instances):
                rank = rng.choice([round_, round_, 7, max(0, 10 - round_)])
                blk = block(instance, round_, rank)
                now = float(step)
                got = [(c.block.block_id, c.sn) for c in
                       orderer.add_partially_committed(blk, now=now)]
                want = [(c.block.block_id, c.sn) for c in
                        scan.add_partially_committed(blk, now=now)]
                assert got == want
                step += 1

    def test_compact_mode_matches_retaining_mode(self):
        blocks = random_workload(3, 4, rounds=20)
        retaining = DynamicOrderer(4, retain_blocks=True)
        compact = DynamicOrderer(4, retain_blocks=False)
        for step, blk in enumerate(blocks):
            retaining.add_partially_committed(blk, now=float(step))
            compact.add_partially_committed(blk, now=float(step))
        assert compact.confirmed_fingerprints() == retaining.confirmed_fingerprints()
        assert compact.confirmed_count == retaining.confirmed_count == len(
            retaining.confirmed
        )
        with pytest.raises(RuntimeError):
            compact.confirmed


class TestDynamicOrdererBoundedMemory:
    """Internal state stays O(active window), not O(history)."""

    def test_round_buffers_pruned_behind_prefix(self):
        orderer = DynamicOrderer(2)
        step = 0
        for round_ in range(1, 201):
            for instance in (0, 1):
                orderer.add_partially_committed(
                    block(instance, round_, round_), now=float(step)
                )
                step += 1
        # Everything up to the bar is confirmed; buffers hold only the
        # last-partially-confirmed tail, not 200 rounds of history.
        for instance in (0, 1):
            assert len(orderer._by_instance[instance]) == 0
            assert len(orderer._confirmed_above[instance]) <= 1
        assert orderer.confirmed_count > 300
        assert len(orderer._heap) <= 4
        # Stale bar entries surface at the top (ranks grow) and get popped:
        # the lazy heap stays at ~one live entry per instance.
        assert len(orderer._bar_heap) <= 4

    def test_duplicates_detected_via_watermark_after_pruning(self):
        orderer = DynamicOrderer(2)
        orderer.add_partially_committed(block(0, 1, 1), now=0.0)
        orderer.add_partially_committed(block(1, 1, 2), now=1.0)
        confirmed_before = orderer.confirmed_count
        # Round 1 of instance 0 confirmed and its id folded into the
        # watermark; a late duplicate must still be recognised.
        assert orderer.add_partially_committed(block(0, 1, 1), now=2.0) == []
        assert orderer.confirmed_count == confirmed_before


class TestPredeterminedOrderer:
    def test_global_index_layout(self):
        orderer = PredeterminedOrderer(num_instances=3)
        assert orderer.global_index(block(0, 1, 0)) == 0
        assert orderer.global_index(block(2, 1, 0)) == 2
        assert orderer.global_index(block(1, 2, 0)) == 4

    def test_confirms_in_index_order(self):
        orderer = PredeterminedOrderer(num_instances=2)
        orderer.add_partially_committed(block(1, 1, 0), now=1.0)
        assert orderer.confirmed == ()  # waiting for index 0
        newly = orderer.add_partially_committed(block(0, 1, 0), now=2.0)
        assert [c.sn for c in newly] == [0, 1]

    def test_hole_blocks_everything_after_it(self):
        orderer = PredeterminedOrderer(num_instances=3)
        # Instance 1 (the straggler) never delivers round 1.
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        orderer.add_partially_committed(block(2, 1, 0), now=1.0)
        for round in range(2, 5):
            orderer.add_partially_committed(block(0, round, 0), now=float(round))
            orderer.add_partially_committed(block(2, round, 0), now=float(round))
        assert len(orderer.confirmed) == 1  # only index 0
        assert orderer.next_missing_index() == 1
        # The straggler's block arrives: exactly the contiguous prefix flushes
        # (indices 1 and 2 from round 1, then index 3 = instance 0's round 2;
        # index 4 is the straggler's still-missing round 2).
        newly = orderer.add_partially_committed(block(1, 1, 0), now=9.0)
        assert [c.sn for c in newly] == [1, 2, 3]
        assert orderer.next_missing_index() == 4

    def test_duplicate_ignored(self):
        orderer = PredeterminedOrderer(num_instances=1)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        assert orderer.add_partially_committed(block(0, 1, 0), now=2.0) == []

    def test_round_zero_rejected(self):
        orderer = PredeterminedOrderer(num_instances=1)
        with pytest.raises(ValueError):
            orderer.global_index(Block(instance=0, round=0, rank=0))

    def test_pending_count(self):
        orderer = PredeterminedOrderer(num_instances=2)
        orderer.add_partially_committed(block(1, 1, 0), now=1.0)
        assert orderer.pending_count == 1

    def test_hole_count_incremental(self):
        orderer = PredeterminedOrderer(num_instances=3)
        assert orderer.hole_count() == 0
        orderer.add_partially_committed(block(2, 2, 0), now=1.0)  # index 5
        assert orderer.hole_count() == 5  # indices 0-4 missing
        orderer.add_partially_committed(block(0, 1, 0), now=2.0)  # index 0 drains
        assert orderer.hole_count() == 4  # indices 1-4 missing
        for blk in (block(1, 1, 0), block(2, 1, 0), block(0, 2, 0), block(1, 2, 0)):
            orderer.add_partially_committed(blk, now=3.0)
        assert orderer.pending_count == 0
        assert orderer.hole_count() == 0


class TestDQBFTOrderer:
    def test_blocks_wait_for_decisions(self):
        orderer = DQBFTOrderer(num_instances=2)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        assert orderer.confirmed == ()
        newly = orderer.add_sequencing_decision(BlockId(0, 1), now=2.0)
        assert len(newly) == 1
        assert newly[0].sn == 0

    def test_decision_before_block(self):
        orderer = DQBFTOrderer(num_instances=2)
        orderer.add_sequencing_decision(BlockId(1, 1), now=1.0)
        newly = orderer.add_partially_committed(block(1, 1, 0), now=2.0)
        assert len(newly) == 1

    def test_order_follows_decisions_not_ranks(self):
        orderer = DQBFTOrderer(num_instances=2)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        orderer.add_partially_committed(block(1, 1, 99), now=1.0)
        orderer.add_sequencing_decision(BlockId(1, 1), now=2.0)
        orderer.add_sequencing_decision(BlockId(0, 1), now=3.0)
        order = [c.block.block_id for c in orderer.confirmed]
        assert order == [BlockId(1, 1), BlockId(0, 1)]

    def test_missing_block_blocks_later_decisions(self):
        orderer = DQBFTOrderer(num_instances=2)
        orderer.add_sequencing_decision(BlockId(0, 1), now=1.0)
        orderer.add_sequencing_decision(BlockId(1, 1), now=1.0)
        orderer.add_partially_committed(block(1, 1, 0), now=2.0)
        # Decision order says (0,1) first; its block is missing so nothing flows.
        assert orderer.confirmed == ()
        newly = orderer.add_partially_committed(block(0, 1, 0), now=3.0)
        assert len(newly) == 2

    def test_duplicate_decision_ignored(self):
        orderer = DQBFTOrderer(num_instances=1)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        orderer.add_sequencing_decision(BlockId(0, 1), now=2.0)
        assert orderer.add_sequencing_decision(BlockId(0, 1), now=3.0) == []

    def test_undecided_blocks(self):
        orderer = DQBFTOrderer(num_instances=2)
        orderer.add_partially_committed(block(0, 1, 0), now=1.0)
        assert [b.block_id for b in orderer.undecided_blocks()] == [BlockId(0, 1)]
