"""Property tests for the schedule perturbation layer.

The fuzzer's validity argument rests on three properties of
:class:`repro.fuzz.perturb.SchedulePerturbation`:

* **envelope** — every perturbed arrival ``a`` satisfies
  ``base <= a <= base + max_delay``, *including* after the FIFO clamp;
* **FIFO preservation** — per ``(sender, receiver)`` pair, deliveries the
  base schedule kept in order stay in order;
* **determinism** — identical ``(seed, arrival stream)`` yields the
  identical perturbation sequence, and feeding the effective deltas back as
  ``decisions`` is a fixpoint (the replay mode reproduces the run exactly).

The integration half checks the same properties through a real DES run:
a zero-perturbation run is bit-identical to an unperturbed one, and a
decision-replay run is bit-identical to the generation run it was captured
from.
"""

import random

import pytest

from repro.fuzz.perturb import PerturbationSpec, SchedulePerturbation


def _stream(seed: int, count: int = 400):
    """A deterministic synthetic arrival stream over a few (sender, receiver)
    pairs, increasing per pair but with occasional base-order inversions."""
    rng = random.Random(seed)
    clock = {}
    out = []
    for _ in range(count):
        sender, receiver = rng.randrange(4), rng.randrange(4)
        key = (sender, receiver)
        base = clock.get(key, 0.0)
        step = rng.random() * 0.05
        if rng.random() < 0.1:
            arrival = max(0.0, base - step)  # base-schedule reordering
        else:
            arrival = base + step
            clock[key] = arrival
        out.append((arrival, sender, receiver))
    return out


# ----------------------------------------------------------------- envelope
@pytest.mark.parametrize("preserve_fifo", [True, False])
def test_perturbed_arrival_stays_in_the_envelope(preserve_fifo):
    spec = PerturbationSpec(max_delay=0.3, probability=0.7, seed=5,
                            preserve_fifo=preserve_fifo)
    perturbation = SchedulePerturbation(spec)
    for arrival, sender, receiver in _stream(seed=1):
        time = perturbation.perturb(arrival, sender, receiver)
        assert arrival <= time <= arrival + spec.max_delay + 1e-12


def test_until_window_disables_later_perturbation():
    spec = PerturbationSpec(max_delay=0.3, probability=1.0, seed=5, until=0.4)
    perturbation = SchedulePerturbation(spec)
    saw_early_delay = False
    for arrival, sender, receiver in _stream(seed=2):
        time = perturbation.perturb(arrival, sender, receiver)
        if arrival >= spec.until:
            # Outside the burst window only the FIFO clamp may move a
            # delivery, and the clamp stays within the envelope anyway.
            assert time <= arrival + spec.max_delay + 1e-12
        elif time > arrival:
            saw_early_delay = True
    assert saw_early_delay


# --------------------------------------------------------------------- FIFO
def test_fifo_preserved_where_base_order_held():
    spec = PerturbationSpec(max_delay=0.5, probability=1.0, seed=9)
    perturbation = SchedulePerturbation(spec)
    last = {}  # (sender, receiver) -> (base, perturbed) of the pair's frontier
    for arrival, sender, receiver in _stream(seed=3):
        time = perturbation.perturb(arrival, sender, receiver)
        key = (sender, receiver)
        prev = last.get(key)
        if prev is not None and arrival >= prev[0]:
            assert time >= prev[1], "base-ordered pair delivered out of order"
            last[key] = (arrival, time)
        elif prev is None:
            last[key] = (arrival, time)


# -------------------------------------------------------------- determinism
def test_same_seed_same_stream_is_identical():
    spec = PerturbationSpec(max_delay=0.3, probability=0.5, seed=13)
    runs = []
    for _ in range(2):
        perturbation = SchedulePerturbation(spec)
        runs.append([
            perturbation.perturb(arrival, sender, receiver)
            for arrival, sender, receiver in _stream(seed=4)
        ])
    assert runs[0] == runs[1]


def test_different_seed_differs():
    streams = []
    for seed in (13, 14):
        perturbation = SchedulePerturbation(
            PerturbationSpec(max_delay=0.3, probability=0.5, seed=seed)
        )
        streams.append([
            perturbation.perturb(arrival, sender, receiver)
            for arrival, sender, receiver in _stream(seed=4)
        ])
    assert streams[0] != streams[1]


def test_applied_decisions_replay_is_a_fixpoint():
    spec = PerturbationSpec(max_delay=0.3, probability=0.5, seed=21)
    generation = SchedulePerturbation(spec)
    stream = _stream(seed=5)
    generated = [generation.perturb(*entry) for entry in stream]
    replay_spec = PerturbationSpec(
        max_delay=0.3, probability=0.5, seed=21,
        decisions=tuple(generation.applied),
    )
    replay = SchedulePerturbation(replay_spec)
    replayed = [replay.perturb(*entry) for entry in stream]
    assert replayed == generated
    assert replay.applied == generation.applied


def test_decisions_beyond_vector_mean_zero_delay():
    spec = PerturbationSpec(max_delay=0.5, decisions=(0.2,), preserve_fifo=False)
    perturbation = SchedulePerturbation(spec)
    assert perturbation.perturb(1.0, 0, 1) == pytest.approx(1.2)
    assert perturbation.perturb(2.0, 0, 1) == 2.0  # index 1: off the vector


# ------------------------------------------------------------ serialization
def test_spec_round_trips_through_dict():
    spec = PerturbationSpec(
        max_delay=0.4, probability=0.25, seed=77, until=3.5,
        decisions=(0.0, 0.1, 0.0, 0.0, 0.3),
    )
    assert PerturbationSpec.from_dict(spec.as_dict()) == spec
    # The sparse encoding only stores the nonzero entries.
    encoded = spec.as_dict()["decisions"]
    assert encoded["len"] == 5
    assert encoded["nonzero"] == [[1, 0.1], [4, 0.3]]


def test_spec_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        PerturbationSpec(max_delay=-0.1)
    with pytest.raises(ValueError):
        PerturbationSpec(probability=1.5)
    with pytest.raises(ValueError):
        PerturbationSpec(max_delay=0.1, decisions=(0.2,))


# -------------------------------------------------------------- integration
def _traced_digest(perturbation_spec):
    from repro.bench.config import ExperimentCell
    from repro.fuzz.replay import run_cell_traced

    cell = ExperimentCell(
        protocol="ladon-pbft", n=4, duration=2.0, environment="wan",
        batch_size=64, seed=17, perturbation=perturbation_spec,
    )
    system, _result = run_cell_traced(cell)
    applied = tuple(system.perturbation.applied) if system.perturbation else None
    return system.trace.digest(), applied


def test_zero_perturbation_run_matches_unperturbed_run():
    """probability=0 must be a no-op: the perturbation layer only re-routes
    scheduling, it must not change a single delivery time."""
    baseline, _ = _traced_digest(None)
    zeroed, applied = _traced_digest(PerturbationSpec(probability=0.0, seed=1))
    assert zeroed == baseline
    assert applied is not None and not any(applied)


def test_in_sim_decision_replay_is_bit_exact():
    generated, applied = _traced_digest(
        PerturbationSpec(max_delay=0.2, probability=0.3, seed=23)
    )
    assert any(applied), "perturbation never fired; replay check is vacuous"
    replayed, reapplied = _traced_digest(
        PerturbationSpec(max_delay=0.2, probability=0.3, seed=23,
                         decisions=applied)
    )
    assert replayed == generated
    assert reapplied == applied
