"""Tests for the analytical models (Sec. 2.1 and Appendix A)."""

import pytest

from repro.analysis.complexity import (
    compare_protocol_complexity,
    ladon_opt_complexity,
    ladon_pbft_complexity,
    pbft_complexity,
)
from repro.analysis.straggler_model import (
    StragglerModelConfig,
    dynamic_ordering_backlog,
    predetermined_ordering_backlog,
    throughput_ratio,
)


class TestStragglerModel:
    def test_rates_match_paper_formulas(self):
        config = StragglerModelConfig(num_instances=16, straggler_period=10)
        assert config.partially_committed_per_round == pytest.approx(1 / 10 + 15)
        assert config.confirmed_per_round_predetermined == pytest.approx(16 / 10)

    def test_predetermined_backlog_grows_linearly(self):
        config = StragglerModelConfig(num_instances=16, straggler_period=10, rounds=50)
        result = predetermined_ordering_backlog(config)
        assert result.queued_blocks[-1] > result.queued_blocks[0]
        growth = result.queued_blocks[1] - result.queued_blocks[0]
        assert result.queued_blocks[-1] == pytest.approx(growth * 50)

    def test_predetermined_delay_grows(self):
        config = StragglerModelConfig(num_instances=16, straggler_period=10, rounds=50)
        result = predetermined_ordering_backlog(config)
        assert result.final_delay() > result.ordering_delay[0]

    def test_dynamic_backlog_bounded_by_one_period(self):
        config = StragglerModelConfig(num_instances=16, straggler_period=10, rounds=200)
        result = dynamic_ordering_backlog(config)
        bound = (config.num_instances - 1) * config.straggler_period
        assert max(result.queued_blocks) <= bound
        # Bounded, not growing: the last value is no larger than the overall max.
        assert result.final_backlog() <= bound

    def test_dynamic_strictly_better_than_predetermined_in_the_limit(self):
        config = StragglerModelConfig(num_instances=16, straggler_period=10, rounds=500)
        predetermined = predetermined_ordering_backlog(config)
        dynamic = dynamic_ordering_backlog(config)
        assert dynamic.final_backlog() < predetermined.final_backlog()
        assert dynamic.final_delay() < predetermined.final_delay()

    def test_throughput_ratio_is_one_over_k(self):
        config = StragglerModelConfig(num_instances=16, straggler_period=10)
        assert throughput_ratio(config) == pytest.approx(0.1)

    def test_no_straggler_means_no_backlog(self):
        config = StragglerModelConfig(num_instances=8, straggler_period=1, rounds=10)
        result = predetermined_ordering_backlog(config)
        assert all(q == 0 for q in result.queued_blocks)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            StragglerModelConfig(num_instances=1)
        with pytest.raises(ValueError):
            StragglerModelConfig(straggler_period=0)
        with pytest.raises(ValueError):
            StragglerModelConfig(rounds=0)


class TestComplexity:
    def test_pbft_pre_prepare_linear(self):
        assert pbft_complexity(16).pre_prepare_units == 15
        assert pbft_complexity(128).pre_prepare_units == 127

    def test_ladon_pbft_pre_prepare_quadratic(self):
        small = ladon_pbft_complexity(16)
        large = ladon_pbft_complexity(128)
        # Units grow ~n * quorum, i.e. super-linearly.
        assert large.pre_prepare_units / small.pre_prepare_units > 6

    def test_ladon_opt_restores_linear_pre_prepare(self):
        assert ladon_opt_complexity(128).pre_prepare_units == pbft_complexity(128).pre_prepare_units

    def test_backup_verification_counts(self):
        assert pbft_complexity(64).backup_verifications_pre_prepare == 1
        assert ladon_pbft_complexity(64).backup_verifications_pre_prepare == 43
        assert ladon_opt_complexity(64).backup_verifications_pre_prepare == 1

    def test_rank_messages_add_linear_term_only(self):
        pbft = pbft_complexity(32)
        ladon = ladon_pbft_complexity(32)
        assert ladon.rank_messages == 31
        assert ladon.prepare_messages == pbft.prepare_messages
        assert ladon.commit_messages == pbft.commit_messages

    def test_total_messages_same_order(self):
        # Overall complexity stays O(n^2) for all three protocols.
        for n in (16, 64, 128):
            profiles = compare_protocol_complexity(n)
            baseline = profiles["pbft"].total_messages
            for profile in profiles.values():
                assert profile.total_messages < 1.1 * baseline + 2 * n

    def test_compare_returns_all_protocols(self):
        assert set(compare_protocol_complexity(16).keys()) == {"pbft", "ladon-pbft", "ladon-opt"}
