"""Tests for latency models, the network transport and nodes."""

import random

import pytest

from repro.sim.latency import DEFAULT_WAN_REGIONS, LanLatency, UniformLatency, WanLatency
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.sim.simulator import Simulator


class TestLatencyModels:
    def test_uniform_latency_self_delivery_is_free(self):
        model = UniformLatency(base=0.01)
        assert model.delay(1, 1, random.Random(0)) == 0.0

    def test_uniform_latency_base(self):
        model = UniformLatency(base=0.01, jitter=0.0)
        assert model.delay(0, 1, random.Random(0)) == pytest.approx(0.01)

    def test_uniform_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformLatency(base=-1)

    def test_lan_latency_sub_millisecond(self):
        model = LanLatency()
        delay = model.delay(0, 1, random.Random(0))
        assert 0.0 < delay < 0.002

    def test_wan_latency_regions_assigned_round_robin(self):
        model = WanLatency(8)
        assert model.region_of(0) == DEFAULT_WAN_REGIONS[0].name
        assert model.region_of(4) == DEFAULT_WAN_REGIONS[0].name
        assert model.region_of(1) == DEFAULT_WAN_REGIONS[1].name

    def test_wan_intercontinental_slower_than_intra_region(self):
        model = WanLatency(8, jitter=0.0)
        rng = random.Random(0)
        intra = model.delay(0, 4, rng)   # same region
        inter = model.delay(0, 2, rng)   # Paris <-> Sydney
        assert inter > intra * 10

    def test_wan_symmetric_base(self):
        model = WanLatency(8, jitter=0.0)
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == pytest.approx(model.delay(1, 0, rng))

    def test_wan_rejects_bad_n(self):
        with pytest.raises(ValueError):
            WanLatency(0)


class _Recorder(Node):
    def __init__(self, node_id, simulator, network):
        super().__init__(node_id, simulator, network)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.now(), sender, message))


@pytest.fixture
def sim_net():
    sim = Simulator(seed=1)
    net = Network(sim, latency=UniformLatency(base=0.01, jitter=0.0), config=NetworkConfig(processing_delay=0.0))
    return sim, net


class TestNetwork:
    def test_send_delivers_with_latency(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        a.send(1, "hello", size_bytes=0)
        sim.run()
        assert len(b.received) == 1
        time, sender, message = b.received[0]
        assert sender == 0 and message == "hello"
        assert time == pytest.approx(0.01)

    def test_bandwidth_serialises_uplink(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        big = 12_500_000  # 0.1 s at 1 Gbps
        a.send(1, "m1", size_bytes=big)
        a.send(1, "m2", size_bytes=big)
        sim.run()
        t1 = b.received[0][0]
        t2 = b.received[1][0]
        assert t2 - t1 == pytest.approx(0.1, rel=0.05)

    def test_broadcast_reaches_everyone(self, sim_net):
        sim, net = sim_net
        nodes = [_Recorder(i, sim, net) for i in range(4)]
        net.broadcast(0, "ping")
        sim.run()
        for node in nodes:
            assert len(node.received) == 1

    def test_stats_count_messages_and_bytes(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        _Recorder(1, sim, net)
        net.send(0, 1, "x", size_bytes=100)
        sim.run()
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 1
        assert net.stats.bytes_per_node[0] == 100

    def test_link_filter_drops(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        net.set_link_filter(lambda s, r: False)
        net.send(0, 1, "x")
        sim.run()
        assert b.received == []
        assert net.stats.messages_dropped == 1

    def test_duplicate_registration_rejected(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        with pytest.raises(ValueError):
            net.register(0, lambda s, m: None)

    def test_crashed_node_neither_sends_nor_receives(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        b.crash()
        a.send(1, "x")
        b.send(0, "y")
        sim.run()
        assert b.received == []
        assert a.received == []

    def test_crash_cancels_timers(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        fired = []
        a.set_timer("t", 1.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []

    def test_node_timer_restart_replaces_previous(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        fired = []
        a.set_timer("t", 1.0, lambda: fired.append("first"))
        a.set_timer("t", 2.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["second"]

    def test_cancel_timer(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        fired = []
        a.set_timer("t", 1.0, lambda: fired.append(1))
        a.cancel_timer("t")
        sim.run()
        assert fired == []
        assert not a.has_timer("t")

    def test_recovered_node_receives_again(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        b.crash()
        b.recover()
        a.send(1, "x")
        sim.run()
        assert len(b.received) == 1
