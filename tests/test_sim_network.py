"""Tests for latency models, the network transport and nodes."""

import contextlib
import random
import warnings

import pytest


@contextlib.contextmanager
def warnings_none():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield

from repro.sim.latency import DEFAULT_WAN_REGIONS, LanLatency, UniformLatency, WanLatency
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.sim.simulator import Simulator


class TestLatencyModels:
    def test_uniform_latency_self_delivery_is_free(self):
        model = UniformLatency(base=0.01)
        assert model.delay(1, 1, random.Random(0)) == 0.0

    def test_uniform_latency_base(self):
        model = UniformLatency(base=0.01, jitter=0.0)
        assert model.delay(0, 1, random.Random(0)) == pytest.approx(0.01)

    def test_uniform_rejects_negative(self):
        with pytest.raises(ValueError):
            UniformLatency(base=-1)

    def test_lan_latency_sub_millisecond(self):
        model = LanLatency()
        delay = model.delay(0, 1, random.Random(0))
        assert 0.0 < delay < 0.002

    def test_wan_latency_regions_assigned_round_robin(self):
        model = WanLatency(8)
        assert model.region_of(0) == DEFAULT_WAN_REGIONS[0].name
        assert model.region_of(4) == DEFAULT_WAN_REGIONS[0].name
        assert model.region_of(1) == DEFAULT_WAN_REGIONS[1].name

    def test_wan_intercontinental_slower_than_intra_region(self):
        model = WanLatency(8, jitter=0.0)
        rng = random.Random(0)
        intra = model.delay(0, 4, rng)   # same region
        inter = model.delay(0, 2, rng)   # Paris <-> Sydney
        assert inter > intra * 10

    def test_wan_symmetric_base(self):
        model = WanLatency(8, jitter=0.0)
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == pytest.approx(model.delay(1, 0, rng))

    def test_wan_rejects_bad_n(self):
        with pytest.raises(ValueError):
            WanLatency(0)

    def test_wan_unknown_pair_warns_once_with_default(self):
        from repro.sim.latency import Region

        model = WanLatency(2, regions=(Region("atlantis"), Region("eu-west-3")), jitter=0.0)
        rng = random.Random(0)
        with pytest.warns(UserWarning, match="atlantis"):
            assert model.delay(0, 1, rng) == pytest.approx(0.100)
        with warnings_none():
            model.delay(0, 1, rng)  # second lookup of the same pair is silent

    def test_wan_unknown_pair_raises_when_strict(self):
        from repro.sim.latency import Region

        model = WanLatency(
            2, regions=(Region("atlantis"), Region("eu-west-3")), default_delay=None
        )
        with pytest.raises(KeyError):
            model.delay(0, 1, random.Random(0))

    def test_topology_latency_asymmetric_and_strict(self):
        from repro.sim.latency import TopologyLatency

        model = TopologyLatency(
            assignment=("a", "b"),
            delays={("a", "b"): 0.02, ("b", "a"): 0.08},
            jitter=0.0,
            symmetric=False,
        )
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == pytest.approx(0.02)
        assert model.delay(1, 0, rng) == pytest.approx(0.08)
        strict = TopologyLatency(assignment=("a", "b"), delays={}, jitter=0.0)
        with pytest.raises(KeyError):
            strict.delay(0, 1, rng)


class _Recorder(Node):
    def __init__(self, node_id, simulator, network):
        super().__init__(node_id, simulator, network)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.now(), sender, message))


@pytest.fixture
def sim_net():
    sim = Simulator(seed=1)
    net = Network(sim, latency=UniformLatency(base=0.01, jitter=0.0), config=NetworkConfig(processing_delay=0.0))
    return sim, net


class TestNetwork:
    def test_send_delivers_with_latency(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        a.send(1, "hello", size_bytes=0)
        sim.run()
        assert len(b.received) == 1
        time, sender, message = b.received[0]
        assert sender == 0 and message == "hello"
        assert time == pytest.approx(0.01)

    def test_bandwidth_serialises_uplink(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        big = 12_500_000  # 0.1 s at 1 Gbps
        a.send(1, "m1", size_bytes=big)
        a.send(1, "m2", size_bytes=big)
        sim.run()
        t1 = b.received[0][0]
        t2 = b.received[1][0]
        assert t2 - t1 == pytest.approx(0.1, rel=0.05)

    def test_broadcast_reaches_everyone(self, sim_net):
        sim, net = sim_net
        nodes = [_Recorder(i, sim, net) for i in range(4)]
        net.broadcast(0, "ping")
        sim.run()
        for node in nodes:
            assert len(node.received) == 1

    def test_stats_count_messages_and_bytes(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        _Recorder(1, sim, net)
        net.send(0, 1, "x", size_bytes=100)
        sim.run()
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 1
        assert net.stats.bytes_per_node[0] == 100

    def test_link_filter_drops(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        net.set_link_filter(lambda s, r: False)
        net.send(0, 1, "x")
        sim.run()
        assert b.received == []
        assert net.stats.messages_dropped == 1

    def test_duplicate_registration_rejected(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        with pytest.raises(ValueError):
            net.register(0, lambda s, m: None)

    def test_crashed_node_neither_sends_nor_receives(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        b.crash()
        a.send(1, "x")
        b.send(0, "y")
        sim.run()
        assert b.received == []
        assert a.received == []

    def test_crash_cancels_timers(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        fired = []
        a.set_timer("t", 1.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []

    def test_node_timer_restart_replaces_previous(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        fired = []
        a.set_timer("t", 1.0, lambda: fired.append("first"))
        a.set_timer("t", 2.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["second"]

    def test_cancel_timer(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        fired = []
        a.set_timer("t", 1.0, lambda: fired.append(1))
        a.cancel_timer("t")
        sim.run()
        assert fired == []
        assert not a.has_timer("t")

    def test_recovered_node_receives_again(self, sim_net):
        sim, net = sim_net
        a = _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        b.crash()
        b.recover()
        a.send(1, "x")
        sim.run()
        assert len(b.received) == 1

    def test_link_filter_drop_accounting(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        c = _Recorder(2, sim, net)
        net.set_link_filter(lambda s, r: r != 1)  # node 1 unreachable
        net.send(0, 1, "lost", size_bytes=10)
        net.send(0, 2, "ok", size_bytes=10)
        sim.run()
        # Every send is counted as sent (and in the byte totals) even when
        # the link filter drops it; only deliveries reflect the filter.
        assert net.stats.messages_sent == 2
        assert net.stats.bytes_sent == 20
        assert net.stats.messages_dropped == 1
        assert net.stats.drops_by_cause == {"link-filter": 1}
        assert net.stats.messages_delivered == 1
        assert b.received == [] and len(c.received) == 1

    def test_multicast_serialises_on_single_uplink(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        receivers = [_Recorder(i, sim, net) for i in range(1, 4)]
        big = 12_500_000  # 0.1 s at 1 Gbps
        net.multicast(0, [1, 2, 3], "blob", size_bytes=big)
        sim.run()
        arrivals = sorted(node.received[0][0] for node in receivers)
        # Copies queue behind each other on the sender's uplink: each later
        # copy departs one full transmission time after the previous one.
        assert arrivals[1] - arrivals[0] == pytest.approx(0.1, rel=0.01)
        assert arrivals[2] - arrivals[1] == pytest.approx(0.1, rel=0.01)

    def test_per_node_bandwidth_override(self, sim_net):
        sim, net = sim_net
        _Recorder(0, sim, net)
        _Recorder(1, sim, net)
        b = _Recorder(2, sim, net)
        net.config.node_bandwidth = {1: 12_500_000}  # 100 Mbps for node 1
        size = 1_250_000  # 0.01 s at 1 Gbps, 0.1 s at 100 Mbps
        net.send(0, 2, "fast", size_bytes=size)
        net.send(1, 2, "slow", size_bytes=size)
        sim.run()
        times = {message: time for time, _, message in b.received}
        assert times["slow"] - times["fast"] == pytest.approx(0.09, rel=0.05)


class TestDuplicateDelivery:
    def test_duplicates_delivered_and_counted(self):
        sim = Simulator(seed=3)
        net = Network(
            sim,
            latency=UniformLatency(base=0.01, jitter=0.0),
            config=NetworkConfig(processing_delay=0.0, duplicate_probability=1.0),
        )
        _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        net.send(0, 1, "x")
        sim.run()
        assert len(b.received) == 2
        assert net.stats.messages_duplicated == 1
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 2

    def test_duplicate_injection_deterministic(self):
        def run_once():
            sim = Simulator(seed=9)
            net = Network(
                sim,
                latency=UniformLatency(base=0.01, jitter=0.001),
                config=NetworkConfig(processing_delay=0.0, duplicate_probability=0.5),
            )
            _Recorder(0, sim, net)
            b = _Recorder(1, sim, net)
            for i in range(50):
                net.send(0, 1, i)
            sim.run()
            return [(round(t, 9), m) for t, _, m in b.received], net.stats.messages_duplicated

        first = run_once()
        second = run_once()
        assert first == second
        assert first[1] > 0  # some duplicates actually happened

    def test_zero_probability_never_draws(self):
        sim = Simulator(seed=3)
        net = Network(
            sim,
            latency=UniformLatency(base=0.01, jitter=0.0),
            config=NetworkConfig(processing_delay=0.0),
        )
        _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        net.send(0, 1, "x")
        sim.run()
        assert len(b.received) == 1
        assert net.stats.messages_duplicated == 0


class TestPartition:
    def _net(self):
        sim = Simulator(seed=1)
        net = Network(
            sim,
            latency=UniformLatency(base=0.01, jitter=0.0),
            config=NetworkConfig(processing_delay=0.0),
        )
        nodes = [_Recorder(i, sim, net) for i in range(4)]
        return sim, net, nodes

    def test_partition_blocks_cross_group_traffic(self):
        sim, net, nodes = self._net()
        net.set_partition([(0, 1), (2, 3)])
        net.send(0, 1, "same-group")
        net.send(0, 2, "cross-group")
        sim.run()
        assert len(nodes[1].received) == 1
        assert nodes[2].received == []
        assert net.stats.drops_by_cause == {"partition": 1}

    def test_heal_restores_full_connectivity(self):
        sim, net, nodes = self._net()
        net.set_partition([(0, 1), (2, 3)])
        net.send(0, 2, "during")
        sim.run()
        net.heal_partition()
        net.send(0, 2, "after")
        sim.run()
        assert [m for _, _, m in nodes[2].received] == ["after"]
        assert not net.partitioned

    def test_node_outside_every_group_is_isolated(self):
        sim, net, nodes = self._net()
        net.set_partition([(0, 1, 2)])  # node 3 in no group
        net.send(0, 3, "to-isolated")
        net.send(3, 0, "from-isolated")
        sim.run()
        assert nodes[3].received == []
        assert nodes[0].received == []
        assert net.stats.drops_by_cause == {"partition": 2}

    def test_repartition_replaces_previous_split(self):
        sim, net, nodes = self._net()
        net.set_partition([(0, 1), (2, 3)])
        net.set_partition([(0, 2), (1, 3)])
        net.send(0, 2, "now-same-group")
        net.send(0, 1, "now-cross-group")
        sim.run()
        assert len(nodes[2].received) == 1
        assert nodes[1].received == []

    def test_overlapping_groups_rejected(self):
        _, net, _ = self._net()
        with pytest.raises(ValueError):
            net.set_partition([(0, 1), (1, 2)])

    def test_partition_composes_with_link_filter(self):
        sim, net, nodes = self._net()
        net.set_link_filter(lambda s, r: r != 1)
        net.set_partition([(0, 1), (2, 3)])
        net.send(0, 1, "filtered")     # same group, but filter drops it
        net.send(2, 3, "delivered")
        sim.run()
        assert nodes[1].received == []
        assert len(nodes[3].received) == 1


class TestDynamicControls:
    def test_latency_scale_degrades_links(self):
        sim = Simulator(seed=1)
        net = Network(
            sim,
            latency=UniformLatency(base=0.01, jitter=0.0),
            config=NetworkConfig(processing_delay=0.0),
        )
        _Recorder(0, sim, net)
        b = _Recorder(1, sim, net)
        net.set_latency_scale(4.0)
        net.send(0, 1, "slow")
        sim.run()
        assert b.received[0][0] == pytest.approx(0.04)
        with pytest.raises(ValueError):
            net.set_latency_scale(0.0)

    def test_drop_probability_setter_validates(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.set_drop_probability(0.5)
        assert net.config.drop_probability == 0.5
        with pytest.raises(ValueError):
            net.set_drop_probability(1.5)
