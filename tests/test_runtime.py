"""Tests for the sans-I/O runtime seam and its two execution backends.

Covers:

* the architectural lint: no protocol/consensus module may import the
  simulator or the network directly — everything goes through
  :mod:`repro.runtime`;
* the :class:`~repro.runtime.des.DESRuntime` and
  :class:`~repro.runtime.realtime.RealtimeRuntime` contracts (scheduling,
  cancellation, transport, dynamics controls);
* multicast-path alignment: an honest pass-through interceptor must be
  network-level indistinguishable from no interceptor;
* crash–recover timer semantics (the ``on_recover`` hook);
* DES vs realtime equivalence: the same deterministic scenario confirms the
  same block sequence on both backends (realtime variant marked ``slow``).
"""

import os

import pytest

from repro.runtime import (
    DESRuntime,
    NetworkConfig,
    RealtimeRuntime,
    Runtime,
    RUNTIME_KINDS,
    build_runtime,
)
from repro.sim.latency import UniformLatency
from repro.sim.node import Node

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")

#: packages that must stay sans-I/O (the runtime seam is their only backend).
#: The ad hoc regex lint that used to live here is now the SEAM rule family
#: in ``repro.staticcheck`` (which also bans asyncio/time/threading and
#: covers core+adversary); this test delegates so coverage never regresses.
SANS_IO_PACKAGES = ("protocols", "consensus", "core", "adversary")


# ----------------------------------------------------------------- the lint
@pytest.mark.parametrize("package", SANS_IO_PACKAGES)
def test_no_direct_simulator_or_network_imports(package):
    from repro.staticcheck import check_paths, select_rules

    report = check_paths(
        [os.path.join(SRC, "repro", package)], rules=select_rules(["SEAM"])
    )
    details = "\n".join(v.format_text() for v in report.violations)
    assert report.exit_code == 0, (
        f"sans-I/O violation: protocol code must talk to repro.runtime, not "
        f"the DES engine or the OS directly:\n{details}"
    )


# ------------------------------------------------------------ the interface
class TestBuildRuntime:
    def test_kinds(self):
        assert RUNTIME_KINDS == ("des", "realtime", "sharded")

    def test_builds_each_kind(self):
        assert isinstance(build_runtime("des"), DESRuntime)
        assert isinstance(build_runtime("realtime"), RealtimeRuntime)
        assert isinstance(build_runtime("des"), Runtime)
        assert isinstance(build_runtime("realtime"), Runtime)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_runtime("sockets")

    def test_system_config_validates_runtime(self):
        from repro.protocols.base import SystemConfig

        with pytest.raises(ValueError):
            SystemConfig(runtime="threads")
        with pytest.raises(ValueError):
            SystemConfig(runtime="realtime", realtime_timescale=0.0)

    def test_cell_key_includes_runtime(self):
        from repro.bench.config import ExperimentCell
        from repro.bench.sweep import cell_key

        des = ExperimentCell(protocol="ladon-pbft", n=4)
        realtime = ExperimentCell(protocol="ladon-pbft", n=4, runtime="realtime")
        assert cell_key(des) != cell_key(realtime)


class _Echo(Node):
    def __init__(self, node_id, runtime):
        super().__init__(node_id, runtime)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((round(self.now(), 6), sender, message))


class TestDESRuntime:
    def _runtime(self):
        return build_runtime(
            "des",
            seed=1,
            latency=UniformLatency(base=0.01, jitter=0.0),
            network_config=NetworkConfig(processing_delay=0.0),
        )

    def test_schedule_and_cancel(self):
        runtime = self._runtime()
        fired = []
        runtime.schedule_at(1.0, lambda: fired.append("at"))
        runtime.schedule_after(0.5, lambda: fired.append("after"))
        handle = runtime.schedule_at(0.75, lambda: fired.append("cancelled"))
        runtime.cancel(handle)
        runtime.spawn(lambda: fired.append("spawned"))
        end = runtime.run(until=2.0)
        assert fired == ["spawned", "after", "at"]
        assert end == 2.0
        assert runtime.now() == 2.0

    def test_transport_roundtrip(self):
        runtime = self._runtime()
        nodes = [_Echo(i, runtime) for i in range(3)]
        assert runtime.registered_nodes() == [0, 1, 2]
        nodes[0].send(1, "hi")
        nodes[0].multicast([1, 2], "all")
        runtime.run(until=1.0)
        assert [m for _, _, m in nodes[1].received] == ["hi", "all"]
        assert [m for _, _, m in nodes[2].received] == ["all"]
        assert runtime.stats.messages_sent == 3
        assert runtime.stats.messages_delivered == 3

    def test_dynamics_controls(self):
        runtime = self._runtime()
        nodes = [_Echo(i, runtime) for i in range(4)]
        runtime.set_partition([(0, 1), (2, 3)])
        assert runtime.partitioned
        nodes[0].send(2, "blocked")
        runtime.heal_partition()
        nodes[0].send(2, "flows")
        runtime.set_drop_probability(0.5)
        assert runtime.drop_probability == 0.5
        runtime.set_drop_probability(0.0)
        runtime.run(until=1.0)
        assert [m for _, _, m in nodes[2].received] == ["flows"]
        assert runtime.stats.drops_by_cause == {"partition": 1}

    def test_legacy_node_wiring_still_works(self):
        from repro.sim.network import Network
        from repro.sim.simulator import Simulator

        simulator = Simulator(seed=0)
        network = Network(simulator, latency=UniformLatency(base=0.01, jitter=0.0))
        a = _Echo.__new__(_Echo)
        Node.__init__(a, 0, simulator, network)
        a.received = []
        assert isinstance(a.runtime, DESRuntime)
        assert a.runtime.simulator is simulator
        assert a.runtime.network is network


class TestRealtimeRuntime:
    def _runtime(self, **kwargs):
        kwargs.setdefault("latency", UniformLatency(base=0.0, jitter=0.0))
        kwargs.setdefault("network_config", NetworkConfig(processing_delay=0.0))
        kwargs.setdefault("time_scale", 0.02)
        return build_runtime("realtime", **kwargs)

    def test_schedule_order_and_cancel(self):
        runtime = self._runtime()
        fired = []
        runtime.schedule_at(0.2, lambda: fired.append("b"))
        runtime.schedule_at(0.1, lambda: fired.append("a"))
        handle = runtime.schedule_at(0.15, lambda: fired.append("x"))
        handle.cancel()
        runtime.schedule_at(0.2, lambda: fired.append("c"))  # FIFO at same time
        end = runtime.run(until=0.5)
        assert fired == ["a", "b", "c"]
        assert end == 0.5
        assert runtime.now() == 0.5

    def test_open_ended_run_drains_and_stops(self):
        runtime = self._runtime()
        fired = []
        runtime.schedule_at(0.05, lambda: fired.append(1))
        runtime.run()
        assert fired == [1]

    def test_timers_rearm_during_run(self):
        runtime = self._runtime()
        fired = []

        def tick():
            fired.append(round(runtime.now(), 2))
            if len(fired) < 3:
                runtime.schedule_after(0.1, tick)

        runtime.schedule_after(0.1, tick)
        runtime.run(until=1.0)
        assert len(fired) == 3

    def test_transport_matches_des_semantics(self):
        runtime = self._runtime()
        nodes = [_Echo(i, runtime) for i in range(3)]
        nodes[0].multicast([1, 2], "m")
        nodes[1].send(2, "u")
        runtime.run(until=0.2)
        assert [m for _, _, m in nodes[2].received] == ["m", "u"]
        assert runtime.stats.messages_sent == 3
        assert runtime.stats.messages_delivered == 3

    def test_events_processed_counts(self):
        runtime = self._runtime()
        for _ in range(5):
            runtime.schedule_after(0.01, lambda: None)
        runtime.run(until=0.1)
        assert runtime.events_processed == 5

    def test_callback_exception_propagates_out_of_run(self):
        """Regression: asyncio swallows callback exceptions into its logger;
        the runtime must instead end the run and re-raise from run(), like
        the DES backend, rather than silently idling to the horizon with a
        disarmed scheduler."""
        runtime = self._runtime()
        fired = []

        def boom():
            raise RuntimeError("protocol bug")

        runtime.schedule_at(0.05, boom)
        runtime.schedule_at(0.1, lambda: fired.append("after"))
        with pytest.raises(RuntimeError, match="protocol bug"):
            runtime.run(until=1.0)
        assert fired == []  # the run ended at the failure point


# ---------------------------------------------------- multicast alignment
class _PassThrough:
    """An honest interceptor: observes every outbound message, changes none."""

    def __init__(self):
        self.seen = []

    def outbound(self, node, receiver, message, size_bytes):
        self.seen.append((node.node_id, receiver))
        return False


class TestMulticastInterceptorAlignment:
    def _run(self, interceptor):
        runtime = build_runtime(
            "des",
            seed=7,
            latency=UniformLatency(base=0.01, jitter=0.005),
            network_config=NetworkConfig(
                processing_delay=0.0, drop_probability=0.1, duplicate_probability=0.1
            ),
        )
        nodes = [_Echo(i, runtime) for i in range(5)]
        nodes[0].interceptor = interceptor
        for _ in range(20):
            nodes[0].multicast([1, 2, 3, 4], "payload", size_bytes=4096)
        runtime.run(until=5.0)
        received = {n.node_id: n.received for n in nodes}
        return runtime.stats, received

    def test_pass_through_interceptor_is_network_level_identical(self):
        """Regression: the interceptor path used to fall back to per-receiver
        ``send``, which could diverge from the fused fan-out on bandwidth,
        duplicate, and loss accounting.  With a pass-through interceptor the
        two paths must now be byte-identical — same stats, same delivery
        times — because the pass-through receivers go through the same
        ``runtime.multicast`` fan-out."""
        honest_stats, honest_received = self._run(None)
        interceptor = _PassThrough()
        intercepted_stats, intercepted_received = self._run(interceptor)
        assert interceptor.seen  # the interceptor really was in the path
        assert honest_stats == intercepted_stats
        assert honest_received == intercepted_received


# ------------------------------------------------------- crash / recovery
class _TimerNode(Node):
    def __init__(self, node_id, runtime):
        super().__init__(node_id, runtime)
        self.recoveries = 0
        self.fired = []

    def on_message(self, sender, message):
        pass

    def on_recover(self):
        self.recoveries += 1
        self.set_timer("heartbeat", 0.1, lambda: self.fired.append(self.now()))


class TestCrashRecoverTimers:
    def test_crash_drops_timers_and_recover_rearms_via_hook(self):
        runtime = build_runtime("des", latency=UniformLatency(base=0.01, jitter=0.0))
        node = _TimerNode(0, runtime)
        node.set_timer("heartbeat", 0.1, lambda: node.fired.append(node.now()))
        runtime.schedule_at(0.05, node.crash)
        runtime.schedule_at(0.2, node.recover)
        runtime.run(until=1.0)
        assert node.recoveries == 1
        # The pre-crash timer died with the crash; only the re-armed one fired.
        assert node.fired == [pytest.approx(0.3)]
        assert not node.crashed

    def test_recover_without_crash_is_a_no_op(self):
        runtime = build_runtime("des")
        node = _TimerNode(0, runtime)
        node.recover()
        assert node.recoveries == 0

    def test_recovered_leader_resumes_proposing(self):
        """A crashed-and-recovered leader must re-arm proposal pacing: its
        instance keeps confirming new blocks after the recovery."""
        from repro.protocols.registry import build_system
        from repro.protocols.base import SystemConfig
        from repro.sim.faults import CrashSpec, FaultConfig

        config = SystemConfig(
            protocol="ladon-pbft",
            n=4,
            duration=12.0,
            environment="lan",
            batch_size=64,
            faults=FaultConfig(crashes=(CrashSpec(replica=1, at=2.0, recover_at=4.0),)),
        )
        system = build_system(config)
        result = system.run()
        replica = system.replicas[1]
        assert not replica.crashed
        # Pacing was re-armed on recovery and instance 1 committed fresh
        # blocks well after the recovery point.
        late = [
            c
            for c in result.confirmed
            if c.block.instance == 1 and c.confirmed_at > 5.0 and c.block.proposed_at > 4.0
        ]
        assert late, "recovered leader never proposed again"


# ----------------------------------------------- DES vs realtime equivalence
def _confirmed_sequence(runtime_kind, time_scale=1.0):
    from repro.protocols.base import SystemConfig
    from repro.protocols.registry import build_system

    config = SystemConfig(
        protocol="ladon-pbft",
        n=4,
        duration=2.0,
        environment="lan",
        batch_size=256,
        seed=3,
        runtime=runtime_kind,
        realtime_timescale=time_scale,
    )
    result = build_system(config).run()
    assert result.audit.safety_ok
    return [(c.block.instance, c.block.rank, c.block.tx_count) for c in result.confirmed]


@pytest.mark.slow
def test_realtime_confirms_the_same_block_sequence_as_des():
    """The tentpole equivalence property: one deterministic scenario, two
    backends, the same confirmed-block sequence.  The realtime run executes
    2 simulated seconds in ~1 s of wall time (time_scale=0.5)."""
    des = _confirmed_sequence("des")
    realtime = _confirmed_sequence("realtime", time_scale=0.5)
    assert len(des) >= 20, "scenario too short to be meaningful"
    overlap = min(len(des), len(realtime))
    # Wall-clock jitter may cut the realtime run a block or two earlier or
    # later at the horizon; the committed prefix must match exactly.
    assert abs(len(des) - len(realtime)) <= 4
    assert des[:overlap] == realtime[:overlap]


def test_runtime_flag_flows_through_experiment_cell():
    from repro.bench.config import ExperimentCell

    cell = ExperimentCell(
        protocol="ladon-pbft", n=4, runtime="realtime", realtime_timescale=0.25
    )
    config = cell.to_system_config()
    assert config.runtime == "realtime"
    assert config.realtime_timescale == 0.25
    assert "rt:realtime" in cell.label()

    with pytest.raises(ValueError):
        from repro.bench.runner import run_cell

        run_cell(
            ExperimentCell(protocol="ladon-pbft", n=4, engine="analytical", runtime="realtime")
        )
