"""Tests for the inter-block causal strength metric (Sec. 6.4)."""

import math

from repro.core.block import Block
from repro.core.causality import causal_strength, count_causality_violations
from repro.core.ordering import ConfirmedBlock


def confirmed(sn, instance, round, rank, proposed_at, committed_at):
    block = Block(
        instance=instance,
        round=round,
        rank=rank,
        proposed_at=proposed_at,
        committed_at=committed_at,
        tx_count_hint=1,
    )
    return ConfirmedBlock(block=block, sn=sn, confirmed_at=committed_at + 0.1)


class TestCausalityViolations:
    def test_empty_log_has_strength_one(self):
        assert causal_strength([]) == 1.0

    def test_no_violation_when_order_follows_generation(self):
        log = [
            confirmed(0, 0, 1, 1, proposed_at=0.0, committed_at=1.0),
            confirmed(1, 1, 1, 2, proposed_at=0.5, committed_at=1.5),
            confirmed(2, 0, 2, 3, proposed_at=2.0, committed_at=3.0),
        ]
        assert count_causality_violations(log) == 0
        assert causal_strength(log) == 1.0

    def test_front_running_block_counts_as_violation(self):
        # Block at sn=0 was proposed after the sn=1 block had committed:
        # exactly the front-running situation of Sec. 4.3.
        log = [
            confirmed(0, 1, 1, 1, proposed_at=5.0, committed_at=6.0),
            confirmed(1, 0, 1, 2, proposed_at=0.0, committed_at=1.0),
        ]
        assert count_causality_violations(log) == 1
        assert causal_strength(log) == math.exp(-1 / 2)

    def test_multiple_violations_accumulate(self):
        # One late-generated block ordered before three already-committed ones.
        log = [
            confirmed(0, 1, 1, 1, proposed_at=10.0, committed_at=11.0),
            confirmed(1, 0, 1, 2, proposed_at=0.0, committed_at=1.0),
            confirmed(2, 0, 2, 3, proposed_at=1.0, committed_at=2.0),
            confirmed(3, 0, 3, 4, proposed_at=2.0, committed_at=3.0),
        ]
        assert count_causality_violations(log) == 3
        assert causal_strength(log) == math.exp(-3 / 4)

    def test_uncommitted_blocks_ignored(self):
        block = Block(instance=0, round=1, rank=1, proposed_at=0.0, committed_at=None)
        log = [
            ConfirmedBlock(block=block, sn=0, confirmed_at=1.0),
            confirmed(1, 1, 1, 2, proposed_at=0.0, committed_at=1.0),
        ]
        # The first block has no commit time, so it cannot witness violations.
        assert count_causality_violations(log) == 0

    def test_strength_decreases_with_violations(self):
        base = [confirmed(i, 0, i + 1, i + 1, proposed_at=float(i), committed_at=float(i) + 0.5) for i in range(5)]
        worse = list(base)
        worse[0] = confirmed(0, 1, 1, 1, proposed_at=100.0, committed_at=101.0)
        assert causal_strength(worse) < causal_strength(base)

    def test_strength_in_unit_interval(self):
        log = [
            confirmed(0, 1, 1, 1, proposed_at=50.0, committed_at=51.0),
            confirmed(1, 0, 1, 2, proposed_at=0.0, committed_at=1.0),
        ]
        assert 0.0 < causal_strength(log) <= 1.0
