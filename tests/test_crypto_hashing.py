"""Tests for repro.crypto.hashing."""

import pytest

from repro.crypto.hashing import digest, digest_hex, merkle_root


class TestDigest:
    def test_digest_is_32_bytes(self):
        assert len(digest("hello")) == 32

    def test_digest_deterministic(self):
        assert digest("a", 1, None) == digest("a", 1, None)

    def test_digest_differs_for_different_inputs(self):
        assert digest("a") != digest("b")

    def test_digest_distinguishes_types(self):
        # "1" (string) and 1 (int) must not collide.
        assert digest("1") != digest(1)

    def test_digest_distinguishes_structure(self):
        # ("ab",) vs ("a", "b") must not collide thanks to length prefixes.
        assert digest(("ab",)) != digest(("a", "b"))

    def test_digest_handles_nested_sequences(self):
        assert len(digest((1, ("a", b"x"), [2, 3]))) == 32

    def test_digest_handles_bool(self):
        assert digest(True) != digest(False)
        assert digest(True) != digest(1)

    def test_digest_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            digest(object())

    def test_digest_hex_matches_digest(self):
        assert digest_hex("x") == digest("x").hex()


class TestMerkleRoot:
    def test_empty_root_is_stable(self):
        assert merkle_root([]) == merkle_root([])

    def test_single_leaf(self):
        assert len(merkle_root([b"tx1"])) == 32

    def test_root_changes_with_leaf_content(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"a", b"c"])

    def test_root_changes_with_leaf_order(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_odd_number_of_leaves(self):
        root = merkle_root([b"a", b"b", b"c"])
        assert len(root) == 32

    def test_large_batch(self):
        leaves = [f"tx{i}".encode() for i in range(257)]
        assert len(merkle_root(leaves)) == 32
