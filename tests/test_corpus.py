"""The fuzzer's regression corpus: every artifact must replay bit-exactly.

``tests/corpus/*.json`` are minimized schedule-space violations found by
``python -m repro.bench fuzz run`` and pinned forever: each artifact names
an experiment cell, the decision vector that perturbs its schedule, and the
expected outcome (audit verdict + canonical trace digest).  A replay that
diverges means protocol or simulator behaviour changed on exactly the
interleaving that once exposed a bug — the one interleaving we know is
load-bearing.

Artifacts carrying compat flags reproduce *historical* bugs behind opt-in
flags; for those the faithful protocol (flags stripped) must NOT violate,
which pins both directions: the bug stays reproducible, the fix stays fixed.
"""

import glob
import os

import pytest

from repro.fuzz.artifact import artifact_cell, is_violation, read_artifact
from repro.fuzz.replay import replay_artifact

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
ARTIFACTS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _name(path):
    return os.path.basename(path)


def test_corpus_is_not_empty():
    assert ARTIFACTS, f"no artifacts in {CORPUS_DIR}"


@pytest.mark.parametrize("path", ARTIFACTS, ids=_name)
def test_artifact_replays_bit_exact(path):
    artifact = read_artifact(path)
    report = replay_artifact(artifact)
    assert report.ok, f"{_name(path)}: {report.summary()}"
    # A corpus artifact that stopped violating is stale, not just diverged.
    assert is_violation(report.outcome), (
        f"{_name(path)} replayed bit-exact but no longer violates; "
        "regenerate or retire it"
    )


@pytest.mark.parametrize(
    "path",
    [p for p in ARTIFACTS if read_artifact(p)["cell"].get("compat_flags")],
    ids=_name,
)
def test_fixed_protocol_does_not_reproduce_compat_artifacts(path):
    """Negative control: same schedule, compat flags stripped, no violation.

    Only the verdict is checked — stripping the flag legitimately changes
    the schedule (the fixed protocol sends different messages), so digest
    equality is neither expected nor meaningful here.
    """
    from dataclasses import replace

    from repro.fuzz.artifact import outcome_of
    from repro.fuzz.replay import run_cell_traced

    cell = replace(artifact_cell(read_artifact(path)), compat_flags=())
    system, result = run_cell_traced(cell)
    outcome = outcome_of(result, system.trace.events)
    assert not is_violation(outcome), (
        f"{_name(path)}: faithful protocol still violates with the compat "
        f"flag stripped: {outcome['violation_kinds']}"
    )
