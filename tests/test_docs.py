"""Docs cannot rot: examples must run and fenced CLI commands must parse.

Two guarantees:

* every ``examples/*.py`` smoke-runs to completion under the fast budget
  (``REPRO_FAST=1``, which the heavier examples honor with shorter
  simulated durations);
* every ``python -m repro.bench ...`` command fenced in README.md /
  EXPERIMENTS.md names a real subcommand (checked via ``--help``) and,
  where it references an experiment / scenario / adversary by name, that
  name resolves in the corresponding registry.
"""

import contextlib
import io
import os
import re
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")
DOCS = ("README.md", "EXPERIMENTS.md")

EXAMPLE_SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


# ------------------------------------------------------------ (a) examples
@pytest.mark.scenario
@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_smoke_runs(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_FAST"] = "1"
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"examples/{script} failed:\n{result.stdout[-1000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"examples/{script} produced no output"


def test_every_example_is_mentioned_in_the_docs():
    docs = "".join(
        open(os.path.join(REPO_ROOT, doc), encoding="utf-8").read() for doc in DOCS
    )
    missing = [s for s in EXAMPLE_SCRIPTS if s not in docs]
    assert not missing, f"examples never referenced in README/EXPERIMENTS: {missing}"


# ------------------------------------------------------- (b) fenced CLI
def _fenced_bench_commands():
    """Every ``python -m repro.bench ...`` line inside a code fence."""
    commands = []
    for doc in DOCS:
        text = open(os.path.join(REPO_ROOT, doc), encoding="utf-8").read()
        for fence in re.findall(r"```[a-z]*\n(.*?)```", text, flags=re.DOTALL):
            for line in fence.splitlines():
                match = re.search(r"python -m repro\.bench\s+(.*)", line)
                if match:
                    commands.append((doc, match.group(1).strip()))
    return commands


FENCED = _fenced_bench_commands()


def _run_help(argv):
    """Invoke the bench CLI in-process expecting a clean ``--help`` exit."""
    from repro.bench.__main__ import main

    stdout, stderr = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(stdout), contextlib.redirect_stderr(stderr):
        try:
            code = main(argv)
        except SystemExit as exit_:  # argparse exits on --help
            code = exit_.code or 0
    assert code == 0, f"{argv} exited {code}: {stderr.getvalue()[-500:]}"
    assert stdout.getvalue().strip(), f"{argv} printed nothing"


def test_docs_contain_bench_commands():
    assert len(FENCED) >= 8, f"expected fenced CLI commands in the docs, got {FENCED}"


@pytest.mark.parametrize(
    "doc,command", FENCED, ids=[f"{d}:{c[:40]}" for d, c in FENCED]
)
def test_fenced_bench_command_parses(doc, command):
    tokens = command.split()
    head = tokens[0]
    if head in ("scenario", "adversary"):
        assert len(tokens) >= 2, f"{doc}: bare '{command}'"
        sub = tokens[1]
        _run_help([head, sub, "--help"])
        if sub == "run":
            name = tokens[2]
            if head == "scenario":
                from repro.scenario.registry import get_scenario

                get_scenario(name)  # raises on unknown names
            else:
                from repro.adversary.registry import get_adversary

                get_adversary(name)
    elif head == "fuzz":
        assert len(tokens) >= 2, f"{doc}: bare '{command}'"
        _run_help(["fuzz", tokens[1], "--help"])
        # Documented corpus artifacts must actually be checked in.
        for token in tokens[2:]:
            if token.startswith("tests/corpus/") and "*" not in token:
                assert os.path.exists(os.path.join(REPO_ROOT, token)), (
                    f"{doc} references missing corpus artifact {token}"
                )
    elif head in ("run", "perf"):
        _run_help([head, "--help"])
    elif head == "list":
        _run_help(["list"])
    else:
        from repro.bench.__main__ import EXPERIMENTS

        assert head in EXPERIMENTS, f"{doc} references unknown experiment {head!r}"
        _run_help([head, "--help"])


def _fenced_staticcheck_commands():
    """Every ``python -m repro.staticcheck ...`` line inside a code fence."""
    commands = []
    for doc in DOCS:
        text = open(os.path.join(REPO_ROOT, doc), encoding="utf-8").read()
        for fence in re.findall(r"```[a-z]*\n(.*?)```", text, flags=re.DOTALL):
            for line in fence.splitlines():
                match = re.search(r"python -m repro\.staticcheck\s*(.*)", line)
                if match:
                    commands.append((doc, match.group(1).strip()))
    return commands


FENCED_STATICCHECK = _fenced_staticcheck_commands()


def test_docs_contain_staticcheck_commands():
    assert len(FENCED_STATICCHECK) >= 4, (
        f"expected fenced staticcheck commands in the docs, got {FENCED_STATICCHECK}"
    )


@pytest.mark.parametrize(
    "doc,command",
    FENCED_STATICCHECK,
    ids=[f"{d}:{c[:40]}" for d, c in FENCED_STATICCHECK],
)
def test_fenced_staticcheck_command_runs_clean(doc, command):
    """The documented commands must work verbatim — and since the shipped
    tree is clean, every one of them must exit 0."""
    from repro.staticcheck.cli import main

    command = command.split("#")[0].strip()  # drop trailing fence annotations
    argv = [
        os.path.join(REPO_ROOT, "src") if token == "src" else token
        for token in command.split()
    ]
    stream = io.StringIO()
    code = main(argv, stream=stream)
    assert code == 0, f"{doc}: '{command}' exited {code}:\n{stream.getvalue()[-500:]}"
    assert stream.getvalue().strip(), f"{doc}: '{command}' printed nothing"


def test_readme_architecture_map_matches_source_tree():
    readme = open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8").read()
    packages = sorted(
        name
        for name in os.listdir(os.path.join(REPO_ROOT, "src", "repro"))
        if os.path.isdir(os.path.join(REPO_ROOT, "src", "repro", name))
        and not name.startswith("__")
    )
    missing = [pkg for pkg in packages if f"`{pkg}/`" not in readme]
    assert not missing, f"README architecture map is missing packages: {missing}"
