"""Scenario engine: specs, topologies, dynamics, traffic, and end-to-end runs."""

import math

import pytest

from repro.bench.config import ExperimentCell
from repro.bench.runner import run_des_cell
from repro.bench.sweep import SweepRunner, expand_grid
from repro.protocols.base import SystemConfig
from repro.protocols.registry import build_system
from repro.scenario import (
    Churn,
    LinkDegradation,
    LossBurst,
    Partition,
    RegionOutage,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    resolve_dynamics,
)
from repro.sim.faults import FaultConfig
from repro.sim.latency import LanLatency, TopologyLatency, WanLatency
from repro.workload.generator import (
    BurstyTraffic,
    DiurnalTraffic,
    RampTraffic,
    SaturatedTraffic,
    TrafficStream,
    UniformTraffic,
    zipf_weights,
)

pytestmark = pytest.mark.scenario


# ---------------------------------------------------------------- topology
class TestTopologySpec:
    def test_wan_preset_round_robin_assignment(self):
        spec = TopologySpec.wan()
        assignment = spec.assignment(6)
        assert assignment[0] == "eu-west-3"
        assert assignment[4] == "eu-west-3"
        assert assignment[1] == "us-east-1"

    def test_wan_preset_builds_paper_model(self):
        model = TopologySpec.wan().build_latency(8)
        assert isinstance(model, WanLatency)

    def test_lan_preset_builds_paper_model(self):
        assert isinstance(TopologySpec.lan().build_latency(4), LanLatency)

    def test_custom_topology_builds_matrix_model(self):
        spec = TopologySpec(
            kind="custom",
            regions=("a", "b"),
            links=(("a", "b", 0.05),),
        )
        model = spec.build_latency(4)
        assert isinstance(model, TopologyLatency)

    def test_asymmetric_delays(self):
        spec = TopologySpec(
            kind="custom",
            regions=("a", "b"),
            links=(("a", "b", 0.01), ("b", "a", 0.09)),
            symmetric=False,
            jitter=0.0,
        )
        import random

        model = spec.build_latency(2)
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == pytest.approx(0.01)
        assert model.delay(1, 0, rng) == pytest.approx(0.09)

    def test_explicit_placement(self):
        spec = TopologySpec(
            kind="custom",
            regions=("big", "small"),
            links=(("big", "small", 0.02),),
            placement=("big", "big", "big", "small"),
        )
        assert spec.assignment(4) == ("big", "big", "big", "small")
        assert spec.replicas_in_region("small", 4) == (3,)

    def test_per_region_bandwidth(self):
        spec = TopologySpec(
            kind="custom",
            regions=("fast", "slow"),
            links=(("fast", "slow", 0.02),),
            bandwidth_by_region=(("slow", 1_000_000.0),),
        )
        overrides = spec.node_bandwidth(4)
        # round-robin: replicas 1 and 3 land in "slow"
        assert overrides == {1: 1_000_000.0, 3: 1_000_000.0}
        assert TopologySpec.wan().node_bandwidth(4) is None

    def test_unknown_region_references_rejected(self):
        with pytest.raises(ValueError):
            TopologySpec(kind="custom", regions=("a",), links=(("a", "zzz", 0.01),))
        with pytest.raises(ValueError):
            TopologySpec(kind="custom", regions=("a",), placement=("zzz",))
        with pytest.raises(ValueError):
            TopologySpec(kind="custom", regions=("a",), bandwidth_by_region=(("zzz", 1.0),))

    def test_delay_between_unknown_pair_raises(self):
        spec = TopologySpec(kind="custom", regions=("a", "b"), links=())
        with pytest.raises(KeyError):
            spec.delay_between("a", "b")

    def test_delay_between_uses_default_when_given(self):
        spec = TopologySpec(kind="custom", regions=("a", "b"), links=(), default_delay=0.2)
        assert spec.delay_between("a", "b") == pytest.approx(0.2)

    def test_preset_kinds_reject_custom_regions(self):
        with pytest.raises(ValueError):
            TopologySpec(kind="wan", regions=("r1", "r2"))
        with pytest.raises(ValueError):
            TopologySpec(kind="lan", regions=("dc-1",))


# ----------------------------------------------------------------- traffic
class TestTrafficProfiles:
    def _check_cumulative_matches_rate(self, profile, horizon=30.0, steps=3000):
        """Numerically integrate rate_at and compare against cumulative."""
        dt = horizon / steps
        acc = 0.0
        for k in range(steps):
            acc += profile.rate_at((k + 0.5) * dt) * dt
        assert acc == pytest.approx(profile.cumulative(horizon), rel=1e-3)

    def test_uniform_cumulative(self):
        profile = UniformTraffic(rate_tps=1000.0)
        assert profile.cumulative(2.5) == pytest.approx(2500.0)

    def test_bursty_closed_form(self):
        self._check_cumulative_matches_rate(
            BurstyTraffic(base_tps=100.0, burst_tps=5000.0, period=7.0, burst_fraction=0.3)
        )

    def test_ramp_closed_form(self):
        self._check_cumulative_matches_rate(
            RampTraffic(start_tps=100.0, end_tps=9000.0, ramp_duration=12.0)
        )

    def test_diurnal_closed_form(self):
        self._check_cumulative_matches_rate(
            DiurnalTraffic(mean_tps=4000.0, amplitude=0.7, period=11.0)
        )

    def test_diurnal_rate_never_negative(self):
        profile = DiurnalTraffic(mean_tps=100.0, amplitude=1.0, period=10.0)
        assert min(profile.rate_at(t / 10.0) for t in range(100)) >= 0.0

    def test_saturated_is_infinite(self):
        assert math.isinf(SaturatedTraffic().cumulative(1.0))

    def test_zipf_weights_normalised_and_skewed(self):
        weights = zipf_weights(8, 1.0)
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] > weights[7]
        assert zipf_weights(4, 0.0) == pytest.approx((0.25, 0.25, 0.25, 0.25))


class TestTrafficStream:
    def test_take_caps_at_batch_size(self):
        stream = TrafficStream(UniformTraffic(rate_tps=1000.0), num_instances=1)
        count, _ = stream.take(0, now=10.0, cap=500)
        assert count == 500

    def test_take_consumes_exactly_the_arrivals(self):
        stream = TrafficStream(UniformTraffic(rate_tps=100.0), num_instances=2)
        first, _ = stream.take(0, now=1.0, cap=10_000)
        second, _ = stream.take(0, now=2.0, cap=10_000)
        # Instance 0 gets half the 100 tps stream.
        assert first == 50
        assert second == 50
        assert stream.take(0, now=2.0, cap=10_000)[0] == 0

    def test_zipf_weights_split_load(self):
        stream = TrafficStream(
            UniformTraffic(rate_tps=1000.0), num_instances=4, weights=zipf_weights(4, 1.0)
        )
        counts = [stream.take(i, now=10.0, cap=10_000)[0] for i in range(4)]
        assert counts[0] > counts[3]
        assert sum(counts) <= 10_000

    def test_submit_delay_shifts_submission_time(self):
        stream = TrafficStream(
            UniformTraffic(rate_tps=100.0), num_instances=1, submit_delay=(0.5,)
        )
        _, mean_at = stream.take(0, now=4.0, cap=1000)
        assert mean_at == pytest.approx(2.0 - 0.5)

    def test_saturated_stream_always_full(self):
        stream = TrafficStream(SaturatedTraffic(), num_instances=1)
        assert stream.take(0, now=0.5, cap=256)[0] == 256


# ---------------------------------------------------------------- dynamics
class TestDynamicsResolution:
    def test_region_partition_resolves_to_replicas(self):
        topology = TopologySpec.wan()
        config = resolve_dynamics(
            (Partition(at=5.0, groups=(("eu-west-3", "us-east-1"),
                                       ("ap-southeast-2", "ap-northeast-1")), heal_at=9.0),),
            FaultConfig(),
            topology,
            8,
        )
        assert len(config.partitions) == 1
        groups = config.partitions[0].groups
        assert groups == ((0, 1, 4, 5), (2, 3, 6, 7))

    def test_mixed_region_and_replica_members(self):
        config = resolve_dynamics(
            (Partition(at=1.0, groups=(("eu-west-3", 3), (1, 2))),),
            FaultConfig(),
            TopologySpec.wan(),
            4,
        )
        assert config.partitions[0].groups == ((0, 3), (1, 2))

    def test_region_outage_crashes_all_region_replicas(self):
        config = resolve_dynamics(
            (RegionOutage(region="ap-northeast-1", at=2.0, recover_at=6.0),),
            FaultConfig(),
            TopologySpec.wan(),
            8,
        )
        assert sorted(spec.replica for spec in config.crashes) == [3, 7]
        assert all(spec.recover_at == 6.0 for spec in config.crashes)

    def test_churn_unrolls_rolling_crashes(self):
        config = resolve_dynamics(
            (Churn(start=2.0, period=4.0, downtime=1.0, cycles=3),),
            FaultConfig(),
            TopologySpec.lan(),
            4,
        )
        assert [spec.at for spec in config.crashes] == [2.0, 6.0, 10.0]
        assert [spec.replica for spec in config.crashes] == [1, 2, 3]
        assert all(spec.recover_at == spec.at + 1.0 for spec in config.crashes)

    def test_churn_downtime_must_fit_period(self):
        with pytest.raises(ValueError):
            Churn(period=2.0, downtime=2.0)

    def test_loss_and_degradation_pass_through(self):
        config = resolve_dynamics(
            (LossBurst(at=1.0, until=2.0, drop_probability=0.3),
             LinkDegradation(at=3.0, until=4.0, factor=2.0)),
            FaultConfig(),
            TopologySpec.lan(),
            4,
        )
        assert config.loss_bursts[0].drop_probability == 0.3
        assert config.degradations[0].factor == 2.0

    def test_unknown_partition_region_rejected(self):
        with pytest.raises(ValueError):
            resolve_dynamics(
                (Partition(at=1.0, groups=(("nowhere",),)),),
                FaultConfig(),
                TopologySpec.wan(),
                4,
            )

    def test_base_faults_preserved(self):
        base = FaultConfig.with_stragglers(1, 4, seed=0)
        config = resolve_dynamics(
            (LossBurst(at=1.0, until=2.0),), base, TopologySpec.lan(), 4
        )
        assert config.stragglers == base.stragglers


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_builtins_present(self):
        names = available_scenarios()
        for expected in ("wan", "lan", "wan-partition", "regional-outage",
                         "flash-crowd", "asymmetric-wan", "lossy-lan", "churn"):
            assert expected in names
        assert len(names) >= 8

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scenario(get_scenario("wan"))

    def test_specs_are_hashable_and_reprable(self):
        for name in available_scenarios():
            spec = get_scenario(name)
            hash(spec)
            assert name in repr(spec) or spec.name == name


# ------------------------------------------------------- preset equivalence
def _run_signature(result):
    return (
        [(c.sn, c.block.block_id, c.confirmed_at) for c in result.confirmed],
        result.metrics.as_dict(),
        result.network_stats.messages_sent,
        result.network_stats.bytes_sent,
    )


class TestPresetEquivalence:
    @pytest.mark.parametrize("environment", ["wan", "lan"])
    def test_preset_scenario_is_byte_identical_to_environment_string(self, environment):
        base = dict(
            protocol="ladon-pbft", n=4, batch_size=64, total_block_rate=8.0,
            duration=6.0, seed=1,
        )
        legacy = build_system(SystemConfig(environment=environment, **base)).run()
        preset = build_system(
            SystemConfig(environment=environment,
                         scenario=ScenarioSpec.preset(environment), **base)
        ).run()
        assert _run_signature(legacy) == _run_signature(preset)

    def test_registry_preset_matches_too(self):
        base = dict(
            protocol="iss-pbft", n=4, batch_size=64, total_block_rate=8.0,
            duration=6.0, seed=3,
        )
        legacy = build_system(SystemConfig(environment="lan", **base)).run()
        named = build_system(
            SystemConfig(environment="lan", scenario=get_scenario("lan"), **base)
        ).run()
        assert _run_signature(legacy) == _run_signature(named)


# --------------------------------------------------------------- end-to-end
class TestScenarioRuns:
    def test_partition_timeline_changes_confirmed_output(self):
        scenario = ScenarioSpec(
            name="test-split",
            topology=TopologySpec.lan(),
            dynamics=(Partition(at=2.0, groups=((0, 1), (2, 3)), heal_at=4.0),),
        )
        # In-flight rounds whose messages the partition swallowed only
        # recover through a view change, so give the run explicit timeouts.
        base = dict(protocol="ladon-pbft", n=4, batch_size=64,
                    total_block_rate=8.0, duration=14.0, seed=1, environment="lan",
                    propose_timeout=3.0, view_change_timeout=3.0)
        static = build_system(SystemConfig(**base)).run()
        split = build_system(SystemConfig(scenario=scenario, **base)).run()
        # No group holds a quorum (3 of 4) during the partition, so the run
        # confirms measurably fewer blocks than the static baseline.
        assert split.metrics.confirmed_blocks < static.metrics.confirmed_blocks
        assert [(c.sn, c.block.block_id) for c in split.confirmed] != [
            (c.sn, c.block.block_id) for c in static.confirmed
        ]
        kinds = [kind for _, kind, _ in split.dynamics_log]
        assert kinds == ["partition", "heal"]
        # And the run makes progress again after the heal.
        assert any(c.confirmed_at > 4.0 for c in split.confirmed)

    def test_progress_stalls_during_partition_window(self):
        scenario = ScenarioSpec(
            name="test-stall",
            topology=TopologySpec.lan(),
            dynamics=(Partition(at=2.0, groups=((0, 1), (2, 3)), heal_at=5.0),),
        )
        config = SystemConfig(
            protocol="ladon-pbft", n=4, batch_size=64, total_block_rate=8.0,
            duration=8.0, seed=1, environment="lan", scenario=scenario,
        )
        result = build_system(config).run()
        in_window = [c for c in result.confirmed if 2.3 < c.confirmed_at < 5.0]
        assert not in_window

    @pytest.mark.parametrize("name", [
        "wan-partition", "regional-outage", "flash-crowd",
        "asymmetric-wan", "lossy-lan", "churn",
    ])
    def test_named_scenarios_run_end_to_end(self, name):
        cell = ExperimentCell(
            protocol="ladon-pbft", n=4, duration=8.0, batch_size=64,
            total_block_rate=8.0, scenario=name,
        )
        result = run_des_cell(cell)
        assert result.metrics.confirmed_blocks > 0
        assert result.metrics.throughput_tps >= 0

    def test_traffic_profile_limits_batch_fill(self):
        # A low uniform rate must confirm far fewer transactions than the
        # saturated default with the same block rate.
        scenario = ScenarioSpec(
            name="test-light-load",
            topology=TopologySpec.lan(),
            traffic=TrafficSpec(profile=UniformTraffic(rate_tps=100.0)),
        )
        base = dict(protocol="ladon-pbft", n=4, batch_size=256,
                    total_block_rate=8.0, duration=8.0, seed=1, environment="lan")
        light = build_system(SystemConfig(scenario=scenario, **base)).run()
        saturated = build_system(SystemConfig(**base)).run()
        assert 0 < light.metrics.confirmed_txs < 0.3 * saturated.metrics.confirmed_txs
        # Confirmed transactions roughly track the offered load.
        assert light.metrics.confirmed_txs <= 100.0 * 8.0 * 1.1

    def test_heterogeneous_bandwidth_slows_edge_sender(self):
        spec = get_scenario("asymmetric-wan")
        config = spec.network_config(n=6)
        assert config.node_bandwidth  # edge replicas throttled
        edge = spec.topology.replicas_in_region("edge-sat", 6)
        for replica in edge:
            assert config.bandwidth_of(replica) == pytest.approx(12_500_000.0)
        assert config.bandwidth_of(0) == pytest.approx(125_000_000.0)


class TestScenarioSweep:
    def test_scenario_grid_through_sweep_runner(self):
        cells = expand_grid(
            {"scenario": ("lan", "lossy-lan"), "protocol": ("ladon-pbft", "iss-pbft")},
            defaults=dict(n=4, duration=6.0, batch_size=64, total_block_rate=8.0),
        )
        rows = SweepRunner(workers=1).run(cells)
        assert len(rows) == 4
        assert all(row["confirmed_blocks"] > 0 for row in rows)

    def test_scenario_on_analytical_engine_rejected(self):
        from repro.bench.runner import run_cell

        cell = ExperimentCell(
            protocol="ladon-pbft", n=4, engine="analytical", scenario="lossy-lan"
        )
        with pytest.raises(ValueError, match="DES engine"):
            run_cell(cell)

    def test_scenario_cells_have_distinct_cache_keys(self):
        from repro.bench.sweep import cell_key

        plain = ExperimentCell(protocol="ladon-pbft", n=4)
        named = ExperimentCell(protocol="ladon-pbft", n=4, scenario="lossy-lan")
        other = ExperimentCell(protocol="ladon-pbft", n=4, scenario="wan-partition")
        assert len({cell_key(plain), cell_key(named), cell_key(other)}) == 3

    def test_scenario_cell_label_and_environment(self):
        cell = ExperimentCell(protocol="ladon-pbft", n=4, scenario="lossy-lan")
        assert cell.label().endswith("lossy-lan")
        assert cell.effective_environment() == "lan"
        assert cell.block_rate() == 32.0
