"""Tests for keys, signatures and aggregate signatures."""

import pytest

from repro.crypto.aggregate import (
    aggregate,
    fault_threshold,
    make_quorum_certificate,
    quorum_threshold,
    verify_aggregate,
)
from repro.crypto.keys import KeyStore, generate_keypair
from repro.crypto.signatures import Signature, sign, verify


@pytest.fixture
def keystore():
    return KeyStore.for_replicas(4)


class TestKeys:
    def test_keystore_has_all_replicas(self, keystore):
        assert len(keystore) == 4
        assert all(owner in keystore for owner in range(4))

    def test_keypair_is_deterministic(self):
        assert generate_keypair(3).public == generate_keypair(3).public

    def test_different_owners_have_different_keys(self):
        assert generate_keypair(0).public != generate_keypair(1).public

    def test_custom_seed_changes_key(self):
        assert generate_keypair(0, seed=b"other").public != generate_keypair(0).public

    def test_duplicate_registration_rejected(self, keystore):
        with pytest.raises(ValueError):
            keystore.register(generate_keypair(0))

    def test_public_key_owner(self, keystore):
        assert keystore.public_key(2).owner == 2


class TestSignatures:
    def test_sign_and_verify(self, keystore):
        sig = sign(keystore.private_key(1), "hello", 42)
        assert verify(keystore, sig, "hello", 42)

    def test_verify_rejects_wrong_payload(self, keystore):
        sig = sign(keystore.private_key(1), "hello", 42)
        assert not verify(keystore, sig, "hello", 43)

    def test_verify_rejects_unknown_signer(self, keystore):
        sig = sign(keystore.private_key(1), "hello")
        forged = Signature(signer=99, payload_digest=sig.payload_digest, mac=sig.mac)
        assert not verify(keystore, forged, "hello")

    def test_verify_rejects_wrong_mac(self, keystore):
        sig = sign(keystore.private_key(1), "hello")
        forged = Signature(signer=1, payload_digest=sig.payload_digest, mac=b"\x00" * 32)
        assert not verify(keystore, forged, "hello")

    def test_signature_cannot_be_transplanted_to_other_signer(self, keystore):
        sig = sign(keystore.private_key(1), "hello")
        forged = Signature(signer=2, payload_digest=sig.payload_digest, mac=sig.mac)
        assert not verify(keystore, forged, "hello")

    def test_signature_has_wire_size(self, keystore):
        assert sign(keystore.private_key(0), "x").size_bytes == 64

    def test_bad_digest_length_rejected(self):
        with pytest.raises(ValueError):
            Signature(signer=0, payload_digest=b"short", mac=b"m")


class TestAggregateSignatures:
    def test_aggregate_and_verify_same_message(self, keystore):
        sigs = [sign(keystore.private_key(r), "rank", 7) for r in range(3)]
        agg = aggregate(sigs)
        payloads = {r: ("rank", 7) for r in range(3)}
        assert verify_aggregate(keystore, agg, payloads)

    def test_aggregate_and_verify_distinct_messages(self, keystore):
        # The BGLS property Ladon relies on: different signers, different ranks.
        sigs = [sign(keystore.private_key(r), "rank", r + 10) for r in range(4)]
        agg = aggregate(sigs)
        payloads = {r: ("rank", r + 10) for r in range(4)}
        assert verify_aggregate(keystore, agg, payloads)

    def test_verify_rejects_wrong_claimed_payload(self, keystore):
        sigs = [sign(keystore.private_key(r), "rank", 5) for r in range(3)]
        agg = aggregate(sigs)
        payloads = {r: ("rank", 6) for r in range(3)}
        assert not verify_aggregate(keystore, agg, payloads)

    def test_verify_rejects_missing_signer(self, keystore):
        sigs = [sign(keystore.private_key(r), "rank", 5) for r in range(3)]
        agg = aggregate(sigs)
        payloads = {r: ("rank", 5) for r in range(2)}
        assert not verify_aggregate(keystore, agg, payloads)

    def test_aggregate_rejects_duplicate_signers(self, keystore):
        sig = sign(keystore.private_key(0), "x")
        with pytest.raises(ValueError):
            aggregate([sig, sig])

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_aggregate_size_is_constant_in_message_count(self, keystore):
        small = aggregate([sign(keystore.private_key(r), "x") for r in range(2)])
        large = aggregate([sign(keystore.private_key(r), "x") for r in range(4)])
        # One BLS point either way; only the signer bitmap may grow (by words).
        assert large.size_bytes - small.size_bytes <= 4

    def test_signers_listed_sorted(self, keystore):
        sigs = [sign(keystore.private_key(r), "x") for r in (3, 1, 2)]
        assert aggregate(sigs).signers == (1, 2, 3)


class TestQuorumCertificate:
    def test_quorum_certificate_records_value_and_signers(self, keystore):
        sigs = [sign(keystore.private_key(r), "rank", 9) for r in range(3)]
        qc = make_quorum_certificate(9, view=0, round=2, instance=1, signatures=sigs)
        assert qc.value == 9
        assert qc.quorum_size() == 3
        assert set(qc.signers) == {0, 1, 2}

    def test_quorum_certificate_size(self, keystore):
        sigs = [sign(keystore.private_key(r), "rank", 9) for r in range(3)]
        qc = make_quorum_certificate(9, view=0, round=2, instance=1, signatures=sigs)
        assert qc.size_bytes > 96


class TestThresholds:
    @pytest.mark.parametrize(
        "n,f,quorum", [(4, 1, 3), (7, 2, 5), (10, 3, 7), (16, 5, 11), (128, 42, 85)]
    )
    def test_thresholds(self, n, f, quorum):
        assert fault_threshold(n) == f
        assert quorum_threshold(n) == quorum

    def test_thresholds_reject_nonpositive(self):
        with pytest.raises(ValueError):
            quorum_threshold(0)
        with pytest.raises(ValueError):
            fault_threshold(-1)
