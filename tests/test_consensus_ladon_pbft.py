"""Unit tests for Ladon-PBFT (Algorithm 2) and Ladon-opt (Sec. 5.3)."""

import pytest

from repro.consensus.base import CollectingContext, InstanceConfig
from repro.consensus.ladon_opt import LadonOptInstance
from repro.consensus.ladon_pbft import LadonPBFTInstance
from repro.consensus.messages import Commit, PrePrepare, Prepare, RankMessage
from repro.core.rank import RankCertificate
from repro.workload.transactions import Batch


N = 4
QUORUM = 3


def make_instance(cls=LadonPBFTInstance, replica_id=0, instance_id=0, byzantine=False, rank=0, epoch=0):
    config = InstanceConfig(instance_id=instance_id, replica_id=replica_id, n=N, epoch_length=64)
    context = CollectingContext(rank=rank, epoch=epoch)
    instance = cls(config, context, byzantine_rank_manipulation=byzantine)
    return instance, context


def rank_message(sender, rank, round=1, instance=0):
    return RankMessage(
        sender=sender,
        instance=instance,
        view=0,
        round=round,
        rank=rank,
        certificate=RankCertificate(rank=rank, signer_count=QUORUM),
    )


class TestRankAssignment:
    def test_round_one_uses_leaders_current_rank(self):
        instance, context = make_instance(rank=7)
        message = instance.propose(Batch.synthetic(3, 0.0), now=1.0)
        assert message.rank == 8

    def test_round_one_rank_zero_start(self):
        instance, _ = make_instance(rank=0)
        message = instance.propose(Batch.synthetic(3, 0.0), now=1.0)
        assert message.rank == 1

    def test_later_round_requires_quorum_of_rank_reports(self):
        instance, context = make_instance()
        instance.propose(Batch.synthetic(1, 0.0), now=0.0)
        instance.last_committed_round = 1  # pretend round 1 committed
        assert not instance.ready_to_propose()  # no rank reports yet
        for sender in range(1, QUORUM):
            instance.on_message(sender, rank_message(sender, rank=5, round=1))
        # Leader's own report counts implicitly; with 2 external + itself at
        # proposal time it is still below quorum until a third arrives.
        instance._store_rank_report(0, rank_message(0, rank=4, round=1))
        assert instance.ready_to_propose()

    def test_rank_is_max_report_plus_one(self):
        instance, context = make_instance()
        instance.propose(Batch.synthetic(1, 0.0), now=0.0)
        instance.last_committed_round = 1
        for sender, rank in ((1, 3), (2, 9), (3, 6)):
            instance.on_message(sender, rank_message(sender, rank=rank, round=1))
        message = instance.propose(Batch.synthetic(1, 0.0), now=1.0)
        assert message.round == 2
        assert message.rank == 10
        assert len(message.rank_reports) >= QUORUM

    def test_leaders_own_fresh_rank_counts(self):
        # The leader has observed rank 20 via other instances; even if the
        # collected reports are stale, its own report keeps the rank fresh.
        instance, context = make_instance()
        instance.propose(Batch.synthetic(1, 0.0), now=0.0)
        instance.last_committed_round = 1
        context.rank = 20
        for sender, rank in ((1, 3), (2, 2), (3, 2)):
            instance.on_message(sender, rank_message(sender, rank=rank, round=1))
        message = instance.propose(Batch.synthetic(1, 0.0), now=1.0)
        assert message.rank == 21

    def test_rank_clamped_to_epoch_max_and_stops_proposing(self):
        instance, context = make_instance(rank=62)
        context.epoch_length = 64  # maxRank(0) = 63
        message = instance.propose(Batch.synthetic(1, 0.0), now=0.0)
        assert message.rank == 63
        assert instance.stopped_for_epoch
        instance.last_committed_round = 1
        assert not instance.ready_to_propose()

    def test_begin_epoch_resumes_proposing(self):
        instance, context = make_instance(rank=62)
        instance.propose(Batch.synthetic(1, 0.0), now=0.0)
        assert instance.stopped_for_epoch
        context.epoch = 1
        instance.begin_epoch(1)
        assert not instance.stopped_for_epoch


class TestByzantineManipulation:
    def test_byzantine_leader_uses_lowest_quorum(self):
        honest, _ = make_instance(byzantine=False)
        byz, _ = make_instance(byzantine=True)
        for instance in (honest, byz):
            instance.propose(Batch.synthetic(1, 0.0), now=0.0)
            instance.last_committed_round = 1
            for sender, rank in ((1, 10), (2, 4), (3, 4)):
                instance.on_message(sender, rank_message(sender, rank=rank, round=1))
        honest_msg = honest.propose(Batch.synthetic(1, 0.0), now=1.0)
        byz_msg = byz.propose(Batch.synthetic(1, 0.0), now=1.0)
        assert honest_msg.rank == 11
        assert byz_msg.rank < honest_msg.rank

    def test_byzantine_report_set_still_validates_at_backups(self):
        byz, _ = make_instance(byzantine=True)
        byz.propose(Batch.synthetic(1, 0.0), now=0.0)
        byz.last_committed_round = 1
        for sender, rank in ((1, 10), (2, 4), (3, 4)):
            byz.on_message(sender, rank_message(sender, rank=rank, round=1))
        byz_msg = byz.propose(Batch.synthetic(1, 0.0), now=1.0)
        backup, _ = make_instance(replica_id=1)
        assert backup._validate_rank(byz_msg)


class TestRankValidation:
    def _valid_pre_prepare(self, rank_reports, rank, round=2):
        return PrePrepare(
            sender=0,
            instance=0,
            view=0,
            round=round,
            digest="d",
            tx_count=1,
            rank=rank,
            rank_reports=rank_reports,
            rank_certificate=RankCertificate(rank=rank - 1, signer_count=QUORUM),
        )

    def test_accepts_correct_rank(self):
        backup, context = make_instance(replica_id=1)
        reports = tuple(rank_message(s, 5, 1).to_report() for s in range(QUORUM))
        message = self._valid_pre_prepare(reports, rank=6)
        assert backup._validate_rank(message)

    def test_rejects_rank_not_max_plus_one(self):
        backup, _ = make_instance(replica_id=1)
        reports = tuple(rank_message(s, 5, 1).to_report() for s in range(QUORUM))
        assert not backup._validate_rank(self._valid_pre_prepare(reports, rank=8))
        assert not backup._validate_rank(self._valid_pre_prepare(reports, rank=5))

    def test_rejects_insufficient_reports(self):
        backup, _ = make_instance(replica_id=1)
        reports = tuple(rank_message(s, 5, 1).to_report() for s in range(QUORUM - 1))
        assert not backup._validate_rank(self._valid_pre_prepare(reports, rank=6))

    def test_rejects_duplicate_reporters(self):
        backup, _ = make_instance(replica_id=1)
        reports = tuple(rank_message(1, 5, 1).to_report() for _ in range(QUORUM))
        assert not backup._validate_rank(self._valid_pre_prepare(reports, rank=6))

    def test_round_one_needs_single_report(self):
        backup, _ = make_instance(replica_id=1)
        reports = (rank_message(0, 5, 0).to_report(),)
        assert backup._validate_rank(self._valid_pre_prepare(reports, rank=6, round=1))

    def test_invalid_rank_means_no_prepare(self):
        backup, context = make_instance(replica_id=1)
        reports = tuple(rank_message(s, 5, 1).to_report() for s in range(QUORUM))
        bad = self._valid_pre_prepare(reports, rank=9)
        backup.on_message(0, bad)
        assert not any(isinstance(m, Prepare) for m, _ in context.multicasts)


class TestRankFlow:
    def test_prepared_round_sends_rank_message_to_leader(self):
        backup, context = make_instance(replica_id=1)
        reports = (rank_message(0, 0, 0).to_report(),)
        pre_prepare = PrePrepare(
            sender=0, instance=0, view=0, round=1, digest="d", tx_count=1, rank=1,
            rank_reports=reports,
        )
        backup.on_message(0, pre_prepare)
        for sender in range(QUORUM):
            backup.on_message(sender, Prepare(sender=sender, instance=0, view=0, round=1, digest="d", rank=1))
        rank_msgs = [(dest, m) for dest, m, _ in context.sent if isinstance(m, RankMessage)]
        assert len(rank_msgs) == 1
        dest, message = rank_msgs[0]
        assert dest == 0  # the instance leader
        assert message.rank >= 1

    def test_cur_rank_updated_on_prepared(self):
        backup, context = make_instance(replica_id=1)
        reports = (rank_message(0, 0, 0).to_report(),)
        pre_prepare = PrePrepare(
            sender=0, instance=0, view=0, round=1, digest="d", tx_count=1, rank=1,
            rank_reports=reports,
        )
        backup.on_message(0, pre_prepare)
        for sender in range(QUORUM):
            backup.on_message(sender, Prepare(sender=sender, instance=0, view=0, round=1, digest="d", rank=1))
        assert context.rank >= 1

    def test_rank_message_updates_any_replicas_cur_rank(self):
        backup, context = make_instance(replica_id=1)
        backup.on_message(2, rank_message(2, rank=42))
        assert context.rank == 42

    def test_leader_keeps_highest_report_per_sender(self):
        leader, _ = make_instance(replica_id=0)
        leader._store_rank_report(1, rank_message(1, rank=5, round=3))
        leader._store_rank_report(1, rank_message(1, rank=3, round=3))
        assert leader.rank_reports[3][1].rank == 5


class TestLadonOpt:
    def test_pre_prepare_carries_aggregate_not_reports(self):
        instance, context = make_instance(cls=LadonOptInstance)
        message = instance.propose(Batch.synthetic(2, 0.0), now=0.0)
        assert message.rank_reports == ()
        assert message.aggregated_rank_proof_bytes > 0

    def test_opt_pre_prepare_smaller_than_plain(self):
        plain, _ = make_instance(cls=LadonPBFTInstance)
        opt, _ = make_instance(cls=LadonOptInstance)
        for instance in (plain, opt):
            instance.propose(Batch.synthetic(1, 0.0), now=0.0)
            instance.last_committed_round = 1
            for sender in range(1, N):
                instance.on_message(sender, rank_message(sender, rank=5, round=1))
        plain_msg = plain.propose(Batch.synthetic(1, 0.0), now=1.0)
        opt_msg = opt.propose(Batch.synthetic(1, 0.0), now=1.0)
        assert opt_msg.size_bytes < plain_msg.size_bytes

    def test_rank_difference_encoded_in_key_index(self):
        backup, context = make_instance(cls=LadonOptInstance, replica_id=1)
        context.rank = 9
        pre_prepare = PrePrepare(
            sender=0, instance=0, view=0, round=1, digest="d", tx_count=1, rank=4,
            aggregated_rank_proof_bytes=99,
        )
        backup.on_message(0, pre_prepare)
        for sender in range(QUORUM):
            backup.on_message(sender, Prepare(sender=sender, instance=0, view=0, round=1, digest="d", rank=4))
        rank_msgs = [m for _, m, _ in context.sent if isinstance(m, RankMessage)]
        assert len(rank_msgs) == 1
        assert rank_msgs[0].rank == 4
        assert rank_msgs[0].key_index == 9 - 4

    def test_leader_decodes_rank_from_key_index(self):
        leader, _ = make_instance(cls=LadonOptInstance, replica_id=0)
        message = RankMessage(sender=2, instance=0, view=0, round=1, rank=4, key_index=5)
        leader._store_rank_report(2, message)
        assert leader.rank_reports[1][2].rank == 9

    def test_opt_validation_accepts_aggregate(self):
        backup, _ = make_instance(cls=LadonOptInstance, replica_id=1)
        message = PrePrepare(
            sender=0, instance=0, view=0, round=2, digest="d", tx_count=1, rank=3,
            aggregated_rank_proof_bytes=99,
        )
        assert backup._validate_rank(message)

    def test_opt_validation_rejects_missing_aggregate(self):
        backup, _ = make_instance(cls=LadonOptInstance, replica_id=1)
        message = PrePrepare(
            sender=0, instance=0, view=0, round=2, digest="d", tx_count=1, rank=3,
        )
        assert not backup._validate_rank(message)
