"""Unit tests for the PBFT instance state machine (vanilla)."""

import pytest

from repro.consensus.base import CollectingContext, InstanceConfig
from repro.consensus.messages import Commit, NewView, PrePrepare, Prepare, ViewChange
from repro.consensus.pbft import PBFTInstance
from repro.workload.transactions import Batch


N = 4
QUORUM = 3


def make_instance(replica_id=0, instance_id=0, propose_timeout=None):
    config = InstanceConfig(instance_id=instance_id, replica_id=replica_id, n=N)
    context = CollectingContext()
    return PBFTInstance(config, context, propose_timeout=propose_timeout), context


def drive_round(leader, leader_ctx, backups, round=1, tx_count=5):
    """Drive one full PBFT round across a leader and backups sharing no network.

    Messages are relayed by hand so the test controls ordering precisely.
    Returns the pre-prepare message.
    """
    batch = Batch.synthetic(tx_count, submitted_at=0.0)
    pre_prepare = leader.propose(batch, now=1.0)
    assert pre_prepare is not None
    all_nodes = [(leader, leader_ctx)] + backups
    # Deliver the pre-prepare everywhere (including the leader's own copy).
    for node, _ in all_nodes:
        node.on_message(pre_prepare.sender, pre_prepare)
    # Gather prepares and deliver all-to-all.
    prepares = []
    for node, ctx in all_nodes:
        prepares.extend(m for m, _ in ctx.multicasts if isinstance(m, Prepare) and m.round == round)
    for prepare in prepares:
        for node, _ in all_nodes:
            node.on_message(prepare.sender, prepare)
    commits = []
    for node, ctx in all_nodes:
        commits.extend(m for m, _ in ctx.multicasts if isinstance(m, Commit) and m.round == round)
    for commit in commits:
        for node, _ in all_nodes:
            node.on_message(commit.sender, commit)
    return pre_prepare


class TestProposal:
    def test_only_leader_proposes(self):
        instance, _ = make_instance(replica_id=1, instance_id=0)
        assert not instance.ready_to_propose()
        assert instance.propose(Batch.synthetic(1, 0.0), now=0.0) is None

    def test_leader_of_instance_is_replica_with_same_id(self):
        instance, _ = make_instance(replica_id=0, instance_id=0)
        assert instance.is_leader

    def test_leader_rotates_with_view(self):
        config = InstanceConfig(instance_id=2, replica_id=0, n=4)
        assert config.leader_for_view(0) == 2
        assert config.leader_for_view(1) == 3
        assert config.leader_for_view(2) == 0

    def test_propose_multicasts_pre_prepare(self):
        instance, context = make_instance()
        message = instance.propose(Batch.synthetic(10, 0.0), now=2.0)
        assert isinstance(message, PrePrepare)
        assert any(isinstance(m, PrePrepare) for m, _ in context.multicasts)
        assert message.tx_count == 10
        assert message.proposed_at == 2.0

    def test_one_outstanding_round_at_a_time(self):
        instance, _ = make_instance()
        instance.propose(Batch.synthetic(1, 0.0), now=0.0)
        assert not instance.ready_to_propose()
        assert instance.propose(Batch.synthetic(1, 0.0), now=1.0) is None

    def test_pre_prepare_size_includes_batch(self):
        instance, _ = make_instance()
        small = instance._build_pre_prepare(1, Batch.synthetic(1, 0.0), 0.0)
        large = instance._build_pre_prepare(2, Batch.synthetic(1000, 0.0), 0.0)
        assert large.size_bytes > small.size_bytes + 400_000


class TestNormalCase:
    def test_full_round_commits_at_every_replica(self):
        leader, leader_ctx = make_instance(replica_id=0)
        backups = [make_instance(replica_id=r) for r in range(1, N)]
        drive_round(leader, leader_ctx, backups, tx_count=7)
        for node, ctx in [(leader, leader_ctx)] + backups:
            assert len(ctx.delivered) == 1
            block = ctx.delivered[0]
            assert block.tx_count == 7
            assert block.round == 1
            assert block.instance == 0

    def test_committed_blocks_identical_across_replicas(self):
        leader, leader_ctx = make_instance(replica_id=0)
        backups = [make_instance(replica_id=r) for r in range(1, N)]
        drive_round(leader, leader_ctx, backups)
        digests = {ctx.delivered[0].payload_digest for _, ctx in [(leader, leader_ctx)] + backups}
        assert len(digests) == 1

    def test_leader_can_propose_next_round_after_commit(self):
        leader, leader_ctx = make_instance(replica_id=0)
        backups = [make_instance(replica_id=r) for r in range(1, N)]
        drive_round(leader, leader_ctx, backups, round=1)
        assert leader.ready_to_propose()
        second = leader.propose(Batch.synthetic(1, 0.0), now=5.0)
        assert second.round == 2

    def test_commit_requires_quorum_of_commits(self):
        instance, context = make_instance(replica_id=1)
        pre_prepare = PrePrepare(
            sender=0, instance=0, view=0, round=1, digest="d", tx_count=1, rank=1
        )
        instance.on_message(0, pre_prepare)
        for sender in range(QUORUM):
            instance.on_message(sender, Prepare(sender=sender, instance=0, view=0, round=1, digest="d", rank=1))
        # Only 2 commits: not enough.
        for sender in range(2):
            instance.on_message(sender, Commit(sender=sender, instance=0, view=0, round=1, digest="d", rank=1))
        assert context.delivered == []
        instance.on_message(2, Commit(sender=2, instance=0, view=0, round=1, digest="d", rank=1))
        assert len(context.delivered) == 1

    def test_quorum_before_pre_prepare_still_commits_once_pre_prepare_arrives(self):
        instance, context = make_instance(replica_id=1)
        for sender in range(QUORUM):
            instance.on_message(sender, Prepare(sender=sender, instance=0, view=0, round=1, digest="d", rank=1))
            instance.on_message(sender, Commit(sender=sender, instance=0, view=0, round=1, digest="d", rank=1))
        assert context.delivered == []
        instance.on_message(
            0, PrePrepare(sender=0, instance=0, view=0, round=1, digest="d", tx_count=1, rank=1)
        )
        assert len(context.delivered) == 1

    def test_duplicate_commits_do_not_double_deliver(self):
        leader, leader_ctx = make_instance(replica_id=0)
        backups = [make_instance(replica_id=r) for r in range(1, N)]
        drive_round(leader, leader_ctx, backups)
        # Replay a commit message.
        commit = next(m for m, _ in leader_ctx.multicasts if isinstance(m, Commit))
        leader.on_message(commit.sender, commit)
        assert len(leader_ctx.delivered) == 1


class TestValidation:
    def test_pre_prepare_from_non_leader_rejected(self):
        instance, context = make_instance(replica_id=1)
        bogus = PrePrepare(sender=2, instance=0, view=0, round=1, digest="d", tx_count=1, rank=1)
        instance.on_message(2, bogus)
        assert not any(isinstance(m, Prepare) for m, _ in context.multicasts)

    def test_pre_prepare_from_wrong_view_rejected(self):
        instance, context = make_instance(replica_id=1)
        bogus = PrePrepare(sender=0, instance=0, view=3, round=1, digest="d", tx_count=1, rank=1)
        instance.on_message(0, bogus)
        assert not any(isinstance(m, Prepare) for m, _ in context.multicasts)

    def test_conflicting_pre_prepare_for_same_round_rejected(self):
        instance, context = make_instance(replica_id=1)
        instance.on_message(
            0, PrePrepare(sender=0, instance=0, view=0, round=1, digest="d1", tx_count=1, rank=1)
        )
        instance.on_message(
            0, PrePrepare(sender=0, instance=0, view=0, round=1, digest="d2", tx_count=1, rank=1)
        )
        prepares = [m for m, _ in context.multicasts if isinstance(m, Prepare)]
        assert len(prepares) == 1
        assert prepares[0].digest == "d1"

    def test_prepare_from_wrong_view_ignored(self):
        instance, _ = make_instance(replica_id=1)
        instance.on_message(0, Prepare(sender=0, instance=0, view=9, round=1, digest="d", rank=1))
        assert instance.prepare_votes.count((9, 1, "d")) == 0


class TestViewChange:
    def test_round_timeout_triggers_view_change(self):
        # Replica 2 is not the next leader (replica 1 is), so the view-change
        # message must actually be sent to replica 1.
        instance, context = make_instance(replica_id=2)
        instance.on_message(
            0, PrePrepare(sender=0, instance=0, view=0, round=1, digest="d", tx_count=1, rank=1)
        )
        timer_name = instance._round_timer_name(1)
        assert timer_name in context.timers
        context.fire_timer(timer_name)
        assert instance.view_change_in_progress
        view_changes = [
            (dest, m) for dest, m, _ in context.sent if isinstance(m, ViewChange)
        ]
        assert view_changes and view_changes[0][0] == instance.config.leader_for_view(1)

    def test_new_leader_installs_view_after_quorum(self):
        # Instance 0, view 1 leader is replica 1.
        new_leader, context = make_instance(replica_id=1)
        for sender in range(QUORUM):
            new_leader.on_message(
                sender,
                ViewChange(sender=sender, instance=0, view=1, round=0, last_committed_round=0),
            )
        new_views = [m for m, _ in context.multicasts if isinstance(m, NewView)]
        assert len(new_views) == 1
        assert new_views[0].view == 1

    def test_backup_adopts_new_view(self):
        instance, _ = make_instance(replica_id=2)
        instance.on_message(1, NewView(sender=1, instance=0, view=1, round=1, resume_round=1))
        assert instance.view == 1
        assert not instance.view_change_in_progress

    def test_new_view_from_wrong_leader_ignored(self):
        instance, _ = make_instance(replica_id=2)
        instance.on_message(3, NewView(sender=3, instance=0, view=1, round=1, resume_round=1))
        assert instance.view == 0

    def test_propose_timeout_only_when_configured(self):
        instance, context = make_instance(replica_id=1, propose_timeout=None)
        instance.start()
        assert f"pbft-propose:{instance.instance_id}" not in context.timers
        instance_with, context_with = make_instance(replica_id=1, propose_timeout=5.0)
        instance_with.start()
        assert f"pbft-propose:{instance_with.instance_id}" in context_with.timers

    def test_view_installed_hook_called(self):
        instance, _ = make_instance(replica_id=2)
        calls = []
        instance.on_view_installed = calls.append
        instance.on_message(1, NewView(sender=1, instance=0, view=1, round=1, resume_round=1))
        assert calls == [1]

    def test_new_leader_becomes_proposer_after_view_change(self):
        instance, _ = make_instance(replica_id=1)
        assert not instance.is_leader
        instance.on_message(1, NewView(sender=1, instance=0, view=1, round=1, resume_round=1))
        assert instance.is_leader
        assert instance.ready_to_propose()


class TestCryptoAccounting:
    def test_sign_and_verify_ops_recorded(self):
        leader, leader_ctx = make_instance(replica_id=0)
        backups = [make_instance(replica_id=r) for r in range(1, N)]
        drive_round(leader, leader_ctx, backups)
        assert leader_ctx.crypto_ops.get("sign", 0) >= 2
        assert leader_ctx.crypto_ops.get("verify", 0) >= 2 * QUORUM - 1


class TestNewViewReproposal:
    """A new leader re-proposes rounds prepared (but not committed) in the
    old view with their original digest, so a replica that already committed
    one of them can never observe a conflicting batch at the same round."""

    def _prepared_new_leader(self):
        """Replica 1 (leader of view 1) with round 1 prepared in view 0."""
        instance, context = make_instance(replica_id=1, instance_id=0)
        pre = PrePrepare(
            sender=0, instance=0, view=0, round=1, digest="original",
            tx_count=7, rank=1, batch_submitted_at=0.5,
        )
        instance.on_message(0, pre)
        for sender in (0, 2, 3):
            instance.on_message(
                sender, Prepare(sender=sender, instance=0, view=0, round=1,
                                digest="original", rank=1)
            )
        assert instance.log[1].prepare_quorum
        return instance, context

    def test_new_leader_reproposes_prepared_round_with_same_digest(self):
        instance, context = self._prepared_new_leader()
        instance.on_message(
            1, NewView(sender=1, instance=0, view=1, round=1,
                       view_change_count=QUORUM, resume_round=1)
        )
        reproposals = [m for m, _ in context.multicasts
                       if isinstance(m, PrePrepare) and m.reproposal]
        assert len(reproposals) == 1
        message = reproposals[0]
        assert message.digest == "original"
        assert message.view == 1 and message.round == 1
        assert message.tx_count == 7 and message.rank == 1
        # Self-delivery recreates the leader's log entry; the fresh-proposal
        # cursor then skips the in-flight re-proposed round.
        instance.on_message(1, message)
        assert not instance.ready_to_propose()  # round 1 must commit first
        assert instance.next_round == 2

    def test_backup_accepts_and_reprepares_the_reproposal(self):
        leader, leader_ctx = self._prepared_new_leader()
        leader.on_message(
            1, NewView(sender=1, instance=0, view=1, round=1,
                       view_change_count=QUORUM, resume_round=1)
        )
        reproposal = next(m for m, _ in leader_ctx.multicasts
                          if isinstance(m, PrePrepare) and m.reproposal)
        backup, backup_ctx = make_instance(replica_id=2, instance_id=0)
        backup.on_message(
            1, NewView(sender=1, instance=0, view=1, round=1,
                       view_change_count=QUORUM, resume_round=1)
        )
        backup.on_message(1, reproposal)
        prepares = [m for m, _ in backup_ctx.multicasts if isinstance(m, Prepare)]
        assert prepares and prepares[-1].digest == "original"

    def test_prepared_round_past_a_hole_is_still_reproposed(self):
        # the new leader missed round 1 but has round 2 prepared: round 2
        # must reappear with its original digest (someone may have committed
        # it), while round 1 is left for the pacing loop to propose fresh
        instance, context = make_instance(replica_id=1, instance_id=0)
        pre = PrePrepare(sender=0, instance=0, view=0, round=2, digest="later",
                         tx_count=4, rank=2)
        instance.on_message(0, pre)
        for sender in (0, 2, 3):
            instance.on_message(
                sender, Prepare(sender=sender, instance=0, view=0, round=2,
                                digest="later", rank=2)
            )
        instance.on_message(
            1, NewView(sender=1, instance=0, view=1, round=1,
                       view_change_count=QUORUM, resume_round=1)
        )
        reproposals = [m for m, _ in context.multicasts
                       if isinstance(m, PrePrepare) and m.reproposal]
        assert [m.round for m in reproposals] == [2]
        assert reproposals[0].digest == "later"
        # round 1 is the hole: the pacing cursor proposes it fresh
        assert instance.next_round == 1
        assert instance.ready_to_propose()

    def test_unprepared_rounds_are_not_reproposed(self):
        instance, context = make_instance(replica_id=1, instance_id=0)
        pre = PrePrepare(sender=0, instance=0, view=0, round=1, digest="d", tx_count=3)
        instance.on_message(0, pre)  # pre-prepared only: no prepare quorum
        instance.on_message(
            1, NewView(sender=1, instance=0, view=1, round=1,
                       view_change_count=QUORUM, resume_round=1)
        )
        assert not any(isinstance(m, PrePrepare) and m.reproposal
                       for m, _ in context.multicasts)
        # the pacing loop proposes the round fresh instead
        assert instance.next_round == 1


class TestBoundedMemoryGC:
    """Commit-time GC: vote state and log entries are O(active window)."""

    def _commit_round_via_others(self, instance, round, digest):
        """Commit ``round`` at a backup through the others' commit quorum
        while its own prepare quorum stays incomplete (lossy prepares)."""
        pre = PrePrepare(sender=0, instance=0, view=0, round=round,
                         digest=digest, tx_count=2, rank=round)
        instance.on_message(0, pre)
        for sender in (0, 2, 3):
            instance.on_message(sender, Commit(
                sender=sender, instance=0, view=0, round=round,
                digest=digest, rank=round,
            ))

    def _commit_round_fully(self, instance, round, digest):
        pre = PrePrepare(sender=0, instance=0, view=0, round=round,
                         digest=digest, tx_count=2, rank=round)
        instance.on_message(0, pre)
        for sender in (0, 2, 3):
            instance.on_message(sender, Prepare(
                sender=sender, instance=0, view=0, round=round,
                digest=digest, rank=round,
            ))
        for sender in (0, 2, 3):
            instance.on_message(sender, Commit(
                sender=sender, instance=0, view=0, round=round,
                digest=digest, rank=round,
            ))

    def test_committed_rounds_pruned_and_votes_released(self):
        instance, _ = make_instance(replica_id=1)
        for round in (1, 2, 3):
            self._commit_round_fully(instance, round, f"d{round}")
        assert instance.last_committed_round == 3
        assert instance._stable_round == 3
        assert instance.log == {}
        assert instance.prepare_votes.tracked_keys() == 0
        assert instance.commit_votes.tracked_keys() == 0
        assert instance._digest_ids == {}
        assert instance._round_digests == {}

    def test_deferred_commit_send_does_not_wedge_watermark(self):
        """A round committed via the others' commit quorum (own prepare
        quorum incomplete) must not block the GC watermark — and the late
        prepare quorum must still fire the commit send afterwards."""
        instance, ctx = make_instance(replica_id=1)
        self._commit_round_via_others(instance, 1, "d1")
        entry = instance.log[1]
        assert entry.committed and not entry.sent_commit
        # The watermark advanced past the deferred round...
        assert instance._stable_round == 1
        assert 1 in instance._deferred_sends
        # ...and later committed rounds prune normally (no wedge).
        for round in (2, 3):
            self._commit_round_fully(instance, round, f"d{round}")
        assert instance._stable_round == 3
        assert 2 not in instance.log and 3 not in instance.log
        assert 1 in instance.log  # still pinned by the pending commit send

        # The late prepare quorum lands: the commit send fires and the
        # deferred round's state is finally released.
        before = len([m for m, _ in ctx.multicasts
                      if isinstance(m, Commit) and m.round == 1])
        for sender in (0, 2, 3):
            instance.on_message(sender, Prepare(
                sender=sender, instance=0, view=0, round=1,
                digest="d1", rank=1,
            ))
        late_commits = [m for m, _ in ctx.multicasts
                        if isinstance(m, Commit) and m.round == 1]
        assert len(late_commits) == before + 1  # the deferred send fired
        assert 1 not in instance._deferred_sends
        assert 1 not in instance.log
        assert instance.prepare_votes.tracked_keys() == 0
        assert instance._digest_ids == {}

    def test_view_change_finalizes_deferred_sends(self):
        """After a view change the missing prepares are undeliverable, so a
        deferred round's state is released instead of pinned forever."""
        instance, _ = make_instance(replica_id=1)
        self._commit_round_via_others(instance, 1, "d1")
        assert 1 in instance._deferred_sends
        new_view = NewView(sender=1, instance=0, view=1, round=2,
                           view_change_count=QUORUM, resume_round=2)
        instance.on_message(1, new_view)
        assert instance.view == 1
        assert instance._deferred_sends == set()
        assert 1 not in instance.log

    def test_forged_digest_vote_state_released_with_round(self):
        """Sub-quorum votes for a forged (equivocated) digest are released
        when their round's GC runs — a pre-quorum vote flood cannot grow
        memory round over round."""
        instance, _ = make_instance(replica_id=1)
        for round in (1, 2, 3):
            # Two forged-world votes arrive alongside the honest flow.
            for sender in (2, 3):
                instance.on_message(sender, Prepare(
                    sender=sender, instance=0, view=0, round=round,
                    digest=f"forged{round}", rank=round,
                ))
            self._commit_round_fully(instance, round, f"d{round}")
        assert instance._digest_ids == {}
        assert instance._round_digests == {}
        assert instance.prepare_votes.tracked_keys() == 0
        assert instance.commit_votes.tracked_keys() == 0
