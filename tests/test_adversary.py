"""Adversary subsystem: catalog, interceptor, migration, and end-to-end audit."""

import warnings

import pytest

from repro.adversary import (
    AdversarySpec,
    DelayedVotes,
    Equivocation,
    RankManipulation,
    Silence,
    available_adversaries,
    forge_message,
    forged_digest,
    get_adversary,
    message_kind,
    register_adversary,
)
from repro.adversary.attacks import MESSAGE_KINDS
from repro.bench.config import ExperimentCell
from repro.bench.runner import run_cell, run_des_cell
from repro.bench.sweep import cell_key
from repro.consensus.messages import (
    CheckpointMessage,
    Commit,
    HotStuffProposal,
    PrePrepare,
    Prepare,
)
from repro.protocols.base import SystemConfig
from repro.protocols.registry import build_system
from repro.scenario.registry import available_scenarios, get_scenario
from repro.sim.faults import FaultConfig, FaultInjector, StragglerSpec
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.simulator import Simulator


# --------------------------------------------------------------- catalog
class TestAttackSpecs:
    def test_attack_needs_replicas(self):
        with pytest.raises(ValueError):
            Equivocation(replicas=())

    def test_attack_rejects_duplicate_replicas(self):
        with pytest.raises(ValueError):
            Silence(replicas=(1, 1))

    def test_attack_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            Silence(replicas=(1,), start=5.0, until=5.0)

    def test_silence_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Silence(replicas=(1,), kinds=("gossip",))

    def test_delay_must_be_positive(self):
        with pytest.raises(ValueError):
            DelayedVotes(replicas=(1,), delay=0.0)

    def test_rank_manipulation_rejects_window(self):
        with pytest.raises(ValueError):
            RankManipulation(replicas=(1,), start=2.0)
        with pytest.raises(ValueError):
            RankManipulation(replicas=(1,), slowdown=0.5)

    def test_labels_are_kebab_case(self):
        assert DelayedVotes(replicas=(1,)).label == "delayed-votes"
        assert RankManipulation(replicas=(1,)).label == "rank-manipulation"

    def test_message_kind_classification(self):
        pre = PrePrepare(sender=0, instance=0, view=0, round=1)
        assert message_kind(pre) == "proposal"
        assert message_kind(Prepare(sender=0, instance=0, view=0, round=1)) == "vote"
        assert (
            message_kind(CheckpointMessage(sender=0, instance=-1, view=0, round=0))
            == "checkpoint"
        )
        assert message_kind(object()) is None
        assert "vote" in MESSAGE_KINDS

    def test_forged_digest_is_deterministic_and_different(self):
        assert forged_digest("abc") == forged_digest("abc")
        assert forged_digest("abc") != "abc"

    def test_forge_message_rewrites_pbft_only(self):
        pre = PrePrepare(sender=0, instance=0, view=0, round=1, digest="d")
        forged = forge_message(pre)
        assert forged.digest == forged_digest("d")
        assert forged.round == pre.round and forged.txs == pre.txs
        vote = Commit(sender=1, instance=0, view=0, round=1, digest="d")
        assert forge_message(vote).digest == forged_digest("d")
        # chained HotStuff embeds the parent QC: digest forks are left alone
        hs = HotStuffProposal(sender=0, instance=0, view=0, round=2, digest="d")
        assert forge_message(hs) is hs


class TestAdversarySpec:
    def test_needs_attacks(self):
        with pytest.raises(ValueError):
            AdversarySpec(attacks=())

    def test_replica_union_and_lowering(self):
        spec = AdversarySpec(
            attacks=(
                Equivocation(replicas=(3,)),
                RankManipulation(replicas=(1, 2), slowdown=5.0),
            )
        )
        assert spec.replicas() == frozenset({1, 2, 3})
        assert spec.rank_manipulators() == frozenset({1, 2})
        stragglers = spec.straggler_specs()
        assert [s.replica for s in stragglers] == [1, 2]
        assert all(s.byzantine and s.slowdown == 5.0 for s in stragglers)
        assert len(spec.message_attacks()) == 1

    def test_merge_concatenates_attacks(self):
        a = AdversarySpec(attacks=(Equivocation(replicas=(3,)),), name="a")
        b = AdversarySpec(attacks=(Silence(replicas=(2,)),), name="b")
        merged = a.merge(b)
        assert merged.replicas() == frozenset({2, 3})
        assert merged.name == "b"

    def test_validate_for_rejects_out_of_range(self):
        spec = AdversarySpec(attacks=(Silence(replicas=(7,)),))
        with pytest.raises(ValueError):
            spec.validate_for(4)
        spec.validate_for(8)

    def test_validate_for_rejects_inert_equivocation(self):
        # conspirators covering every odd id leave an empty forged world —
        # the attack would silently do nothing, so it is rejected up front
        spec = AdversarySpec(attacks=(Equivocation(replicas=(1, 3)),))
        with pytest.raises(ValueError, match="inert"):
            spec.validate_for(4)
        spec.validate_for(6)  # n=6 leaves honest replica 5 in the forged world

    def test_registry_builtins_resolve_and_fit_n4(self):
        names = available_adversaries()
        assert {
            "equivocation",
            "equivocation-colluding",
            "silence-observer",
            "delayed-votes",
            "rank-manipulation",
        } <= set(names)
        for name in names:
            get_adversary(name).validate_for(4)

    def test_registry_unknown_and_duplicate(self):
        with pytest.raises(KeyError):
            get_adversary("nope")
        with pytest.raises(ValueError):
            register_adversary(get_adversary("equivocation"))

    def test_byz_scenarios_registered_with_adversaries(self):
        byz = [name for name in available_scenarios() if name.startswith("byz-")]
        assert len(byz) >= 4
        for name in byz:
            spec = get_scenario(name)
            assert spec.adversary is not None
            assert "adversary" in spec.describe()


# ----------------------------------------------------------- interceptor
class _Recorder(Node):
    def __init__(self, node_id, simulator, network):
        super().__init__(node_id, simulator, network)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))


def _harness(n=4, seed=0):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    nodes = {i: _Recorder(i, simulator, network) for i in range(n)}
    return simulator, network, nodes


class TestInterceptor:
    def _install(self, simulator, nodes, *attacks):
        spec = AdversarySpec(attacks=tuple(attacks))
        log = []
        interceptors = spec.install(simulator, nodes, event_log=log)
        return interceptors, log

    def test_silence_suppresses_matching_messages(self):
        simulator, _, nodes = _harness()
        interceptors, _ = self._install(
            simulator, nodes, Silence(replicas=(3,), targets=(0,), kinds=("vote",))
        )
        vote = Prepare(sender=3, instance=1, view=0, round=1, digest="d")
        pre = PrePrepare(sender=3, instance=3, view=0, round=1, digest="d")
        simulator.run(until=0.001)  # fire the activation event at t=0
        nodes[3].send(0, vote)
        nodes[3].send(1, vote)
        nodes[3].send(0, pre)  # not a vote: passes
        simulator.run(until=1.0)
        assert not any(isinstance(m, Prepare) for _, m in nodes[0].received)
        assert any(isinstance(m, Prepare) for _, m in nodes[1].received)
        assert any(isinstance(m, PrePrepare) for _, m in nodes[0].received)
        assert interceptors[3].suppressed == 1

    def test_silence_per_instance_censorship(self):
        simulator, _, nodes = _harness()
        interceptors, _ = self._install(
            simulator, nodes, Silence(replicas=(3,), instances=(2,))
        )
        simulator.run(until=0.001)
        nodes[3].send(0, Prepare(sender=3, instance=2, view=0, round=1))
        nodes[3].send(0, Prepare(sender=3, instance=1, view=0, round=1))
        simulator.run(until=1.0)
        assert [m.instance for _, m in nodes[0].received] == [1]
        assert interceptors[3].suppressed == 1

    def test_delayed_votes_arrive_late(self):
        simulator, _, nodes = _harness()
        interceptors, _ = self._install(
            simulator, nodes, DelayedVotes(replicas=(3,), delay=2.0)
        )
        simulator.run(until=0.001)
        nodes[3].send(0, Prepare(sender=3, instance=0, view=0, round=1))
        simulator.run(until=1.0)
        assert nodes[0].received == []
        simulator.run(until=3.5)
        assert len(nodes[0].received) == 1
        assert interceptors[3].delayed == 1

    def test_equivocation_forks_only_forged_world(self):
        simulator, _, nodes = _harness()
        interceptors, _ = self._install(simulator, nodes, Equivocation(replicas=(3,)))
        simulator.run(until=0.001)
        pre = PrePrepare(sender=3, instance=3, view=0, round=1, digest="d")
        for receiver in range(3):
            nodes[3].send(receiver, pre)
        # votes on the adversary's own instance are forked the same way
        nodes[3].send(1, Prepare(sender=3, instance=3, view=0, round=1, digest="d"))
        # votes on an honestly-led instance are NOT touched
        nodes[3].send(1, Prepare(sender=3, instance=0, view=0, round=1, digest="h"))
        simulator.run(until=1.0)
        by_receiver = {r: [m for _, m in nodes[r].received] for r in range(3)}
        assert by_receiver[0][0].digest == "d"  # honest even: original world
        assert by_receiver[2][0].digest == "d"
        forged_pre = by_receiver[1][0]
        assert forged_pre.digest == forged_digest("d")  # honest odd: forked
        votes = [m for m in by_receiver[1] if isinstance(m, Prepare)]
        assert {v.digest for v in votes} == {forged_digest("d"), "h"}
        assert interceptors[3].forged == 2

    def test_attack_window_toggles_on_timeline(self):
        simulator, _, nodes = _harness()
        interceptors, log = self._install(
            simulator, nodes, Silence(replicas=(3,), start=2.0, until=4.0)
        )
        vote = Prepare(sender=3, instance=0, view=0, round=1)
        nodes[3].send(0, vote)  # before the window: delivered
        simulator.run(until=3.0)
        nodes[3].send(0, vote)  # inside the window: suppressed
        simulator.run(until=5.0)
        nodes[3].send(0, vote)  # after the window: delivered
        simulator.run(until=6.0)
        assert len(nodes[0].received) == 2
        assert interceptors[3].suppressed == 1
        kinds = [kind for _, kind, _ in log]
        assert kinds == ["attack:silence", "attack:silence-end"]

    def test_fault_injector_arms_interceptors(self):
        simulator, network, nodes = _harness()
        config = FaultConfig(
            adversary=AdversarySpec(attacks=(Silence(replicas=(2,)),))
        )
        injector = FaultInjector(simulator, nodes, config, network=network)
        injector.arm()
        assert set(injector.interceptors) == {2}
        assert nodes[2].interceptor is injector.interceptors[2]
        assert nodes[0].interceptor is None
        assert set(injector.adversary_stats()) == {"suppressed", "delayed", "forged"}


# ------------------------------------------------------------- migration
class TestByzantineMigration:
    def test_legacy_flag_warns_deprecation(self):
        with pytest.warns(DeprecationWarning):
            FaultConfig(stragglers=(StragglerSpec(replica=2, byzantine=True),))

    def test_catalog_form_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FaultConfig(
                adversary=AdversarySpec(
                    attacks=(RankManipulation(replicas=(2,), slowdown=5.0),)
                )
            )

    def test_catalog_and_legacy_views_are_equivalent(self):
        with pytest.warns(DeprecationWarning):
            legacy = FaultConfig(
                stragglers=(StragglerSpec(replica=2, slowdown=5.0, byzantine=True),)
            )
        catalog = FaultConfig(
            adversary=AdversarySpec(
                attacks=(RankManipulation(replicas=(2,), slowdown=5.0),)
            )
        )
        for config in (legacy, catalog):
            assert config.is_straggler(2)
            assert config.is_byzantine(2)
            assert config.slowdown_of(2) == 5.0
            assert config.straggler_count() == 1
            assert config.adversarial_replicas() == frozenset({2})
        assert legacy.straggler_map() == catalog.straggler_map()

    def test_rank_manipulation_run_matches_legacy_byte_for_byte(self):
        def run(faults):
            config = SystemConfig(
                protocol="ladon-pbft",
                n=4,
                batch_size=128,
                environment="lan",
                duration=6.0,
                seed=5,
                faults=faults,
            )
            return build_system(config).run().metrics

        with pytest.warns(DeprecationWarning):
            legacy_faults = FaultConfig(
                stragglers=(StragglerSpec(replica=3, slowdown=10.0, byzantine=True),)
            )
        legacy = run(legacy_faults)
        catalog = run(
            FaultConfig(
                adversary=AdversarySpec(
                    attacks=(RankManipulation(replicas=(3,), slowdown=10.0),)
                )
            )
        )
        assert legacy.throughput_tps == catalog.throughput_tps
        assert legacy.average_latency_s == catalog.average_latency_s
        assert legacy.confirmed_blocks == catalog.confirmed_blocks


# ------------------------------------------------------------- cells
class TestExperimentCellAdversary:
    def test_adversary_changes_cache_key_and_label(self):
        honest = ExperimentCell(protocol="ladon-pbft", n=4)
        attacked = ExperimentCell(protocol="ladon-pbft", n=4, adversary="equivocation")
        assert cell_key(honest) != cell_key(attacked)
        assert "adv:equivocation" in attacked.label()

    def test_adversary_spec_resolution(self):
        cell = ExperimentCell(protocol="ladon-pbft", n=4, adversary="delayed-votes")
        config = cell.to_system_config()
        assert config.faults.adversary is not None
        assert config.faults.adversary.name == "delayed-votes"
        assert ExperimentCell(protocol="ladon-pbft", n=4).adversary_spec() is None

    def test_analytical_engine_rejects_adversaries(self):
        cell = ExperimentCell(
            protocol="ladon-pbft", n=16, adversary="equivocation", engine="analytical"
        )
        with pytest.raises(ValueError):
            run_cell(cell)

    def test_scenario_merges_adversary_into_faults(self):
        spec = get_scenario("byz-equivocation")
        faults = spec.fault_config(FaultConfig(), n=4)
        assert faults.adversary is not None
        assert 3 in faults.adversary.replicas()


# ----------------------------------------------------- end-to-end audit
_RUNS = {}


def _run_scenario_cell(scenario=None, adversary=None, protocol="ladon-pbft"):
    key = (scenario, adversary, protocol)
    if key not in _RUNS:
        cell = ExperimentCell(
            protocol=protocol,
            n=4,
            duration=12.0,
            batch_size=256,
            scenario=scenario,
            adversary=adversary,
        )
        _RUNS[key] = run_des_cell(cell)
    return _RUNS[key]


@pytest.mark.scenario
class TestAttacksShiftMetricsAndAudit:
    """Acceptance: every catalog attack shifts a metric vs. the honest
    baseline in a registry scenario while the auditor certifies safety for
    f < n/3, and flags the violation for f >= n/3 equivocation."""

    def test_honest_baseline_is_safe_and_live(self):
        result = _run_scenario_cell("wan")
        assert result.audit.safety_ok
        assert result.audit.live
        assert result.metrics.extra["safety_violations"] == 0.0

    def test_equivocation_shifts_metrics_but_stays_safe(self):
        baseline = _run_scenario_cell("wan")
        result = _run_scenario_cell("byz-equivocation")
        # the forged-world replicas stall on the attacked instance...
        assert result.audit.stalled_instances == (3,)
        assert result.metrics.extra["stalled_instances"] == 1.0
        assert result.metrics.extra["adversary_forged"] > 0
        # ...and the observer loses quorum slack on it
        assert result.metrics.throughput_tps < baseline.metrics.throughput_tps
        # but with f < n/3 safety holds and the auditor confirms it
        assert result.audit.safety_ok
        assert 3 not in result.audit.honest_replicas

    def test_silence_censors_the_observer(self):
        baseline = _run_scenario_cell("wan")
        result = _run_scenario_cell("byz-silence")
        assert result.metrics.extra["adversary_suppressed"] > 0
        # the observer's confirmed log wedges shortly after t=4s
        assert result.metrics.throughput_tps < 0.7 * baseline.metrics.throughput_tps
        assert result.audit.safety_ok

    def test_delayed_votes_raise_latency_without_view_changes(self):
        baseline = _run_scenario_cell("wan")
        result = _run_scenario_cell("byz-delayed-votes")
        assert result.metrics.extra["adversary_delayed"] > 0
        assert (
            result.metrics.average_latency_s
            > 1.5 * baseline.metrics.average_latency_s
        )
        # the whole point of the attack: stay under the timeout
        assert result.view_change_times == []
        assert result.audit.safety_ok

    def test_rank_manipulation_costs_throughput(self):
        baseline = _run_scenario_cell("wan")
        result = _run_scenario_cell("byz-rank")
        assert result.metrics.stragglers == 1
        assert result.metrics.throughput_tps < baseline.metrics.throughput_tps
        assert result.audit.safety_ok

    def test_colluding_equivocation_breaks_safety_and_is_reported(self):
        result = _run_scenario_cell("wan", adversary="equivocation-colluding")
        assert not result.audit.safety_ok
        assert result.metrics.extra["safety_violations"] > 0
        kinds = {violation.kind for violation in result.audit.violations}
        assert "conflicting-commit" in kinds
        # only honest replicas are audited; both conspirators are excluded
        assert result.audit.honest_replicas == (0, 1)
        assert result.audit.adversarial_replicas == (2, 3)

    def test_attack_windows_show_in_dynamics_log(self):
        result = _run_scenario_cell("byz-silence")
        kinds = [kind for _, kind, _ in result.dynamics_log]
        assert "attack:silence" in kinds
