"""Unit tests for the ddmin shrinker, driven by synthetic predicates.

Synthetic predicates make the shrinker's contract checkable without
simulation runs: a predicate inspects the candidate cell's decision vector
(and dimensions) directly, so each test pins one guarantee — the exact
failure core is found, the repro never grows, the test budget is honored,
and dimension reductions compose with decision minimization.
"""

import pytest

from repro.bench.config import ExperimentCell
from repro.fuzz.perturb import PerturbationSpec
from repro.fuzz.shrink import shrink


def _cell(decisions, **overrides):
    base = dict(
        protocol="ladon-pbft", n=4, duration=8.0, environment="wan",
        batch_size=64, seed=0,
        perturbation=PerturbationSpec(
            max_delay=1.0, probability=0.1, seed=0, decisions=tuple(decisions)
        ),
    )
    base.update(overrides)
    return ExperimentCell(**base)


def _nonzero(cell):
    return {i for i, d in enumerate(cell.perturbation.decisions) if d}


def _requires(core):
    """Predicate: violates iff every index in ``core`` is still nonzero."""
    return lambda cell: core <= _nonzero(cell)


def test_finds_the_exact_failure_core():
    decisions = [0.5 if i % 3 == 0 else 0.0 for i in range(120)]
    decisions[7] = 0.25
    core = {7, 42}
    result = shrink(_cell(decisions), _requires(core), max_tests=200)
    assert _nonzero(result.cell) == core
    # Minimization zeroes decisions; it never invents or rescales them.
    assert result.cell.perturbation.decisions[7] == 0.25
    assert result.cell.perturbation.decisions[42] == 0.5


def test_schedule_independent_violation_shrinks_to_no_decisions():
    decisions = [0.3] * 50
    result = shrink(_cell(decisions), lambda cell: True, max_tests=200)
    assert not _nonzero(result.cell)
    # Also picked up the duration halvings all the way to the floor.
    assert result.cell.duration == 2.0


def test_need_all_decisions_shrinks_nothing():
    decisions = [0.3] * 50
    all_indices = set(range(50))
    result = shrink(
        _cell(decisions, duration=2.0), _requires(all_indices), max_tests=200
    )
    assert _nonzero(result.cell) == all_indices


def test_monotone_every_accepted_candidate_violates_and_never_grows():
    decisions = [0.5 if i % 4 == 0 else 0.0 for i in range(80)]
    core = {0, 36}
    sizes = []
    inner = _requires(core)

    def watched(cell):
        ok = inner(cell)
        if ok:
            sizes.append(len(_nonzero(cell)))
        return ok

    result = shrink(_cell(decisions), watched, max_tests=200)
    assert _nonzero(result.cell) == core
    # Accepted repros shrink monotonically: the current repro never grows.
    assert sizes == sorted(sizes, reverse=True)


def test_max_tests_bounds_predicate_evaluations():
    decisions = [0.3] * 200
    calls = []

    def counting(cell):
        calls.append(1)
        return _requires(set(range(200)))(cell)

    result = shrink(_cell(decisions, duration=2.0), counting, max_tests=9)
    assert result.tests == len(calls) == 9
    # Budget exhausted before 1-minimality: the repro is still valid, just
    # not fully minimized.
    assert _requires(set(range(200)))(result.cell)


def test_dimension_reductions_drop_adversary_and_scenario():
    decisions = [0.4, 0.0, 0.4]
    cell = _cell(decisions, scenario="churn", adversary=None, duration=4.0)
    result = shrink(cell, _requires({0}), max_tests=100)
    assert result.cell.scenario is None
    assert result.cell.duration == 2.0
    assert _nonzero(result.cell) == {0}


def test_duration_halving_respects_the_floor():
    result = shrink(
        _cell([0.4], duration=8.0), _requires({0}),
        max_tests=100, min_duration=3.0,
    )
    assert result.cell.duration == 4.0  # 4/2 = 2 < 3 would cross the floor


def test_shrink_requires_decision_replay_form():
    cell = _cell([0.1])
    bare = ExperimentCell(
        protocol="ladon-pbft", n=4, duration=8.0, environment="wan",
        batch_size=64, seed=0,
        perturbation=PerturbationSpec(max_delay=1.0, probability=0.1, seed=0),
    )
    with pytest.raises(ValueError):
        shrink(bare, lambda c: True)
    # Sanity: the decision-replay form itself is accepted.
    shrink(cell, lambda c: True, max_tests=5)
