"""Dynamic complement to the DET static rules: seeded double-run determinism.

The staticcheck DET family bans nondeterminism *sources*; this test is the
runtime witness that a DES run actually is a pure function of
(config, seed) — the precondition for sharding the simulator across worker
processes with the single-process run as the equivalence oracle.

Same cell, same seed, run twice in the same process:

* identical confirmed sequence (instance, round, rank, digest, timestamp);
* identical trace digest (every ``confirm`` trace event, bit-for-bit);
* identical network/message statistics.

A different seed must *not* reproduce the trace digest (guards against the
digest accidentally hashing nothing).
"""

import hashlib

from repro.protocols.base import SystemConfig
from repro.protocols.registry import build_system


def _run_cell(seed: int):
    config = SystemConfig(
        protocol="ladon-pbft",
        n=4,
        duration=3.0,
        environment="wan",
        batch_size=64,
        seed=seed,
        trace=True,
    )
    system = build_system(config)
    result = system.run()
    assert result.audit is not None and result.audit.safety_ok
    confirmed_sequence = tuple(
        (
            c.block.instance,
            c.block.round,
            c.block.rank,
            c.block.payload_digest,
            c.confirmed_at,
        )
        for c in result.confirmed
    )
    trace_payload = repr(
        [
            (e.time, e.category, e.node, sorted(e.details.items()))
            for e in system.trace
        ]
    ).encode("utf-8")
    trace_digest = hashlib.sha256(trace_payload).hexdigest()
    stats = (
        result.network_stats.messages_sent,
        result.network_stats.messages_delivered,
        tuple(sorted(result.network_stats.drops_by_cause.items())),
    )
    return confirmed_sequence, trace_digest, stats


def test_double_run_same_seed_is_bit_identical():
    first_sequence, first_digest, first_stats = _run_cell(seed=7)
    second_sequence, second_digest, second_stats = _run_cell(seed=7)
    assert len(first_sequence) >= 20, "scenario too short to be meaningful"
    assert first_sequence == second_sequence
    assert first_digest == second_digest
    assert first_stats == second_stats


def test_trace_digest_actually_sees_the_run():
    """A trace digest that ignored the schedule would 'pass' forever."""
    _, digest_seed_7, _ = _run_cell(seed=7)
    sequence_seed_8, digest_seed_8, _ = _run_cell(seed=8)
    assert sequence_seed_8, "seed 8 run confirmed nothing"
    assert digest_seed_7 != digest_seed_8


def test_trace_records_confirmations_when_enabled():
    config = SystemConfig(
        protocol="ladon-pbft", n=4, duration=2.0, environment="lan", trace=True
    )
    system = build_system(config)
    result = system.run()
    confirms = system.trace.by_category("confirm")
    assert confirms, "trace=True run recorded no confirm events"
    # every replica's orderer confirms; the observer's log matches result
    observer_confirms = [e for e in confirms if e.node == system.observer_id()]
    assert len(observer_confirms) == len(result.confirmed)


def test_trace_disabled_by_default_records_nothing():
    config = SystemConfig(protocol="ladon-pbft", n=4, duration=1.0, environment="lan")
    system = build_system(config)
    system.run()
    assert len(system.trace) == 0
