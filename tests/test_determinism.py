"""Dynamic complement to the DET static rules: seeded double-run determinism.

The staticcheck DET family bans nondeterminism *sources*; this test is the
runtime witness that a DES run actually is a pure function of
(config, seed) — the precondition for sharding the simulator across worker
processes with the single-process run as the equivalence oracle.

Same cell, same seed, run twice in the same process:

* identical confirmed sequence (instance, round, rank, digest, timestamp);
* identical trace digest (every ``confirm`` trace event, bit-for-bit);
* identical network/message statistics.

A different seed must *not* reproduce the trace digest (guards against the
digest accidentally hashing nothing).

The replay section extends the witness to the full *schedule* trace
(deliveries + cancellations + fault timeline): capture a run, re-execute
it, and require canonical-digest equality; a mutated trace must fail the
artifact replay check with a diagnostic naming the first divergent event.
"""

import hashlib

from repro.protocols.base import SystemConfig
from repro.protocols.registry import build_system
from repro.sim.faults import CrashSpec, FaultConfig
from repro.sim.trace import trace_digest, trace_from_jsonable, trace_to_jsonable


def _run_cell(seed: int):
    config = SystemConfig(
        protocol="ladon-pbft",
        n=4,
        duration=3.0,
        environment="wan",
        batch_size=64,
        seed=seed,
        trace=True,
    )
    system = build_system(config)
    result = system.run()
    assert result.audit is not None and result.audit.safety_ok
    confirmed_sequence = tuple(
        (
            c.block.instance,
            c.block.round,
            c.block.rank,
            c.block.payload_digest,
            c.confirmed_at,
        )
        for c in result.confirmed
    )
    trace_payload = repr(
        [
            (e.time, e.category, e.node, sorted(e.details.items()))
            for e in system.trace
        ]
    ).encode("utf-8")
    trace_digest = hashlib.sha256(trace_payload).hexdigest()
    stats = (
        result.network_stats.messages_sent,
        result.network_stats.messages_delivered,
        tuple(sorted(result.network_stats.drops_by_cause.items())),
    )
    return confirmed_sequence, trace_digest, stats


def test_double_run_same_seed_is_bit_identical():
    first_sequence, first_digest, first_stats = _run_cell(seed=7)
    second_sequence, second_digest, second_stats = _run_cell(seed=7)
    assert len(first_sequence) >= 20, "scenario too short to be meaningful"
    assert first_sequence == second_sequence
    assert first_digest == second_digest
    assert first_stats == second_stats


def test_trace_digest_actually_sees_the_run():
    """A trace digest that ignored the schedule would 'pass' forever."""
    _, digest_seed_7, _ = _run_cell(seed=7)
    sequence_seed_8, digest_seed_8, _ = _run_cell(seed=8)
    assert sequence_seed_8, "seed 8 run confirmed nothing"
    assert digest_seed_7 != digest_seed_8


def test_trace_records_confirmations_when_enabled():
    config = SystemConfig(
        protocol="ladon-pbft", n=4, duration=2.0, environment="lan", trace=True
    )
    system = build_system(config)
    result = system.run()
    confirms = system.trace.by_category("confirm")
    assert confirms, "trace=True run recorded no confirm events"
    # every replica's orderer confirms; the observer's log matches result
    observer_confirms = [e for e in confirms if e.node == system.observer_id()]
    assert len(observer_confirms) == len(result.confirmed)


def test_trace_disabled_by_default_records_nothing():
    config = SystemConfig(protocol="ladon-pbft", n=4, duration=1.0, environment="lan")
    system = build_system(config)
    system.run()
    assert len(system.trace) == 0


# ---------------------------------------------------------------- replay
# The fuzzer's bit-exactness criterion: re-executing a cell reproduces the
# canonical digest of the *full* schedule trace — every delivery, every
# effective cancellation, every fault action, every confirmation.


def _cell(**overrides):
    from repro.bench.config import ExperimentCell

    base = dict(
        protocol="ladon-pbft", n=4, duration=2.0, environment="wan",
        batch_size=64, seed=11,
    )
    base.update(overrides)
    return ExperimentCell(**base)


def test_full_schedule_trace_replays_bit_exact():
    from collections import Counter

    from repro.fuzz.replay import run_cell_traced

    first_system, first_result = run_cell_traced(_cell())
    second_system, second_result = run_cell_traced(_cell())
    categories = Counter(e.category for e in first_system.trace)
    # The trace must witness the whole schedule, not just confirmations.
    assert categories["deliver"] > 100, categories
    assert categories["cancel"] > 0, categories
    assert categories["confirm"] > 0, categories
    assert first_system.trace.digest() == second_system.trace.digest()
    first_confirmed = [(c.block.instance, c.block.round, c.confirmed_at)
                       for c in first_result.confirmed]
    second_confirmed = [(c.block.instance, c.block.round, c.confirmed_at)
                        for c in second_result.confirmed]
    assert first_confirmed == second_confirmed
    assert first_confirmed, "run confirmed nothing; trace equality is vacuous"


def test_trace_round_trips_through_jsonable():
    from repro.fuzz.replay import run_cell_traced

    system, _result = run_cell_traced(_cell(duration=1.0))
    events = system.trace.events
    restored = trace_from_jsonable(trace_to_jsonable(events))
    assert trace_digest(restored) == trace_digest(events)


def test_crash_recover_run_traces_faults_and_replays():
    faults = FaultConfig(crashes=(CrashSpec(replica=2, at=1.0, recover_at=2.0),))
    digests = []
    for _ in range(2):
        config = SystemConfig(
            protocol="ladon-pbft", n=4, duration=3.0, environment="wan",
            batch_size=64, seed=3, faults=faults, trace=True,
            view_change_timeout=1.0,
        )
        system = build_system(config)
        system.run()
        fault_kinds = {e.details["kind"] for e in system.trace.by_category("fault")}
        assert "crash" in fault_kinds and "recover" in fault_kinds
        # Crashing a replica cancels its pending timers through the runtime,
        # so the cancellations land in the trace too.
        assert system.trace.by_category("cancel")
        digests.append(system.trace.digest())
    assert digests[0] == digests[1]


def _small_artifact():
    from repro.fuzz.artifact import make_artifact, outcome_of
    from repro.fuzz.replay import run_cell_traced

    cell = _cell()
    system, result = run_cell_traced(cell)
    return make_artifact(cell, outcome_of(result, system.trace.events), system.trace.events)


def test_artifact_replay_is_bit_exact():
    from repro.fuzz.replay import replay_artifact

    report = replay_artifact(_small_artifact())
    assert report.ok, report.summary()


def test_mutated_digest_fails_replay_with_delivery_diagnostic():
    from repro.fuzz.replay import replay_artifact

    artifact = _small_artifact()
    artifact["expected"]["trace_digest"] = "0" * 64
    report = replay_artifact(artifact)
    assert not report.ok
    # Skeleton still matches, so the diagnostic localizes the (fabricated)
    # divergence to the delivery stream rather than claiming a bare failure.
    assert "delivery stream" in report.divergence


def test_mutated_skeleton_event_is_named_in_the_diagnostic():
    from repro.fuzz.replay import replay_artifact

    artifact = _small_artifact()
    artifact["expected"]["trace_digest"] = "0" * 64
    artifact["skeleton"][5]["t"] += 0.25
    report = replay_artifact(artifact)
    assert not report.ok
    assert "skeleton event #5" in report.divergence, report.divergence


def test_mutated_verdict_fails_replay_naming_the_field():
    from repro.fuzz.replay import replay_artifact

    artifact = _small_artifact()
    artifact["expected"]["confirmed"] += 1
    report = replay_artifact(artifact)
    assert not report.ok
    assert "verdict mismatch" in report.divergence
    assert "confirmed" in report.divergence
