"""Tests for fault configuration and injection."""

import pytest

from repro.sim.faults import CrashSpec, FaultConfig, FaultInjector, StragglerSpec
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.simulator import Simulator


class TestStragglerSpec:
    def test_rejects_speedup(self):
        with pytest.raises(ValueError):
            StragglerSpec(replica=0, slowdown=0.5)

    def test_defaults(self):
        spec = StragglerSpec(replica=3)
        assert spec.slowdown == 10.0
        assert not spec.byzantine


class TestFaultConfig:
    def test_with_stragglers_selects_requested_count(self):
        config = FaultConfig.with_stragglers(3, 16, seed=1)
        assert config.straggler_count() == 3
        assert len({s.replica for s in config.stragglers}) == 3

    def test_with_stragglers_deterministic(self):
        a = FaultConfig.with_stragglers(2, 16, seed=5)
        b = FaultConfig.with_stragglers(2, 16, seed=5)
        assert [s.replica for s in a.stragglers] == [s.replica for s in b.stragglers]

    def test_with_stragglers_zero(self):
        config = FaultConfig.with_stragglers(0, 8)
        assert config.straggler_count() == 0

    def test_with_stragglers_rejects_too_many(self):
        with pytest.raises(ValueError):
            FaultConfig.with_stragglers(9, 8)

    def test_straggler_queries(self):
        config = FaultConfig(stragglers=(StragglerSpec(replica=2, slowdown=5.0, byzantine=True),))
        assert config.is_straggler(2)
        assert config.is_byzantine(2)
        assert not config.is_straggler(3)
        assert config.slowdown_of(2) == 5.0
        assert config.slowdown_of(1) == 1.0

    def test_byzantine_flag_propagates(self):
        config = FaultConfig.with_stragglers(2, 8, byzantine=True, seed=0)
        assert all(s.byzantine for s in config.stragglers)


class _DummyNode(Node):
    def on_message(self, sender, message):
        pass


class TestFaultInjector:
    def _build(self, crashes):
        sim = Simulator(seed=0)
        net = Network(sim)
        nodes = {i: _DummyNode(i, sim, net) for i in range(4)}
        injector = FaultInjector(sim, nodes, FaultConfig(crashes=crashes))
        injector.arm()
        return sim, nodes, injector

    def test_crash_at_time(self):
        sim, nodes, injector = self._build((CrashSpec(replica=1, at=5.0),))
        sim.run()
        assert nodes[1].crashed
        assert injector.crash_log == [(5.0, 1, "crash")]

    def test_crash_and_recover(self):
        sim, nodes, injector = self._build((CrashSpec(replica=2, at=1.0, recover_at=3.0),))
        sim.run()
        assert not nodes[2].crashed
        assert [entry[2] for entry in injector.crash_log] == ["crash", "recover"]

    def test_recover_before_crash_rejected(self):
        with pytest.raises(ValueError):
            self._build((CrashSpec(replica=0, at=5.0, recover_at=4.0),))

    def test_unknown_replica_rejected(self):
        sim = Simulator()
        net = Network(sim)
        nodes = {0: _DummyNode(0, sim, net)}
        injector = FaultInjector(sim, nodes, FaultConfig(crashes=(CrashSpec(replica=7, at=1.0),)))
        with pytest.raises(KeyError):
            injector.arm()
