"""Tests for fault configuration and injection."""

import pytest

from repro.sim.faults import (
    CrashSpec,
    DegradationSpec,
    FaultConfig,
    FaultInjector,
    LossBurstSpec,
    PartitionSpec,
    StragglerSpec,
)
from repro.sim.network import Network, NetworkConfig
from repro.sim.latency import UniformLatency
from repro.sim.node import Node
from repro.sim.simulator import Simulator


class TestStragglerSpec:
    def test_rejects_speedup(self):
        with pytest.raises(ValueError):
            StragglerSpec(replica=0, slowdown=0.5)

    def test_defaults(self):
        spec = StragglerSpec(replica=3)
        assert spec.slowdown == 10.0
        assert not spec.byzantine


class TestFaultConfig:
    def test_with_stragglers_selects_requested_count(self):
        config = FaultConfig.with_stragglers(3, 16, seed=1)
        assert config.straggler_count() == 3
        assert len({s.replica for s in config.stragglers}) == 3

    def test_with_stragglers_deterministic(self):
        a = FaultConfig.with_stragglers(2, 16, seed=5)
        b = FaultConfig.with_stragglers(2, 16, seed=5)
        assert [s.replica for s in a.stragglers] == [s.replica for s in b.stragglers]

    def test_with_stragglers_zero(self):
        config = FaultConfig.with_stragglers(0, 8)
        assert config.straggler_count() == 0

    def test_with_stragglers_rejects_too_many(self):
        with pytest.raises(ValueError):
            FaultConfig.with_stragglers(9, 8)

    def test_straggler_queries(self):
        config = FaultConfig(stragglers=(StragglerSpec(replica=2, slowdown=5.0, byzantine=True),))
        assert config.is_straggler(2)
        assert config.is_byzantine(2)
        assert not config.is_straggler(3)
        assert config.slowdown_of(2) == 5.0
        assert config.slowdown_of(1) == 1.0

    def test_byzantine_flag_propagates(self):
        config = FaultConfig.with_stragglers(2, 8, byzantine=True, seed=0)
        assert all(s.byzantine for s in config.stragglers)

    def test_straggler_map_precomputed(self):
        specs = tuple(StragglerSpec(replica=r, slowdown=4.0) for r in range(50))
        config = FaultConfig(stragglers=specs)
        assert config.straggler_map() == {r: specs[r] for r in range(50)}
        # The queries go through the precomputed dict, not a tuple scan.
        assert config._straggler_by_replica[49] is specs[49]
        assert config.slowdown_of(49) == 4.0
        assert not config.is_straggler(50)

    def test_dataclasses_replace_rebuilds_map(self):
        from dataclasses import replace

        config = FaultConfig(stragglers=(StragglerSpec(replica=1),))
        updated = replace(config, stragglers=(StragglerSpec(replica=2),))
        assert updated.is_straggler(2) and not updated.is_straggler(1)


class _DummyNode(Node):
    def on_message(self, sender, message):
        pass


class TestFaultInjector:
    def _build(self, crashes):
        sim = Simulator(seed=0)
        net = Network(sim)
        nodes = {i: _DummyNode(i, sim, net) for i in range(4)}
        injector = FaultInjector(sim, nodes, FaultConfig(crashes=crashes))
        injector.arm()
        return sim, nodes, injector

    def test_crash_at_time(self):
        sim, nodes, injector = self._build((CrashSpec(replica=1, at=5.0),))
        sim.run()
        assert nodes[1].crashed
        assert injector.crash_log == [(5.0, 1, "crash")]

    def test_crash_and_recover(self):
        sim, nodes, injector = self._build((CrashSpec(replica=2, at=1.0, recover_at=3.0),))
        sim.run()
        assert not nodes[2].crashed
        assert [entry[2] for entry in injector.crash_log] == ["crash", "recover"]

    def test_recover_before_crash_rejected(self):
        with pytest.raises(ValueError):
            self._build((CrashSpec(replica=0, at=5.0, recover_at=4.0),))

    def test_unknown_replica_rejected(self):
        sim = Simulator()
        net = Network(sim)
        nodes = {0: _DummyNode(0, sim, net)}
        injector = FaultInjector(sim, nodes, FaultConfig(crashes=(CrashSpec(replica=7, at=1.0),)))
        with pytest.raises(KeyError):
            injector.arm()


class _Echo(Node):
    def __init__(self, node_id, simulator, network):
        super().__init__(node_id, simulator, network)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((self.now(), sender, message))


class TestNetworkDynamicsInjection:
    def _build(self, config):
        sim = Simulator(seed=0)
        net = Network(
            sim,
            latency=UniformLatency(base=0.01, jitter=0.0),
            config=NetworkConfig(processing_delay=0.0),
        )
        nodes = {i: _Echo(i, sim, net) for i in range(4)}
        injector = FaultInjector(sim, nodes, config, network=net)
        injector.arm()
        return sim, net, nodes, injector

    def test_network_required_for_dynamics(self):
        sim = Simulator(seed=0)
        net = Network(sim)
        nodes = {i: _DummyNode(i, sim, net) for i in range(4)}
        config = FaultConfig(partitions=(PartitionSpec(at=1.0, groups=((0, 1), (2, 3))),))
        injector = FaultInjector(sim, nodes, config)
        with pytest.raises(ValueError):
            injector.arm()

    def test_partition_split_and_heal_transitions(self):
        config = FaultConfig(
            partitions=(PartitionSpec(at=1.0, groups=((0, 1), (2, 3)), heal_at=3.0),)
        )
        sim, net, nodes, injector = self._build(config)
        # Before the split: cross-group traffic flows.
        net.send(0, 2, "before")
        sim.run(until=2.0)
        assert net.partitioned
        net.send(0, 2, "during")
        sim.run(until=4.0)
        assert not net.partitioned
        net.send(0, 2, "after")
        sim.run()
        assert [m for _, _, m in nodes[2].received] == ["before", "after"]
        assert [(t, kind) for t, kind, _ in injector.event_log] == [
            (1.0, "partition"), (3.0, "heal"),
        ]

    def test_permanent_partition_never_heals(self):
        config = FaultConfig(partitions=(PartitionSpec(at=1.0, groups=((0, 1), (2, 3))),))
        sim, net, _, _ = self._build(config)
        sim.run(until=100.0)
        assert net.partitioned

    def test_degradation_window_scales_and_restores(self):
        config = FaultConfig(degradations=(DegradationSpec(at=1.0, until=2.0, factor=5.0),))
        sim, net, nodes, _ = self._build(config)
        sim.run(until=1.5)
        net.send(0, 1, "degraded")
        sim.run(until=2.5)
        net.send(0, 1, "nominal")
        sim.run()
        received = {m: t for t, _, m in nodes[1].received}
        assert received["degraded"] - 1.5 == pytest.approx(0.05)
        assert received["nominal"] - 2.5 == pytest.approx(0.01)

    def test_loss_burst_restores_baseline(self):
        config = FaultConfig(loss_bursts=(LossBurstSpec(at=1.0, until=2.0, drop_probability=0.9),))
        sim, net, _, injector = self._build(config)
        sim.run()
        assert net.config.drop_probability == 0.0
        assert [kind for _, kind, _ in injector.event_log] == ["loss-burst", "loss-burst-end"]

    def test_crash_and_partition_share_one_timeline(self):
        config = FaultConfig(
            crashes=(CrashSpec(replica=3, at=0.5),),
            partitions=(PartitionSpec(at=1.0, groups=((0, 1), (2, 3)), heal_at=2.0),),
        )
        sim, _, nodes, injector = self._build(config)
        sim.run()
        assert nodes[3].crashed
        assert [kind for _, kind, _ in injector.event_log] == ["crash", "partition", "heal"]
        assert injector.crash_log == [(0.5, 3, "crash")]


class TestSpecValidation:
    def test_partition_heal_before_split_rejected(self):
        with pytest.raises(ValueError):
            PartitionSpec(at=5.0, groups=((0,),), heal_at=4.0)

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            PartitionSpec(at=1.0, groups=())

    def test_degradation_window_must_be_positive(self):
        with pytest.raises(ValueError):
            DegradationSpec(at=2.0, until=2.0)

    def test_loss_burst_probability_bounds(self):
        with pytest.raises(ValueError):
            LossBurstSpec(at=1.0, until=2.0, drop_probability=1.0)

    def test_partition_groups_must_be_disjoint_at_spec_time(self):
        with pytest.raises(ValueError):
            PartitionSpec(at=1.0, groups=((0, 1), (1, 2)))

    def test_overlapping_degradation_windows_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(
                degradations=(
                    DegradationSpec(at=1.0, until=10.0, factor=4.0),
                    DegradationSpec(at=5.0, until=6.0, factor=8.0),
                )
            )

    def test_overlapping_loss_bursts_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(
                loss_bursts=(
                    LossBurstSpec(at=1.0, until=4.0),
                    LossBurstSpec(at=3.0, until=5.0),
                )
            )

    def test_back_to_back_windows_allowed(self):
        config = FaultConfig(
            degradations=(
                DegradationSpec(at=1.0, until=2.0),
                DegradationSpec(at=2.0, until=3.0),
            )
        )
        assert len(config.degradations) == 2
