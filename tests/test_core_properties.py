"""Property-based tests (hypothesis) for the ordering layer invariants.

These check the paper's G-Agreement / MR-Monotonicity style properties over
randomly generated block schedules rather than hand-picked examples.
"""

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.core.block import Block, ordering_key
from repro.core.ordering import DynamicOrderer
from repro.core.predetermined import PredeterminedOrderer
from repro.core.rank import RankReport, choose_rank
from repro.crypto.aggregate import quorum_threshold


# ----------------------------------------------------------------- strategies
@st.composite
def block_schedule(draw, max_instances=4, max_rounds=6):
    """A per-instance schedule of (round, rank) with ranks non-decreasing."""
    m = draw(st.integers(min_value=1, max_value=max_instances))
    schedule: List[Block] = []
    for instance in range(m):
        rounds = draw(st.integers(min_value=0, max_value=max_rounds))
        rank = 0
        for round in range(1, rounds + 1):
            rank += draw(st.integers(min_value=1, max_value=5))
            schedule.append(Block(instance=instance, round=round, rank=rank, tx_count_hint=1))
    order = draw(st.permutations(schedule))
    return m, list(order)


@st.composite
def delivery_interleavings(draw, max_instances=3, max_rounds=5):
    """Two different delivery orders of the same block set."""
    m, blocks = draw(block_schedule(max_instances, max_rounds))
    other = draw(st.permutations(blocks))
    return m, blocks, list(other)


# ------------------------------------------------------------------ dynamic
class TestDynamicOrdererProperties:
    @given(block_schedule())
    @settings(max_examples=80, deadline=None)
    def test_confirmed_sequence_sorted_by_ordering_key(self, schedule):
        m, blocks = schedule
        orderer = DynamicOrderer(num_instances=m)
        for i, block in enumerate(blocks):
            orderer.add_partially_committed(block, now=float(i))
        keys = [ordering_key(c.block) for c in orderer.confirmed]
        assert keys == sorted(keys)

    @given(block_schedule())
    @settings(max_examples=80, deadline=None)
    def test_sn_is_consecutive_and_unique(self, schedule):
        m, blocks = schedule
        orderer = DynamicOrderer(num_instances=m)
        for i, block in enumerate(blocks):
            orderer.add_partially_committed(block, now=float(i))
        sns = [c.sn for c in orderer.confirmed]
        assert sns == list(range(len(sns)))

    @given(block_schedule())
    @settings(max_examples=80, deadline=None)
    def test_no_block_confirmed_twice(self, schedule):
        m, blocks = schedule
        orderer = DynamicOrderer(num_instances=m)
        for i, block in enumerate(blocks):
            orderer.add_partially_committed(block, now=float(i))
            # Feed duplicates aggressively.
            orderer.add_partially_committed(block, now=float(i) + 0.5)
        ids = [c.block.block_id for c in orderer.confirmed]
        assert len(ids) == len(set(ids))

    @given(delivery_interleavings())
    @settings(max_examples=60, deadline=None)
    def test_agreement_across_delivery_orders(self, data):
        """G-Agreement: two replicas seeing different delivery interleavings of
        the same partially committed blocks confirm the same global sequence
        (for the prefix both have confirmed)."""
        m, order_a, order_b = data
        replica_a = DynamicOrderer(num_instances=m)
        replica_b = DynamicOrderer(num_instances=m)
        for i, block in enumerate(order_a):
            replica_a.add_partially_committed(block, now=float(i))
        for i, block in enumerate(order_b):
            replica_b.add_partially_committed(block, now=float(i))
        seq_a = [c.block.block_id for c in replica_a.confirmed]
        seq_b = [c.block.block_id for c in replica_b.confirmed]
        common = min(len(seq_a), len(seq_b))
        assert seq_a[:common] == seq_b[:common]

    @given(delivery_interleavings())
    @settings(max_examples=60, deadline=None)
    def test_totality_on_full_delivery(self, data):
        """After both replicas saw every block, the confirmed sets coincide."""
        m, order_a, order_b = data
        replica_a = DynamicOrderer(num_instances=m)
        replica_b = DynamicOrderer(num_instances=m)
        for i, block in enumerate(order_a):
            replica_a.add_partially_committed(block, now=float(i))
        for i, block in enumerate(order_b):
            replica_b.add_partially_committed(block, now=float(i))
        assert [c.block.block_id for c in replica_a.confirmed] == [
            c.block.block_id for c in replica_b.confirmed
        ]

    @given(block_schedule())
    @settings(max_examples=80, deadline=None)
    def test_confirmed_never_exceeds_delivered(self, schedule):
        m, blocks = schedule
        orderer = DynamicOrderer(num_instances=m)
        delivered = 0
        for i, block in enumerate(blocks):
            orderer.add_partially_committed(block, now=float(i))
            delivered += 1
            assert len(orderer.confirmed) + orderer.pending_count == delivered


# -------------------------------------------------------------- predetermined
class TestPredeterminedOrdererProperties:
    @given(delivery_interleavings())
    @settings(max_examples=60, deadline=None)
    def test_agreement_across_delivery_orders(self, data):
        m, order_a, order_b = data
        replica_a = PredeterminedOrderer(num_instances=m)
        replica_b = PredeterminedOrderer(num_instances=m)
        for i, block in enumerate(order_a):
            replica_a.add_partially_committed(block, now=float(i))
        for i, block in enumerate(order_b):
            replica_b.add_partially_committed(block, now=float(i))
        assert [c.block.block_id for c in replica_a.confirmed] == [
            c.block.block_id for c in replica_b.confirmed
        ]

    @given(block_schedule())
    @settings(max_examples=80, deadline=None)
    def test_confirmed_indices_contiguous(self, schedule):
        m, blocks = schedule
        orderer = PredeterminedOrderer(num_instances=m)
        for i, block in enumerate(blocks):
            orderer.add_partially_committed(block, now=float(i))
        sns = [c.sn for c in orderer.confirmed]
        assert sns == list(range(len(sns)))


# --------------------------------------------------------------------- ranks
class TestChooseRankProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=4, max_size=20),
        st.integers(min_value=4, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_honest_rank_exceeds_every_report(self, ranks, n):
        quorum = quorum_threshold(n)
        if len(ranks) < quorum:
            ranks = ranks + [0] * (quorum - len(ranks))
        reports = [
            RankReport(replica=i, rank=rank, view=0, round=1, instance=0)
            for i, rank in enumerate(ranks)
        ]
        max_rank = max(ranks) + 10
        rank, _ = choose_rank(reports, quorum=quorum, max_rank=max_rank)
        assert rank == max(ranks) + 1

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=6, max_size=30),
        st.integers(min_value=4, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_byzantine_rank_at_least_quorum_order_statistic(self, ranks, n):
        """Sec. 4.4: even the lowest-2f+1 manipulation cannot pick a rank below
        the quorum-th smallest reported rank + 1."""
        quorum = quorum_threshold(n)
        if len(ranks) < quorum:
            ranks = ranks + [0] * (quorum - len(ranks))
        reports = [
            RankReport(replica=i, rank=rank, view=0, round=1, instance=0)
            for i, rank in enumerate(ranks)
        ]
        max_rank = max(ranks) + 10
        byz_rank, _ = choose_rank(
            reports, quorum=quorum, max_rank=max_rank, byzantine_minimize=True
        )
        kth_smallest = sorted(ranks)[quorum - 1]
        assert byz_rank >= kth_smallest + 1

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=4, max_size=10),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_rank_never_exceeds_max_rank(self, ranks, max_rank):
        reports = [
            RankReport(replica=i, rank=rank, view=0, round=1, instance=0)
            for i, rank in enumerate(ranks)
        ]
        rank, _ = choose_rank(reports, quorum=len(ranks), max_rank=max_rank)
        assert rank <= max_rank
