"""Tests for the parallel sweep runner: grid expansion, caching, parallelism."""

import json

import pytest

from repro.bench import experiments
from repro.bench.config import ExperimentCell
from repro.bench.sweep import (
    SweepCache,
    SweepRunner,
    cell_key,
    derive_seed,
    expand_grid,
)


ANALYTICAL = dict(duration=30.0, engine="analytical", seed=0)


class TestExpandGrid:
    def test_nested_loop_order(self):
        cells = expand_grid(
            {"environment": ("wan", "lan"), "n": (8, 16)},
            defaults=dict(protocol="iss-pbft", **ANALYTICAL),
        )
        combos = [(c.environment, c.n) for c in cells]
        assert combos == [("wan", 8), ("wan", 16), ("lan", 8), ("lan", 16)]

    def test_defaults_applied(self):
        cells = expand_grid({"n": (8,)}, defaults=dict(protocol="ladon-pbft", stragglers=2))
        assert cells[0].protocol == "ladon-pbft"
        assert cells[0].stragglers == 2

    def test_axis_overrides_default(self):
        cells = expand_grid({"n": (8,)}, defaults=dict(protocol="iss-pbft", n=4))
        assert cells[0].n == 8


class TestCellKey:
    def test_stable_and_distinct(self):
        a = ExperimentCell(protocol="iss-pbft", n=8, **ANALYTICAL)
        b = ExperimentCell(protocol="iss-pbft", n=8, **ANALYTICAL)
        c = ExperimentCell(protocol="iss-pbft", n=16, **ANALYTICAL)
        assert cell_key(a) == cell_key(b)
        assert cell_key(a) != cell_key(c)

    def test_derive_seed_deterministic(self):
        assert derive_seed(0, "fig5", 3) == derive_seed(0, "fig5", 3)
        assert derive_seed(0, "fig5", 3) != derive_seed(1, "fig5", 3)


class TestSweepCache:
    def test_roundtrip(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cell = ExperimentCell(protocol="iss-pbft", n=8, **ANALYTICAL)
        assert cache.get(cell) is None
        cache.put(cell, {"throughput_tps": 1.5, "n": 8})
        assert cache.get(cell) == {"throughput_tps": 1.5, "n": 8}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        cell = ExperimentCell(protocol="iss-pbft", n=8, **ANALYTICAL)
        cache.put(cell, {"n": 8})
        path = cache._path(cell_key(cell))
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(cell) is None


class TestSweepRunner:
    def _cells(self):
        return expand_grid(
            {"protocol": ("iss-pbft", "ladon-pbft"), "n": (8, 16)},
            defaults=ANALYTICAL,
        )

    def test_sequential_rows_in_cell_order(self):
        cells = self._cells()
        rows = SweepRunner().run(cells)
        assert [(r["protocol"], r["n"]) for r in rows] == [
            (c.protocol, c.n) for c in cells
        ]

    def test_parallel_matches_sequential_byte_identical(self):
        cells = self._cells()
        sequential = SweepRunner().run(cells)
        parallel = SweepRunner(workers=2).run(cells)
        assert json.dumps(parallel, sort_keys=True) == json.dumps(sequential, sort_keys=True)

    def test_cache_hits_reproduce_rows(self, tmp_path):
        cells = self._cells()
        first = SweepRunner(cache_dir=str(tmp_path)).run(cells)
        ticks = []
        second = SweepRunner(cache_dir=str(tmp_path), progress=ticks.append).run(cells)
        assert json.dumps(second) == json.dumps(first)
        assert all(tick.source == "cache" for tick in ticks)
        assert ticks[-1].cached == len(cells)

    def test_duplicate_cells_run_once(self):
        cell = ExperimentCell(protocol="iss-pbft", n=8, **ANALYTICAL)
        ticks = []
        rows = SweepRunner(progress=ticks.append).run([cell, cell, cell])
        assert len(rows) == 3
        assert rows[0] == rows[1] == rows[2]

    def test_duplicate_cell_rows_do_not_alias(self):
        # Callers stamp per-position metadata into rows in place (e.g.
        # table2's proposal_rate); coalesced duplicates must come back as
        # independent dicts, matching what cache hits would return.
        cell = ExperimentCell(protocol="iss-pbft", n=8, **ANALYTICAL)
        rows = SweepRunner().run([cell, cell])
        rows[0]["stamp"] = "first"
        assert "stamp" not in rows[1]

    def test_progress_streams_every_cell(self):
        cells = self._cells()
        ticks = []
        SweepRunner(progress=ticks.append).run(cells)
        assert [t.done for t in ticks] == [1, 2, 3, 4]
        assert all(t.total == len(cells) for t in ticks)


class TestExperimentsOnSweep:
    def test_fig5_parallel_byte_identical_to_sequential(self):
        kwargs = dict(
            replica_counts=(8, 16),
            protocols=("ladon-pbft", "iss-pbft"),
            environments=("wan",),
            straggler_counts=(0, 1),
            duration=60.0,
        )
        sequential = experiments.fig5_scaling(**kwargs)
        parallel = experiments.fig5_scaling(sweep=SweepRunner(workers=2), **kwargs)
        assert json.dumps(parallel, sort_keys=True) == json.dumps(sequential, sort_keys=True)

    @pytest.mark.slow
    def test_fig5_full_grid_parallel_byte_identical(self):
        """Acceptance bar: the full 5x5x2x2 Fig. 5 grid through >=2 workers
        produces byte-identical rows to the sequential path."""
        sequential = experiments.fig5_scaling()
        parallel = experiments.fig5_scaling(sweep=SweepRunner(workers=4))
        assert len(sequential) == 5 * 5 * 2 * 2
        assert json.dumps(parallel, sort_keys=True) == json.dumps(sequential, sort_keys=True)

    def test_fig7_split_preserved(self):
        data = experiments.fig7_byzantine_stragglers(
            straggler_counts=(0, 1), duration=30.0, sweep=SweepRunner()
        )
        assert len(data["honest"]) == 2
        assert len(data["byzantine"]) == 2
        assert all(row["stragglers"] == count for row, count in zip(data["honest"], (0, 1)))

    def test_fig2b_keyed_by_straggler_count(self):
        # Analytical stand-in grid shape check via fig6 (fig2b is DES/slow):
        rows = experiments.fig6_straggler_count(
            straggler_counts=(1, 2), protocols=("ladon-pbft",), duration=30.0
        )
        assert [row["stragglers"] for row in rows] == [1, 2]


class TestInstancesLedBy:
    def test_view_zero_one_instance_per_replica(self):
        assert experiments.instances_led_by(replica=3, num_instances=4, n=4) == [3]

    def test_view_rotation(self):
        # In view 1, instance i's leader is (i + 1) % n: replica 0 leads
        # instance n-1.
        assert experiments.instances_led_by(replica=0, num_instances=4, n=4, view=1) == [3]

    def test_more_instances_than_replicas(self):
        assert experiments.instances_led_by(replica=1, num_instances=8, n=4) == [1, 5]
