"""Checkpointing under adversarial silence.

Unit coverage for :mod:`repro.consensus.checkpoint` plus the end-to-end
story the adversary subsystem enables: suppressed checkpoint messages
stall the epoch (no stable checkpoint → no advancement → leaders that hit
``maxRank`` stop proposing), and the system recovers through the
view-change path, which re-broadcasts checkpoints the way PBFT view-change
messages carry them.
"""

import pytest

from repro.adversary import AdversarySpec, Silence
from repro.consensus.checkpoint import CheckpointManager
from repro.protocols.base import SystemConfig
from repro.protocols.registry import build_system
from repro.sim.faults import FaultConfig


QUORUM = 3  # n=4


def make_manager(replica_id=0):
    return CheckpointManager(replica_id, QUORUM)


class TestCheckpointManager:
    def test_below_quorum_is_not_stable(self):
        manager = make_manager()
        message = manager.build_checkpoint(epoch=0, confirmed_count=10)
        assert not manager.on_checkpoint(message)
        assert not manager.is_stable(0)
        assert manager.votes(0) == 1

    def test_becomes_stable_exactly_once_at_quorum(self):
        manager = make_manager()
        base = manager.build_checkpoint(epoch=0, confirmed_count=10)
        assert not manager.on_checkpoint(base)
        from dataclasses import replace

        assert not manager.on_checkpoint(replace(base, sender=1))
        assert manager.on_checkpoint(replace(base, sender=2))  # True exactly here
        assert manager.is_stable(0)
        # further votes count but never re-trigger stability
        assert not manager.on_checkpoint(replace(base, sender=3))
        assert manager.votes(0) == 4

    def test_votes_are_idempotent_per_sender(self):
        """Re-broadcast checkpoints (the view-change recovery path) must
        not double-count a sender."""
        manager = make_manager()
        message = manager.build_checkpoint(epoch=0, confirmed_count=10)
        manager.on_checkpoint(message)
        manager.on_checkpoint(message)
        assert manager.votes(0) == 1
        assert not manager.is_stable(0)

    def test_epochs_are_tracked_independently(self):
        manager = make_manager()
        manager.on_checkpoint(manager.build_checkpoint(epoch=0, confirmed_count=5))
        assert manager.votes(1) == 0
        assert not manager.is_stable(1)

    def test_state_digest_depends_on_progress(self):
        manager = make_manager()
        a = manager.build_checkpoint(epoch=0, confirmed_count=5)
        b = make_manager().build_checkpoint(epoch=0, confirmed_count=6)
        c = make_manager().build_checkpoint(epoch=0, confirmed_count=5)
        assert a.state_digest != b.state_digest
        assert a.state_digest == c.state_digest


@pytest.mark.scenario
class TestCheckpointQuorumUnderSilence:
    """Epoch checkpoints are suppressed by two adversarial replicas: the
    quorum stalls, proposing wedges at the epoch boundary, and the system
    recovers through view changes once the silence window lifts."""

    SILENCE_UNTIL = 12.0

    @pytest.fixture(scope="class")
    def run(self):
        adversary = AdversarySpec(
            attacks=(
                Silence(
                    replicas=(2, 3), kinds=("checkpoint",), start=0.0, until=self.SILENCE_UNTIL
                ),
            )
        )
        config = SystemConfig(
            protocol="ladon-pbft",
            n=4,
            batch_size=128,
            environment="lan",
            duration=30.0,
            seed=2,
            epoch_length=8,
            propose_timeout=2.0,
            view_change_timeout=4.0,
            faults=FaultConfig(adversary=adversary),
        )
        system = build_system(config)
        return system, system.run()

    def test_epoch_stalls_until_the_silence_lifts(self, run):
        _, result = run
        assert result.epoch_advancements, "the epoch must eventually advance"
        first_advance = result.epoch_advancements[0][0]
        assert first_advance >= self.SILENCE_UNTIL

    def test_recovery_goes_through_view_changes(self, run):
        _, result = run
        first_advance = result.epoch_advancements[0][0]
        assert result.view_change_times, "recovery requires view changes"
        assert result.view_change_times[0][0] < first_advance

    def test_throughput_resumes_after_recovery(self, run):
        _, result = run
        first_advance = result.epoch_advancements[0][0]
        stalled = [
            c for c in result.confirmed if 5.0 <= c.confirmed_at < self.SILENCE_UNTIL
        ]
        resumed = [c for c in result.confirmed if c.confirmed_at >= first_advance]
        assert stalled == []  # wedged at the epoch boundary during the window
        assert len(resumed) > 50  # and running freely afterwards

    def test_honest_replicas_reach_later_epochs(self, run):
        system, result = run
        assert system.replicas[0].current_epoch() >= 2
        assert result.audit.safety_ok
        assert result.audit.live

    def test_checkpoint_quorum_eventually_stable_everywhere(self, run):
        system, _ = run
        for replica in system.replicas.values():
            assert replica.checkpoints.is_stable(0)
