"""CLI self-checks for ``python -m repro.bench scenario``."""

import json

import pytest

from repro.bench.__main__ import main

pytestmark = pytest.mark.scenario


class TestScenarioCLI:
    def test_scenario_list_exits_zero(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("wan-partition", "regional-outage", "flash-crowd",
                     "asymmetric-wan", "lossy-lan", "churn"):
            assert name in out

    def test_experiment_list_mentions_scenario(self, capsys):
        assert main(["list"]) == 0
        assert "scenario" in capsys.readouterr().out

    def test_scenario_run_single(self, capsys, tmp_path):
        json_path = tmp_path / "out.json"
        code = main([
            "scenario", "run", "lossy-lan",
            "--n", "4", "--duration", "6", "--batch-size", "64",
            "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lossy-lan" in out
        payload = json.loads(json_path.read_text())
        assert payload["scenario"] == "lossy-lan"
        assert payload["metrics"]["confirmed_blocks"] > 0

    def test_scenario_run_unknown_name_raises(self):
        with pytest.raises(KeyError):
            main(["scenario", "run", "no-such-scenario"])

    @pytest.mark.slow
    def test_every_named_scenario_runs_via_cli(self, capsys):
        from repro.scenario import available_scenarios

        for name in available_scenarios():
            assert main([
                "scenario", "run", name,
                "--n", "4", "--duration", "10", "--batch-size", "64",
            ]) == 0
        assert "confirmed_blocks" in capsys.readouterr().out

    def test_scenario_sweep_small_grid(self, capsys, tmp_path):
        code = main([
            "scenario", "sweep",
            "--scenarios", "lan,lossy-lan", "--protocols", "ladon-pbft",
            "--n", "4", "--duration", "6", "--batch-size", "64",
            "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lossy-lan" in out and "lan" in out
