"""Tests for the K-private-key rank encoding (Ladon-opt, Sec. 5.3)."""

import pytest

from repro.crypto.multikey import MultiKeyStore


@pytest.fixture
def store():
    return MultiKeyStore(n=4, key_count=8)


class TestMultiKeyStore:
    def test_key_count(self, store):
        assert store.key_count == 8
        assert store.multikey(0).key_count == 8

    def test_rejects_zero_keys(self):
        with pytest.raises(ValueError):
            MultiKeyStore(n=4, key_count=0)

    def test_sign_and_verify_rank(self, store):
        encoded = store.sign_rank(1, 10, 13, "rank", 0, 5)
        assert encoded.key_index == 3
        assert not encoded.clamped
        assert store.verify_rank(encoded, *("rank", 0, 5))

    def test_decoded_rank_round_trips(self, store):
        encoded = store.sign_rank(2, 20, 25, "m")
        assert encoded.decoded_rank(20) == 25

    def test_difference_clamped_to_last_key(self, store):
        encoded = store.sign_rank(0, 0, 100, "m")
        assert encoded.key_index == 7
        assert encoded.clamped

    def test_reported_below_base_rejected(self, store):
        with pytest.raises(ValueError):
            store.sign_rank(0, 10, 9, "m")

    def test_verify_fails_for_wrong_payload(self, store):
        encoded = store.sign_rank(1, 0, 2, "m", 1)
        assert not store.verify_rank(encoded, *("m", 2))

    def test_verify_fails_for_wrong_key_index(self, store):
        # Signing with key k must not verify under key k' != k: the rank
        # difference cannot be forged by relabelling.
        encoded = store.sign_rank(1, 0, 2, "m")
        tampered = type(encoded)(
            signer=encoded.signer,
            key_index=encoded.key_index + 1,
            clamped=False,
            signature=encoded.signature,
        )
        assert not store.verify_rank(tampered, *("m",))


class TestRankAggregate:
    def test_aggregate_same_message_different_ranks(self, store):
        payload = ("rank", 0, 7)
        encoded = [
            store.sign_rank(r, 7, 7 + r, *payload) for r in range(4)
        ]
        agg = store.aggregate_rank_signatures(encoded)
        assert set(agg.signers) == {0, 1, 2, 3}
        assert agg.max_key_index() == 3
        assert store.verify_rank_aggregate(agg, {r: payload for r in range(4)})

    def test_decoded_ranks(self, store):
        payload = ("rank",)
        encoded = [
            store.sign_rank(r, 5, 5 + 2 * r, *payload) for r in range(3)
        ]
        agg = store.aggregate_rank_signatures(encoded)
        assert agg.decoded_ranks(5) == {0: 5, 1: 7, 2: 9}

    def test_aggregate_rejects_empty(self, store):
        with pytest.raises(ValueError):
            store.aggregate_rank_signatures([])

    def test_verify_rejects_signer_set_mismatch(self, store):
        payload = ("rank",)
        encoded = [store.sign_rank(r, 0, r, *payload) for r in range(3)]
        agg = store.aggregate_rank_signatures(encoded)
        assert not store.verify_rank_aggregate(agg, {0: payload, 1: payload})

    def test_aggregate_size_small(self, store):
        payload = ("rank",)
        encoded = [store.sign_rank(r, 0, r, *payload) for r in range(4)]
        agg = store.aggregate_rank_signatures(encoded)
        # One point plus a key-index byte per signer: far below 4 full reports.
        assert agg.size_bytes <= 96 + 4
