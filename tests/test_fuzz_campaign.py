"""End-to-end fuzz campaigns (``pytest -m fuzz``).

The acceptance demo for the fuzzer: a historical bug (the wedged proposal
cursor after a view change, reintroduced behind the ``wedged-view-cursor``
compat flag) must be *found* by a bounded campaign, *shrunk* to a small
decision vector, and the resulting artifact must *replay* bit-exactly —
while the same campaign against the faithful protocol stays clean.
"""

import pytest

from repro.fuzz.artifact import is_violation
from repro.fuzz.campaign import (
    FuzzConfig,
    cell_breaks_safety,
    cell_violates,
    predicate_for,
    run_campaign,
)
from repro.fuzz.replay import replay_artifact

pytestmark = pytest.mark.fuzz


def test_predicate_for_preserves_the_violation_class():
    # A liveness finding shrinks under "any violation" ...
    assert predicate_for({"safety_ok": True}) is cell_violates
    # ... but a safety finding must not be allowed to degrade into a stall.
    assert predicate_for({"safety_ok": False}) is cell_breaks_safety


def test_campaign_finds_shrinks_and_replays_the_wedged_cursor_bug():
    config = FuzzConfig(seeds=4, compat_flags=("wedged-view-cursor",))
    report = run_campaign(config, shrink_max_tests=24, batch=2)
    assert report.findings, (
        f"campaign missed the reintroduced bug in {report.seeds_run} seeds"
    )
    finding = report.findings[0]
    assert "stalled" in finding.artifact["expected"]["violation_kinds"]
    # Shrinking happened and stayed within budget.
    assert finding.shrink_result is not None
    assert finding.shrink_result.tests <= 24
    nonzero = finding.shrink_result.nonzero_decisions
    assert 0 < nonzero <= 20, f"shrunk repro still carries {nonzero} decisions"
    # The serialized artifact replays bit-exactly and still violates.
    replay = replay_artifact(finding.artifact)
    assert replay.ok, replay.summary()
    assert is_violation(replay.outcome)


def test_campaign_on_the_faithful_protocol_stays_clean():
    """Negative control on the identical schedule distribution: the only
    delta to the finding campaign is the compat flag, so a violation here
    would implicate the fuzzer (or the protocol), not the planted bug."""
    config = FuzzConfig(seeds=4)
    report = run_campaign(config, do_shrink=False, batch=2)
    assert report.ok, [f.row for f in report.findings]
    assert report.seeds_run == 4


def test_should_stop_bounds_the_campaign():
    calls = []

    def stop_after_first_batch():
        calls.append(1)
        return len(calls) > 1

    config = FuzzConfig(seeds=8, compat_flags=("wedged-view-cursor",))
    report = run_campaign(
        config,
        should_stop=stop_after_first_batch,
        stop_on_violation=False,
        do_shrink=False,
        batch=2,
    )
    assert report.stopped_early
    assert report.seeds_run < 8
