"""Analytical straggler impact model (paper Sec. 2.1, Fig. 2a).

Setting: ``m`` instances, one straggling instance producing a block every
``k`` rounds, the other ``m - 1`` producing one block per round.

* blocks partially committed per round:  ``R = 1/k + m - 1``
* blocks globally confirmed per round (pre-determined ordering): ``R' = m/k``

so the backlog of partially committed but unconfirmed blocks grows by
``R - R'`` per round and the waiting time of the newest blocks grows linearly
with time.  With Ladon's dynamic ordering the confirmed rate matches the
partially committed rate up to a bounded lag of at most one straggler period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class StragglerModelConfig:
    """Parameters of the analytical model."""

    num_instances: int = 16
    straggler_period: int = 10  # the k of the paper
    rounds: int = 100
    round_duration: float = 1.0  # seconds per round, for the delay axis

    def __post_init__(self) -> None:
        if self.num_instances < 2:
            raise ValueError("the model needs at least two instances")
        if self.straggler_period < 1:
            raise ValueError("k must be >= 1")
        if self.rounds < 1:
            raise ValueError("need at least one round")

    @property
    def partially_committed_per_round(self) -> float:
        """R = 1/k + m - 1."""
        return 1.0 / self.straggler_period + (self.num_instances - 1)

    @property
    def confirmed_per_round_predetermined(self) -> float:
        """R' = m/k under pre-determined ordering."""
        return self.num_instances / self.straggler_period


@dataclass(frozen=True)
class StragglerModelResult:
    """Per-round series produced by the model."""

    rounds: List[int]
    queued_blocks: List[float]
    ordering_delay: List[float]

    def final_backlog(self) -> float:
        return self.queued_blocks[-1] if self.queued_blocks else 0.0

    def final_delay(self) -> float:
        return self.ordering_delay[-1] if self.ordering_delay else 0.0


def predetermined_ordering_backlog(config: StragglerModelConfig) -> StragglerModelResult:
    """Backlog/delay growth under pre-determined global ordering (Fig. 2a).

    The backlog after ``t`` rounds is ``(R - R') * t`` and the waiting time of
    a block entering the queue at round ``t`` is ``backlog / R'`` rounds.
    """
    produced = config.partially_committed_per_round
    confirmed = config.confirmed_per_round_predetermined
    growth = max(0.0, produced - confirmed)
    rounds = list(range(1, config.rounds + 1))
    queued = [growth * t for t in rounds]
    delay = [
        (q / confirmed) * config.round_duration if confirmed > 0 else float("inf")
        for q in queued
    ]
    return StragglerModelResult(rounds=rounds, queued_blocks=queued, ordering_delay=delay)


def dynamic_ordering_backlog(config: StragglerModelConfig) -> StragglerModelResult:
    """Backlog/delay under Ladon's dynamic ordering: bounded by one straggler period.

    Between two straggler commits, up to ``(m - 1) * k`` blocks from the fast
    instances accumulate; every straggler commit raises the confirmation bar
    past them, so the backlog oscillates within one period instead of growing.
    """
    per_round_fast = config.num_instances - 1
    rounds = list(range(1, config.rounds + 1))
    queued = []
    delay = []
    for t in rounds:
        phase = t % config.straggler_period
        backlog = per_round_fast * phase
        queued.append(float(backlog))
        delay.append(phase * config.round_duration / 2.0)
    return StragglerModelResult(rounds=rounds, queued_blocks=queued, ordering_delay=delay)


def throughput_ratio(config: StragglerModelConfig) -> float:
    """Confirmed throughput under pre-determined ordering relative to the ideal.

    The paper states the system throughput drops to about ``1/k`` of the
    ideal; precisely, the confirmed rate is ``m/k`` against an ideal of ``m``.
    """
    return config.confirmed_per_round_predetermined / config.num_instances
