"""Analytical models from the paper.

* :mod:`repro.analysis.straggler_model` — the back-pressure analysis of
  Sec. 2.1 behind Fig. 2a (queued partially committed blocks and global
  ordering delay grow without bound under pre-determined ordering).
* :mod:`repro.analysis.complexity` — the message and authenticator complexity
  analysis of Appendix A comparing PBFT, Ladon-PBFT and Ladon-opt.
"""

from repro.analysis.straggler_model import (
    StragglerModelConfig,
    StragglerModelResult,
    predetermined_ordering_backlog,
    dynamic_ordering_backlog,
    throughput_ratio,
)
from repro.analysis.complexity import (
    ComplexityProfile,
    pbft_complexity,
    ladon_pbft_complexity,
    ladon_opt_complexity,
    compare_protocol_complexity,
)

__all__ = [
    "StragglerModelConfig",
    "StragglerModelResult",
    "predetermined_ordering_backlog",
    "dynamic_ordering_backlog",
    "throughput_ratio",
    "ComplexityProfile",
    "pbft_complexity",
    "ladon_pbft_complexity",
    "ladon_opt_complexity",
    "compare_protocol_complexity",
]
