"""Message and authenticator complexity (paper Appendix A).

For one consensus round with ``n`` replicas:

============  ===============  ==========  ==========  ======================
phase         PBFT             Ladon-PBFT  Ladon-opt   notes
============  ===============  ==========  ==========  ======================
pre-prepare   O(n)             O(n^2)      O(n)        Ladon-PBFT ships 2f+1
                                                       rank reports to n
                                                       backups; Ladon-opt
                                                       ships one aggregate
prepare       O(n^2)           O(n^2)      O(n^2)
commit        O(n^2)           O(n^2 + n)  O(n^2 + n)  rank messages add an
                                                       all-to-one O(n)
============  ===============  ==========  ==========  ======================

Authenticator complexity per backup in the pre-prepare phase: O(1) for PBFT,
O(n) for Ladon-PBFT (verify each rank report), O(1) for Ladon-opt (verify one
aggregate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.aggregate import quorum_threshold


@dataclass(frozen=True)
class ComplexityProfile:
    """Concrete per-round message/authenticator counts for a given ``n``."""

    protocol: str
    n: int
    pre_prepare_messages: int
    prepare_messages: int
    commit_messages: int
    rank_messages: int
    pre_prepare_units: int  # total rank-information units carried in pre-prepares
    backup_verifications_pre_prepare: int  # signature checks per backup

    @property
    def total_messages(self) -> int:
        return (
            self.pre_prepare_messages
            + self.prepare_messages
            + self.commit_messages
            + self.rank_messages
        )


def pbft_complexity(n: int) -> ComplexityProfile:
    """Vanilla PBFT: O(n) pre-prepare, O(n^2) prepare/commit."""
    return ComplexityProfile(
        protocol="pbft",
        n=n,
        pre_prepare_messages=n - 1,
        prepare_messages=(n - 1) * (n - 1),
        commit_messages=(n - 1) * (n - 1),
        rank_messages=0,
        pre_prepare_units=n - 1,
        backup_verifications_pre_prepare=1,
    )


def ladon_pbft_complexity(n: int) -> ComplexityProfile:
    """Ladon-PBFT: the pre-prepare carries 2f+1 rank reports to every backup."""
    quorum = quorum_threshold(n)
    return ComplexityProfile(
        protocol="ladon-pbft",
        n=n,
        pre_prepare_messages=n - 1,
        prepare_messages=(n - 1) * (n - 1),
        commit_messages=(n - 1) * (n - 1),
        rank_messages=n - 1,
        pre_prepare_units=(n - 1) * quorum,
        backup_verifications_pre_prepare=quorum,
    )


def ladon_opt_complexity(n: int) -> ComplexityProfile:
    """Ladon-opt: the rank report set collapses into one aggregate signature."""
    return ComplexityProfile(
        protocol="ladon-opt",
        n=n,
        pre_prepare_messages=n - 1,
        prepare_messages=(n - 1) * (n - 1),
        commit_messages=(n - 1) * (n - 1),
        rank_messages=n - 1,
        pre_prepare_units=n - 1,
        backup_verifications_pre_prepare=1,
    )


def compare_protocol_complexity(n: int) -> Dict[str, ComplexityProfile]:
    """All three profiles, keyed by protocol name."""
    return {
        "pbft": pbft_complexity(n),
        "ladon-pbft": ladon_pbft_complexity(n),
        "ladon-opt": ladon_opt_complexity(n),
    }
