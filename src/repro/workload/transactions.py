"""Transaction model.

Transactions carry a 500-byte payload, the average Bitcoin transaction size
used throughout the paper's evaluation (Sec. 6.1).  Payload contents are not
interpreted by the protocols; only the size and identity matter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional


DEFAULT_PAYLOAD_BYTES = 500


@dataclass(frozen=True, slots=True)
class Transaction:
    """A client transaction submitted to the Multi-BFT system."""

    tx_id: int
    client_id: int
    submitted_at: float
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError("payload must be positive")

    @property
    def size_bytes(self) -> int:
        return self.payload_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"tx#{self.tx_id}(client={self.client_id})"


@dataclass(frozen=True, slots=True)
class Batch:
    """A batch of transactions cut by a leader.

    Two representations are supported:

    * **materialised** — ``txs`` holds the actual :class:`Transaction`
      objects (used by correctness tests, the causality experiments and the
      examples);
    * **synthetic** — ``synthetic_count`` says how many transactions the
      batch stands for without materialising them (used by the saturated
      peak-throughput runs, where per-transaction identity is irrelevant and
      allocating millions of objects would dominate the simulation).

    ``submitted_at`` is the representative submission time used for latency
    accounting when the batch is synthetic.
    """

    txs: tuple = ()
    synthetic_count: int = 0
    submitted_at: float = 0.0
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES

    def __post_init__(self) -> None:
        if self.synthetic_count < 0:
            raise ValueError("synthetic_count must be non-negative")
        if self.txs and self.synthetic_count:
            raise ValueError("a batch is either materialised or synthetic, not both")

    @property
    def tx_count(self) -> int:
        return len(self.txs) if self.txs else self.synthetic_count

    @property
    def size_bytes(self) -> int:
        if self.txs:
            # Opaque payloads (e.g. DQBFT's block references) default to a
            # small fixed wire size.
            return sum(getattr(tx, "size_bytes", 64) for tx in self.txs)
        return self.synthetic_count * self.payload_bytes

    def mean_submitted_at(self) -> float:
        """Average submission time of the batch's transactions."""
        if self.txs:
            times = [getattr(tx, "submitted_at", None) for tx in self.txs]
            known = [t for t in times if t is not None]
            if known:
                return sum(known) / len(known)
        return self.submitted_at

    @classmethod
    def from_txs(cls, txs) -> "Batch":
        return cls(txs=tuple(txs))

    @classmethod
    def synthetic(cls, count: int, submitted_at: float, payload_bytes: int = DEFAULT_PAYLOAD_BYTES) -> "Batch":
        return cls(synthetic_count=count, submitted_at=submitted_at, payload_bytes=payload_bytes)

    @classmethod
    def empty(cls) -> "Batch":
        return cls()


class TransactionFactory:
    """Mints transactions with globally unique, monotonically increasing ids."""

    def __init__(self, payload_bytes: int = DEFAULT_PAYLOAD_BYTES) -> None:
        self.payload_bytes = payload_bytes
        self._counter = itertools.count()

    def create(self, client_id: int, submitted_at: float) -> Transaction:
        return Transaction(
            tx_id=next(self._counter),
            client_id=client_id,
            submitted_at=submitted_at,
            payload_bytes=self.payload_bytes,
        )

    def create_batch(self, client_id: int, submitted_at: float, count: int) -> tuple:
        return tuple(self.create(client_id, submitted_at) for _ in range(count))
