"""Workload substrate: transactions, clients, and arrival processes."""

from repro.workload.transactions import Transaction, TransactionFactory, Batch
from repro.workload.clients import ClientPool, ClientStats
from repro.workload.generator import (
    WorkloadConfig,
    OpenLoopGenerator,
    generate_transactions,
)

__all__ = [
    "Transaction",
    "TransactionFactory",
    "Batch",
    "ClientPool",
    "ClientStats",
    "WorkloadConfig",
    "OpenLoopGenerator",
    "generate_transactions",
]
