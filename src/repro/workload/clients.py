"""Client-side bookkeeping.

The paper measures end-to-end latency from transaction submission until the
client receives f+1 matching replies.  In the simulator every honest replica
delivers globally confirmed blocks, so the f+1-th reply a client receives for
a transaction arrives at (approximately) the confirmation time at the
(f+1)-th fastest replica; we track confirmation at the observing replica and
add the reply's network delay when a latency model is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.workload.transactions import Transaction


@dataclass
class ClientStats:
    """Aggregate client-observed statistics."""

    submitted: int = 0
    confirmed: int = 0
    latencies: List[float] = field(default_factory=list)

    def record_submission(self, count: int = 1) -> None:
        self.submitted += count

    def record_confirmation(self, latency: float) -> None:
        self.confirmed += 1
        self.latencies.append(latency)

    @property
    def average_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile_latency(self, percentile: float) -> float:
        if not self.latencies:
            return 0.0
        if not 0 <= percentile <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(round((percentile / 100.0) * (len(ordered) - 1))))
        return ordered[index]


class ClientPool:
    """Tracks per-transaction submission times and confirmations."""

    def __init__(self, reply_delay: float = 0.0) -> None:
        self.reply_delay = reply_delay
        self.stats = ClientStats()
        self._submission_time: Dict[int, float] = {}
        self._confirmed: set = set()

    def submit(self, tx: Transaction) -> None:
        self._submission_time[tx.tx_id] = tx.submitted_at
        self.stats.record_submission()

    def submit_many(self, txs) -> None:
        for tx in txs:
            self.submit(tx)

    def confirm(self, tx: Transaction, confirmed_at: float) -> Optional[float]:
        """Record the confirmation of ``tx``; returns its end-to-end latency."""
        if tx.tx_id in self._confirmed:
            return None
        submitted = self._submission_time.get(tx.tx_id)
        if submitted is None:
            return None
        self._confirmed.add(tx.tx_id)
        latency = (confirmed_at + self.reply_delay) - submitted
        self.stats.record_confirmation(latency)
        return latency

    @property
    def outstanding(self) -> int:
        return self.stats.submitted - self.stats.confirmed
