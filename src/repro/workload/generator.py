"""Workload generation.

The evaluation drives the system with an open-loop workload sized to keep
every leader's buckets saturated (peak-throughput measurement).  The
generator pre-computes the transactions each instance can draw from, so the
simulation hot path never blocks on workload generation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.workload.transactions import Transaction, TransactionFactory, DEFAULT_PAYLOAD_BYTES


@dataclass(frozen=True)
class WorkloadConfig:
    """Open-loop workload parameters."""

    num_clients: int = 64
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    arrival_rate_tps: float = 100_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("need at least one client")
        if self.arrival_rate_tps <= 0:
            raise ValueError("arrival rate must be positive")


def generate_transactions(
    config: WorkloadConfig, duration: float, factory: TransactionFactory = None
) -> List[Transaction]:
    """Generate the full open-loop arrival sequence for ``duration`` seconds.

    Arrivals are spread uniformly over the duration at ``arrival_rate_tps``
    and assigned to clients round-robin; determinism comes from the seed only
    through client jitter, keeping runs reproducible.
    """
    factory = factory or TransactionFactory(payload_bytes=config.payload_bytes)
    rng = random.Random(config.seed)
    total = int(config.arrival_rate_tps * duration)
    txs: List[Transaction] = []
    for i in range(total):
        submitted_at = (i / config.arrival_rate_tps) + rng.random() * 1e-6
        client = i % config.num_clients
        txs.append(factory.create(client, submitted_at))
    return txs


class OpenLoopGenerator:
    """Streams transactions in submission order without materialising them all.

    Used by the discrete-event systems to pull the transactions that have
    arrived by a given virtual time.
    """

    def __init__(self, config: WorkloadConfig, factory: TransactionFactory = None) -> None:
        self.config = config
        self.factory = factory or TransactionFactory(payload_bytes=config.payload_bytes)
        self._rng = random.Random(config.seed)
        self._next_index = 0

    def transactions_until(self, time: float) -> List[Transaction]:
        """Return all transactions that arrive up to virtual ``time``."""
        txs: List[Transaction] = []
        rate = self.config.arrival_rate_tps
        while (self._next_index / rate) <= time:
            submitted_at = self._next_index / rate
            client = self._next_index % self.config.num_clients
            txs.append(self.factory.create(client, submitted_at))
            self._next_index += 1
        return txs

    @property
    def generated_count(self) -> int:
        return self._next_index
