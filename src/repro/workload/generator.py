"""Workload generation: arrival-rate profiles and streaming generators.

The paper's evaluation drives the system with a saturated open-loop workload
(peak-throughput measurement).  The scenario engine generalises this to
time-varying **traffic profiles** — uniform, bursty, ramp, diurnal — plus
Zipf-skewed distribution of load across clients and consensus instances.

Profiles are deterministic closed forms: ``cumulative(t)`` returns the
expected number of arrivals in ``[0, t]`` without iterating per transaction,
so the simulation hot path (a leader cutting a batch) costs O(1) per cut
regardless of rate.  Transactions are only materialised by the explicit
generators used in correctness tests and the causality experiments.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.workload.transactions import Transaction, TransactionFactory, DEFAULT_PAYLOAD_BYTES


# -------------------------------------------------------------- profiles
class TrafficProfile:
    """Deterministic arrival-rate profile.

    ``rate_at(t)`` is the instantaneous arrival rate (tx/s); ``cumulative(t)``
    its exact integral over ``[0, t]``.  Subclasses are frozen dataclasses so
    profiles hash/compare/serialise cleanly inside scenario specs and sweep
    cache keys.
    """

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def cumulative(self, t: float) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class SaturatedTraffic(TrafficProfile):
    """The paper's setting: enough load that every batch cut is full."""

    def rate_at(self, t: float) -> float:
        return math.inf

    def cumulative(self, t: float) -> float:
        return math.inf

    def describe(self) -> str:
        return "saturated"


@dataclass(frozen=True)
class UniformTraffic(TrafficProfile):
    """Constant arrival rate."""

    rate_tps: float = 100_000.0

    def __post_init__(self) -> None:
        if self.rate_tps <= 0:
            raise ValueError("arrival rate must be positive")

    def rate_at(self, t: float) -> float:
        return self.rate_tps

    def cumulative(self, t: float) -> float:
        return self.rate_tps * max(0.0, t)

    def describe(self) -> str:
        return f"uniform({self.rate_tps:g} tps)"


@dataclass(frozen=True)
class BurstyTraffic(TrafficProfile):
    """Square-wave bursts: ``burst_tps`` during the first ``burst_fraction``
    of every ``period`` seconds, ``base_tps`` otherwise (flash crowds)."""

    base_tps: float = 10_000.0
    burst_tps: float = 200_000.0
    period: float = 10.0
    burst_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.base_tps < 0 or self.burst_tps <= 0:
            raise ValueError("rates must be positive")
        if self.period <= 0 or not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("need period > 0 and burst_fraction in (0, 1)")

    def rate_at(self, t: float) -> float:
        phase = (t % self.period) / self.period
        return self.burst_tps if phase < self.burst_fraction else self.base_tps

    def cumulative(self, t: float) -> float:
        if t <= 0:
            return 0.0
        burst_len = self.period * self.burst_fraction
        per_period = self.burst_tps * burst_len + self.base_tps * (self.period - burst_len)
        full, rest = divmod(t, self.period)
        partial = self.burst_tps * min(rest, burst_len) + self.base_tps * max(0.0, rest - burst_len)
        return full * per_period + partial

    def describe(self) -> str:
        return f"bursty({self.base_tps:g}->{self.burst_tps:g} tps, period {self.period:g}s)"


@dataclass(frozen=True)
class RampTraffic(TrafficProfile):
    """Linear ramp from ``start_tps`` to ``end_tps`` over ``ramp_duration``
    seconds, holding ``end_tps`` afterwards (load ramps, flash onset)."""

    start_tps: float = 1_000.0
    end_tps: float = 100_000.0
    ramp_duration: float = 20.0

    def __post_init__(self) -> None:
        if self.start_tps < 0 or self.end_tps < 0:
            raise ValueError("rates must be non-negative")
        if self.ramp_duration <= 0:
            raise ValueError("ramp duration must be positive")

    def rate_at(self, t: float) -> float:
        if t >= self.ramp_duration:
            return self.end_tps
        frac = max(0.0, t) / self.ramp_duration
        return self.start_tps + (self.end_tps - self.start_tps) * frac

    def cumulative(self, t: float) -> float:
        if t <= 0:
            return 0.0
        ramp_t = min(t, self.ramp_duration)
        ramp_area = ramp_t * (self.rate_at(0.0) + self.rate_at(ramp_t)) / 2.0
        hold_area = max(0.0, t - self.ramp_duration) * self.end_tps
        return ramp_area + hold_area

    def describe(self) -> str:
        return f"ramp({self.start_tps:g}->{self.end_tps:g} tps over {self.ramp_duration:g}s)"


@dataclass(frozen=True)
class DiurnalTraffic(TrafficProfile):
    """Sinusoidal day/night cycle around ``mean_tps``."""

    mean_tps: float = 50_000.0
    amplitude: float = 0.8  # peak deviation as a fraction of the mean
    period: float = 60.0    # one "day" in virtual seconds

    def __post_init__(self) -> None:
        if self.mean_tps <= 0 or self.period <= 0:
            raise ValueError("mean rate and period must be positive")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must be in [0, 1]")

    def rate_at(self, t: float) -> float:
        omega = 2.0 * math.pi / self.period
        return self.mean_tps * (1.0 + self.amplitude * math.sin(omega * t))

    def cumulative(self, t: float) -> float:
        if t <= 0:
            return 0.0
        omega = 2.0 * math.pi / self.period
        return self.mean_tps * (t + self.amplitude / omega * (1.0 - math.cos(omega * t)))

    def describe(self) -> str:
        return f"diurnal({self.mean_tps:g} tps +/-{self.amplitude:.0%}, period {self.period:g}s)"


def zipf_weights(k: int, s: float) -> Tuple[float, ...]:
    """Normalised Zipf weights ``w_i ~ 1/(i+1)^s`` for ``k`` entries.

    ``s = 0`` degenerates to uniform; larger ``s`` skews load towards the
    first entries (hot instances / hot clients).
    """
    if k <= 0:
        raise ValueError("need at least one entry")
    if s < 0:
        raise ValueError("zipf exponent must be non-negative")
    raw = [1.0 / (i + 1) ** s for i in range(k)]
    total = sum(raw)
    return tuple(w / total for w in raw)


# ---------------------------------------------------------------- stream
class TrafficStream:
    """Streams a profile's arrivals to consensus instances without
    materialising transactions.

    The aggregate arrival process is split across ``num_instances`` by
    ``weights`` (e.g. :func:`zipf_weights` for skewed load).  A leader cutting
    a batch calls :meth:`take`, which returns how many transactions arrived
    for that instance since its last cut (capped at the batch size) together
    with their representative submission time.  State is O(instances); cost
    per cut is O(1).

    ``submit_delay`` models per-region client placement: entry ``i`` is the
    mean client-to-leader propagation delay for instance ``i``, shifting the
    effective submission time of its transactions into the past.
    """

    def __init__(
        self,
        profile: TrafficProfile,
        num_instances: int,
        weights: Optional[Sequence[float]] = None,
        submit_delay: Optional[Sequence[float]] = None,
    ) -> None:
        if num_instances <= 0:
            raise ValueError("need at least one instance")
        if weights is not None and len(weights) != num_instances:
            raise ValueError("weights must have one entry per instance")
        if submit_delay is not None and len(submit_delay) != num_instances:
            raise ValueError("submit_delay must have one entry per instance")
        self.profile = profile
        self.num_instances = num_instances
        self.weights: Tuple[float, ...] = (
            tuple(weights) if weights is not None
            else tuple(1.0 / num_instances for _ in range(num_instances))
        )
        self.submit_delay: Tuple[float, ...] = (
            tuple(submit_delay) if submit_delay is not None
            else tuple(0.0 for _ in range(num_instances))
        )
        self._consumed: List[float] = [0.0] * num_instances
        self._last_cut: List[float] = [0.0] * num_instances
        self.total_taken = 0

    @property
    def saturated(self) -> bool:
        return isinstance(self.profile, SaturatedTraffic)

    def take(self, instance_id: int, now: float, cap: int) -> Tuple[int, float]:
        """Draw up to ``cap`` transactions for ``instance_id`` at time ``now``.

        Returns ``(count, mean_submitted_at)``.  The submission time
        approximates the batch's arrivals as uniform over the interval since
        the instance's previous cut, minus the client-to-leader delay.
        """
        last = self._last_cut[instance_id]
        if self.saturated:
            count = cap
        else:
            available = (
                self.profile.cumulative(now) * self.weights[instance_id]
                - self._consumed[instance_id]
            )
            count = min(cap, int(available))
            if count > 0:
                self._consumed[instance_id] += count
        self._last_cut[instance_id] = now
        if count <= 0:
            return 0, now
        self.total_taken += count
        mean_at = (last + now) / 2.0 - self.submit_delay[instance_id]
        return count, max(0.0, mean_at)


# ----------------------------------------------------- explicit generators
@dataclass(frozen=True)
class WorkloadConfig:
    """Open-loop workload parameters."""

    num_clients: int = 64
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    arrival_rate_tps: float = 100_000.0
    seed: int = 0
    zipf_s: float = 0.0  # client-selection skew (0 = round-robin)

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("need at least one client")
        if self.arrival_rate_tps <= 0:
            raise ValueError("arrival rate must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf exponent must be non-negative")


def generate_transactions(
    config: WorkloadConfig, duration: float, factory: TransactionFactory = None
) -> List[Transaction]:
    """Generate the full open-loop arrival sequence for ``duration`` seconds.

    Arrivals are spread uniformly over the duration at ``arrival_rate_tps``
    and assigned to clients round-robin; determinism comes from the seed only
    through client jitter, keeping runs reproducible.
    """
    factory = factory or TransactionFactory(payload_bytes=config.payload_bytes)
    rng = random.Random(config.seed)
    total = int(config.arrival_rate_tps * duration)
    txs: List[Transaction] = []
    for i in range(total):
        submitted_at = (i / config.arrival_rate_tps) + rng.random() * 1e-6
        client = i % config.num_clients
        txs.append(factory.create(client, submitted_at))
    return txs


class OpenLoopGenerator:
    """Streams transactions in submission order without materialising them all.

    Used by the discrete-event systems to pull the transactions that have
    arrived by a given virtual time.  With the default uniform profile and
    ``zipf_s == 0`` this reproduces the historical behaviour exactly; a
    time-varying :class:`TrafficProfile` and/or a Zipf client skew can be
    supplied for scenario workloads.
    """

    def __init__(
        self,
        config: WorkloadConfig,
        factory: TransactionFactory = None,
        profile: Optional[TrafficProfile] = None,
    ) -> None:
        self.config = config
        self.factory = factory or TransactionFactory(payload_bytes=config.payload_bytes)
        self.profile = profile
        self._rng = random.Random(config.seed)
        self._next_index = 0
        self._cursor_time = 0.0
        self._client_cdf: Optional[List[float]] = None
        if config.zipf_s > 0:
            weights = zipf_weights(config.num_clients, config.zipf_s)
            cdf: List[float] = []
            acc = 0.0
            for w in weights:
                acc += w
                cdf.append(acc)
            self._client_cdf = cdf

    def _pick_client(self, index: int) -> int:
        if self._client_cdf is None:
            return index % self.config.num_clients
        return bisect.bisect_left(self._client_cdf, self._rng.random())

    def transactions_until(self, time: float) -> List[Transaction]:
        """Return all transactions that arrive up to virtual ``time``."""
        txs: List[Transaction] = []
        if self.profile is None:
            rate = self.config.arrival_rate_tps
            while (self._next_index / rate) <= time:
                submitted_at = self._next_index / rate
                client = self._pick_client(self._next_index)
                txs.append(self.factory.create(client, submitted_at))
                self._next_index += 1
        else:
            target = int(self.profile.cumulative(time))
            pending = target - self._next_index
            if pending > 0:
                # Spread the new arrivals uniformly over the advanced window —
                # exact counts, approximate intra-window placement.
                start = self._cursor_time
                step = (time - start) / pending if pending else 0.0
                for k in range(pending):
                    submitted_at = start + step * (k + 0.5)
                    client = self._pick_client(self._next_index)
                    txs.append(self.factory.create(client, submitted_at))
                    self._next_index += 1
        self._cursor_time = max(self._cursor_time, time)
        return txs

    @property
    def generated_count(self) -> int:
        return self._next_index
