"""Event queue primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled event.

    Events are ordered by ``(time, seq)`` so that two events scheduled for
    the same instant fire in scheduling order, keeping runs deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        event = Event(time=time, seq=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest live event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
