"""Event queue primitives for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled event.

    Events are ordered by ``(time, seq)`` so that two events scheduled for
    the same instant fire in scheduling order, keeping runs deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: set by the queue when the event is handed to the simulator; a late
    #: ``cancel()`` on a popped event must not touch the live-event count
    popped: bool = field(compare=False, default=False)
    #: whether the event still counts toward the owning queue's live total;
    #: cleared exactly once, whichever happens first: queue-level cancel,
    #: delivery, or lazy discard of a directly-cancelled event
    live: bool = field(compare=False, default=True)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        event = Event(time=time, seq=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def _forget(self, event: Event) -> None:
        """Remove ``event`` from the live count exactly once.

        Events can leave the live set three ways — queue-level cancel,
        delivery via ``pop``, or lazy discard after a *direct*
        ``Event.cancel()`` (timers cancel their events without going through
        the queue) — and the ``live`` flag guarantees each is counted once.
        """
        if event.live:
            event.live = False
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            self._forget(event)
            if event.cancelled:
                continue
            event.popped = True
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest live event without popping."""
        while self._heap and self._heap[0].cancelled:
            self._forget(heapq.heappop(self._heap))
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        if event.popped or event.cancelled:
            return  # already delivered (or already cancelled): nothing is live
        event.cancel()
        self._forget(event)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
