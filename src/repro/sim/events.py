"""Event queue primitives for the discrete-event simulator.

The queue is the hottest data structure in a DES run (one push/pop per
message delivery and per timer), so it is built for allocation thrift:

* heap entries are plain tuples ``(time, seq, ...)`` so ordering is decided
  by C-level tuple comparison instead of a Python ``__lt__`` per sift step;
* cancellable events are slim ``__slots__`` objects (no dataclass protocol);
* fire-and-forget deliveries skip the :class:`Event` wrapper entirely via
  :meth:`EventQueue.push_call`, which stores the callable and its three
  arguments directly in the heap tuple — no closure, no handle.

Events are ordered by ``(time, seq)`` so that two events scheduled for the
same instant fire in scheduling order, keeping runs deterministic.
"""

# staticcheck: hot-path
from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A scheduled, cancellable event handle.

    ``popped`` is set by the queue when the event is handed to the simulator;
    a late ``cancel()`` on a popped event must not touch the live-event
    count.  ``live`` tracks whether the event still counts toward the owning
    queue's live total; it is cleared exactly once, whichever happens first:
    queue-level cancel, delivery, or lazy discard of a directly-cancelled
    event.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "popped", "live")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], label: str = "") -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.popped = False
        self.live = True

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state}, label={self.label!r})"


class EventQueue:
    """A cancellable priority queue of scheduled work.

    Two entry kinds share one heap (and one ``seq`` counter, so cross-kind
    FIFO ties stay deterministic):

    * ``(time, seq, Event)`` — cancellable, pushed by :meth:`push`;
    * ``(time, seq, fn, a, b, c)`` — a direct call ``fn(a, b, c)``, pushed by
      :meth:`push_call`; never cancellable, used for message deliveries.

    ``seq`` is unique, so tuple comparison never reaches the third element.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        event = Event(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, (time, event.seq, event))
        self._live += 1
        return event

    def push_call(self, time: float, fn: Callable[..., None], a: Any, b: Any, c: Any) -> None:
        """Schedule ``fn(a, b, c)`` at ``time`` with no cancellation handle."""
        heapq.heappush(self._heap, (time, next(self._counter), fn, a, b, c))
        self._live += 1

    def _forget(self, event: Event) -> None:
        """Remove ``event`` from the live count exactly once.

        Events can leave the live set three ways — queue-level cancel,
        delivery via ``pop``, or lazy discard after a *direct*
        ``Event.cancel()`` (timers cancel their events without going through
        the queue) — and the ``live`` flag guarantees each is counted once.
        """
        if event.live:
            event.live = False
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` if empty.

        Direct-call entries are wrapped into a fired-once :class:`Event` so
        callers see one uniform handle type.  The simulator's run loop reads
        the heap directly and never pays for this wrapper.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            payload = entry[2]
            if payload.__class__ is not Event:
                self._live -= 1
                fn, a, b, c = entry[2], entry[3], entry[4], entry[5]
                wrapper = Event(entry[0], entry[1], lambda: fn(a, b, c))
                wrapper.live = False
                wrapper.popped = True
                return wrapper
            self._forget(payload)
            if payload.cancelled:
                continue
            payload.popped = True
            return payload
        return None

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest live event without popping."""
        heap = self._heap
        while heap:
            payload = heap[0][2]
            if payload.__class__ is Event and payload.cancelled:
                self._forget(heapq.heappop(heap)[2])
                continue
            return heap[0][0]
        return None

    def cancel(self, event: Event) -> None:
        if event.popped or event.cancelled:
            return  # already delivered (or already cancelled): nothing is live
        event.cancel()
        self._forget(event)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
