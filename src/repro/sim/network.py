"""Message delivery: latency + bandwidth model, per-link statistics.

The paper limits each replica's NIC to 1 Gbps and observes that neither ISS
nor Ladon is CPU-bound.  We model transmission time as ``bytes / bandwidth``
serialised per sender (a sender's messages queue behind each other on its
uplink) plus the propagation delay from the latency model.  Byte counts feed
the Table 1 bandwidth accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.sim.latency import LatencyModel, UniformLatency

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator


GIGABIT_PER_SECOND_BYTES = 125_000_000  # 1 Gbps in bytes/second


@dataclass
class NetworkConfig:
    """Configuration of the message transport."""

    bandwidth_bytes_per_s: float = GIGABIT_PER_SECOND_BYTES
    drop_probability: float = 0.0
    processing_delay: float = 0.00002  # per-message handling cost at receiver
    duplicate_probability: float = 0.0


@dataclass
class NetworkStats:
    """Aggregate transport statistics for one run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_per_node: Dict[int, int] = field(default_factory=dict)
    messages_per_node: Dict[int, int] = field(default_factory=dict)

    def record_send(self, sender: int, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.bytes_per_node[sender] = self.bytes_per_node.get(sender, 0) + size
        self.messages_per_node[sender] = self.messages_per_node.get(sender, 0) + 1


class Network:
    """Delivers messages between nodes registered with the simulator.

    Nodes call :meth:`send` / :meth:`multicast`; the network computes delivery
    times and schedules the receiver's ``deliver`` callback.  A partitioned or
    crashed node can be isolated via :meth:`set_link_filter`.
    """

    def __init__(
        self,
        simulator: "Simulator",
        latency: Optional[LatencyModel] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency if latency is not None else UniformLatency()
        self.config = config if config is not None else NetworkConfig()
        self.stats = NetworkStats()
        self._handlers: Dict[int, Callable[[int, Any], None]] = {}
        self._uplink_free_at: Dict[int, float] = {}
        self._link_filter: Optional[Callable[[int, int], bool]] = None
        self._rng = random.Random(simulator.rng.randint(0, 2**31 - 1))

    # --------------------------------------------------------- registration
    def register(self, node_id: int, handler: Callable[[int, Any], None]) -> None:
        """Register the message handler for ``node_id``."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler
        self._uplink_free_at[node_id] = 0.0

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    def set_link_filter(self, predicate: Optional[Callable[[int, int], bool]]) -> None:
        """Install a predicate(sender, receiver) -> deliverable? (None = all)."""
        self._link_filter = predicate

    # --------------------------------------------------------------- sending
    def send(self, sender: int, receiver: int, message: Any, size_bytes: int = 0) -> None:
        """Send one message; loopback messages are delivered with zero latency."""
        self.stats.record_send(sender, size_bytes)
        if self._link_filter is not None and not self._link_filter(sender, receiver):
            self.stats.messages_dropped += 1
            return
        if self.config.drop_probability and self._rng.random() < self.config.drop_probability:
            self.stats.messages_dropped += 1
            return

        now = self.simulator.now()
        transmission = size_bytes / self.config.bandwidth_bytes_per_s if size_bytes else 0.0
        # Serialise on the sender's uplink.
        uplink_free = max(self._uplink_free_at.get(sender, 0.0), now)
        departure = uplink_free + transmission
        self._uplink_free_at[sender] = departure
        propagation = self.latency.delay(sender, receiver, self._rng)
        arrival = departure + propagation + self.config.processing_delay

        def _deliver() -> None:
            handler = self._handlers.get(receiver)
            if handler is None:
                self.stats.messages_dropped += 1
                return
            self.stats.messages_delivered += 1
            handler(sender, message)

        self.simulator.schedule_at(arrival, _deliver, label=f"deliver:{sender}->{receiver}")

    def multicast(self, sender: int, receivers: "list[int] | tuple[int, ...]", message: Any, size_bytes: int = 0) -> None:
        """Send the same message to every receiver (including possibly sender)."""
        for receiver in receivers:
            self.send(sender, receiver, message, size_bytes)

    def broadcast(self, sender: int, message: Any, size_bytes: int = 0) -> None:
        """Send to every registered node, including the sender itself."""
        for receiver in list(self._handlers.keys()):
            self.send(sender, receiver, message, size_bytes)

    # ------------------------------------------------------------- inspection
    def registered_nodes(self) -> "list[int]":
        return sorted(self._handlers.keys())
