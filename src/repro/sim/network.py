"""Message delivery: latency + bandwidth model, per-link statistics.

The paper limits each replica's NIC to 1 Gbps and observes that neither ISS
nor Ladon is CPU-bound.  We model transmission time as ``bytes / bandwidth``
serialised per sender (a sender's messages queue behind each other on its
uplink) plus the propagation delay from the latency model.  Byte counts feed
the Table 1 bandwidth accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, TYPE_CHECKING

from repro.sim.latency import LatencyModel, UniformLatency

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator


GIGABIT_PER_SECOND_BYTES = 125_000_000  # 1 Gbps in bytes/second


@dataclass
class NetworkConfig:
    """Configuration of the message transport."""

    bandwidth_bytes_per_s: float = GIGABIT_PER_SECOND_BYTES
    drop_probability: float = 0.0
    processing_delay: float = 0.00002  # per-message handling cost at receiver
    duplicate_probability: float = 0.0
    #: heterogeneous deployments: per-node uplink bandwidth overrides
    node_bandwidth: Optional[Dict[int, float]] = None

    def bandwidth_of(self, node_id: int) -> float:
        if self.node_bandwidth:
            return self.node_bandwidth.get(node_id, self.bandwidth_bytes_per_s)
        return self.bandwidth_bytes_per_s


@dataclass
class NetworkStats:
    """Aggregate transport statistics for one run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    bytes_sent: int = 0
    bytes_per_node: Dict[int, int] = field(default_factory=dict)
    messages_per_node: Dict[int, int] = field(default_factory=dict)

    def record_send(self, sender: int, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.bytes_per_node[sender] = self.bytes_per_node.get(sender, 0) + size
        self.messages_per_node[sender] = self.messages_per_node.get(sender, 0) + 1

    def record_drop(self, cause: str) -> None:
        self.messages_dropped += 1
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1


class Network:
    """Delivers messages between nodes registered with the simulator.

    Nodes call :meth:`send` / :meth:`multicast`; the network computes delivery
    times and schedules the receiver's ``deliver`` callback.  A partitioned or
    crashed node can be isolated via :meth:`set_link_filter`.
    """

    def __init__(
        self,
        simulator: "Simulator",
        latency: Optional[LatencyModel] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency if latency is not None else UniformLatency()
        self.config = config if config is not None else NetworkConfig()
        self.stats = NetworkStats()
        self._handlers: Dict[int, Callable[[int, Any], None]] = {}
        self._uplink_free_at: Dict[int, float] = {}
        self._link_filter: Optional[Callable[[int, int], bool]] = None
        self._partition_group: Optional[Dict[int, int]] = None
        self._latency_scale: float = 1.0
        self._rng = random.Random(simulator.rng.randint(0, 2**31 - 1))

    # --------------------------------------------------------- registration
    def register(self, node_id: int, handler: Callable[[int, Any], None]) -> None:
        """Register the message handler for ``node_id``."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler
        self._uplink_free_at[node_id] = 0.0

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    def set_link_filter(self, predicate: Optional[Callable[[int, int], bool]]) -> None:
        """Install a predicate(sender, receiver) -> deliverable? (None = all)."""
        self._link_filter = predicate

    # ------------------------------------------------------ network dynamics
    def set_partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Partition the network into ``groups`` of mutually reachable nodes.

        Messages crossing group boundaries are dropped; nodes absent from
        every group are isolated.  The partition composes with (does not
        replace) any installed link filter.
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in mapping:
                    raise ValueError(f"node {node} appears in more than one group")
                mapping[node] = index
        self._partition_group = mapping

    def heal_partition(self) -> None:
        """Remove the active partition (all links reachable again)."""
        self._partition_group = None

    @property
    def partitioned(self) -> bool:
        return self._partition_group is not None

    def set_latency_scale(self, factor: float) -> None:
        """Scale all propagation delays (link degradation; 1.0 = nominal)."""
        if factor <= 0:
            raise ValueError("latency scale must be positive")
        self._latency_scale = factor

    def set_drop_probability(self, probability: float) -> None:
        """Change the uniform message-loss probability (loss bursts)."""
        if not 0.0 <= probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        self.config.drop_probability = probability

    def _partition_blocks(self, sender: int, receiver: int) -> bool:
        if self._partition_group is None:
            return False
        groups = self._partition_group
        sender_group = groups.get(sender)
        receiver_group = groups.get(receiver)
        return sender_group is None or receiver_group is None or sender_group != receiver_group

    # --------------------------------------------------------------- sending
    def send(self, sender: int, receiver: int, message: Any, size_bytes: int = 0) -> None:
        """Send one message; loopback messages are delivered with zero latency."""
        self.stats.record_send(sender, size_bytes)
        if self._link_filter is not None and not self._link_filter(sender, receiver):
            self.stats.record_drop("link-filter")
            return
        if self._partition_blocks(sender, receiver):
            self.stats.record_drop("partition")
            return
        if self.config.drop_probability and self._rng.random() < self.config.drop_probability:
            self.stats.record_drop("loss")
            return

        now = self.simulator.now()
        transmission = (
            size_bytes / self.config.bandwidth_of(sender) if size_bytes else 0.0
        )
        # Serialise on the sender's uplink.
        uplink_free = max(self._uplink_free_at.get(sender, 0.0), now)
        departure = uplink_free + transmission
        self._uplink_free_at[sender] = departure
        propagation = self.latency.delay(sender, receiver, self._rng) * self._latency_scale
        arrival = departure + propagation + self.config.processing_delay
        self._schedule_delivery(sender, receiver, message, arrival)

        if (
            self.config.duplicate_probability
            and self._rng.random() < self.config.duplicate_probability
        ):
            # Duplicate delivery: same payload arrives a second time after an
            # independent propagation delay (retransmission/route flap model).
            self.stats.messages_duplicated += 1
            extra = self.latency.delay(sender, receiver, self._rng) * self._latency_scale
            self._schedule_delivery(
                sender, receiver, message, departure + extra + self.config.processing_delay
            )

    def _schedule_delivery(
        self, sender: int, receiver: int, message: Any, arrival: float
    ) -> None:
        def _deliver() -> None:
            handler = self._handlers.get(receiver)
            if handler is None:
                self.stats.record_drop("unregistered")
                return
            self.stats.messages_delivered += 1
            handler(sender, message)

        self.simulator.schedule_at(arrival, _deliver, label=f"deliver:{sender}->{receiver}")

    def multicast(self, sender: int, receivers: "list[int] | tuple[int, ...]", message: Any, size_bytes: int = 0) -> None:
        """Send the same message to every receiver (including possibly sender)."""
        for receiver in receivers:
            self.send(sender, receiver, message, size_bytes)

    def broadcast(self, sender: int, message: Any, size_bytes: int = 0) -> None:
        """Send to every registered node, including the sender itself."""
        for receiver in list(self._handlers.keys()):
            self.send(sender, receiver, message, size_bytes)

    # ------------------------------------------------------------- inspection
    def registered_nodes(self) -> "list[int]":
        return sorted(self._handlers.keys())
