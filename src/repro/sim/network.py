"""Message delivery: latency + bandwidth model, per-link statistics.

The paper limits each replica's NIC to 1 Gbps and observes that neither ISS
nor Ladon is CPU-bound.  We model transmission time as ``bytes / bandwidth``
serialised per sender (a sender's messages queue behind each other on its
uplink) plus the propagation delay from the latency model.  Byte counts feed
the Table 1 bandwidth accounting.

This module sits on the simulation hot path (one :meth:`Network.send` per
protocol message), so delivery is scheduled through the scheduler's
closure-free ``schedule_call`` fast path and :meth:`Network.multicast` runs
one fused fan-out loop with the per-receiver arithmetic hoisted, instead of
re-entering :meth:`send` per receiver.  The per-receiver *order* of
operations (stats, drop checks, uplink serialisation, latency draw) is
identical to a sequence of unicasts, so fused fan-out leaves event ordering
and RNG streams byte-for-byte unchanged.

The ``simulator`` collaborator is duck-typed: anything exposing ``now()``,
``schedule_call(time, fn, a, b, c)`` and a seeded ``rng`` works, which is how
the realtime runtime reuses this exact transport model on a wall-clock
scheduler.
"""

# staticcheck: hot-path
from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.sim.events import EventQueue
from repro.sim.latency import LatencyModel, UniformLatency
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator


GIGABIT_PER_SECOND_BYTES = 125_000_000  # 1 Gbps in bytes/second


@dataclass(slots=True)
class NetworkConfig:
    """Configuration of the message transport."""

    bandwidth_bytes_per_s: float = GIGABIT_PER_SECOND_BYTES
    drop_probability: float = 0.0
    processing_delay: float = 0.00002  # per-message handling cost at receiver
    duplicate_probability: float = 0.0
    #: heterogeneous deployments: per-node uplink bandwidth overrides
    node_bandwidth: Optional[Dict[int, float]] = None

    def bandwidth_of(self, node_id: int) -> float:
        if self.node_bandwidth:
            return self.node_bandwidth.get(node_id, self.bandwidth_bytes_per_s)
        return self.bandwidth_bytes_per_s


@dataclass(slots=True)
class NetworkStats:
    """Aggregate transport statistics for one run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    bytes_sent: int = 0
    bytes_per_node: Dict[int, int] = field(default_factory=dict)
    messages_per_node: Dict[int, int] = field(default_factory=dict)

    def record_send(self, sender: int, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        self.bytes_per_node[sender] = self.bytes_per_node.get(sender, 0) + size
        self.messages_per_node[sender] = self.messages_per_node.get(sender, 0) + 1

    def record_drop(self, cause: str) -> None:
        self.messages_dropped += 1
        self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1


class Network:
    """Delivers messages between nodes registered with the simulator.

    Nodes call :meth:`send` / :meth:`multicast`; the network computes delivery
    times and schedules the receiver's ``deliver`` callback.  A partitioned or
    crashed node can be isolated via :meth:`set_link_filter`.
    """

    def __init__(
        self,
        simulator: "Simulator",
        latency: Optional[LatencyModel] = None,
        config: Optional[NetworkConfig] = None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency if latency is not None else UniformLatency()
        self.config = config if config is not None else NetworkConfig()
        self.stats = NetworkStats()
        self._handlers: Dict[int, Callable[[int, Any], None]] = {}
        self._registered_sorted: List[int] = []
        self._uplink_free_at: Dict[int, float] = {}
        self._link_filter: Optional[Callable[[int, int], bool]] = None
        self._partition_group: Optional[Dict[int, int]] = None
        self._latency_scale: float = 1.0
        self._rng = random.Random(simulator.rng.randint(0, 2**31 - 1))
        # DES fast path: push delivery entries straight onto the event heap
        # (None on backends whose scheduler is not the DES EventQueue).
        queue = getattr(simulator, "queue", None)
        self._fast_queue: Optional[EventQueue] = (
            queue if isinstance(queue, EventQueue) else None
        )
        # Arrival times are provably >= now (departure >= now, delays >= 0),
        # so the DES backend's unchecked scheduling path is safe; other
        # backends (realtime) keep their guarded schedule_call.  Resolved
        # once here — send() and multicast() are the hot path.
        self._schedule_call = (
            getattr(simulator, "schedule_call_unchecked", None)
            or simulator.schedule_call
        )
        # Baseline scheduling state, restored when a delivery perturbation
        # is removed (see set_delivery_perturbation).
        self._base_schedule_call = self._schedule_call
        self._base_fast_queue = self._fast_queue
        self._perturbation = None
        # Scheduler-owned trace recorder: deliveries are recorded here when
        # tracing is on, making the trace a full schedule witness for replay.
        trace = getattr(simulator, "trace", None)
        # Explicit None check: an empty TraceRecorder is falsy (__len__ == 0).
        self._trace: TraceRecorder = (
            trace if trace is not None else TraceRecorder(enabled=False)
        )

    # --------------------------------------------------------- registration
    def register(self, node_id: int, handler: Callable[[int, Any], None]) -> None:
        """Register the message handler for ``node_id``."""
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already registered")
        self._handlers[node_id] = handler
        self._uplink_free_at[node_id] = 0.0
        self._registered_sorted = sorted(self._handlers.keys())

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)
        self._registered_sorted = sorted(self._handlers.keys())

    def set_link_filter(self, predicate: Optional[Callable[[int, int], bool]]) -> None:
        """Install a predicate(sender, receiver) -> deliverable? (None = all)."""
        self._link_filter = predicate

    def set_delivery_perturbation(self, perturbation) -> None:
        """Install (None: remove) a delivery-schedule perturbation.

        ``perturbation`` exposes ``perturb(arrival, sender, receiver) ->
        float`` returning the adjusted arrival (must be ``>= arrival``, so
        perturbed runs stay valid executions); it is applied to every
        delivery this transport schedules, in scheduling order.  Installing
        one disables the multicast direct-heap fast path — the general path
        is draw-for-draw byte-identical (see :meth:`multicast`), so the
        *zero* perturbation reproduces the unperturbed schedule exactly.
        """
        if perturbation is None:
            self._perturbation = None
            self._schedule_call = self._base_schedule_call
            self._fast_queue = self._base_fast_queue
            return
        self._perturbation = perturbation
        self._fast_queue = None
        base_schedule = self._base_schedule_call
        perturb = perturbation.perturb

        def _schedule_perturbed(time: float, fn, sender, receiver, message) -> None:
            base_schedule(perturb(time, sender, receiver), fn, sender, receiver, message)

        self._schedule_call = _schedule_perturbed

    # ------------------------------------------------------ network dynamics
    def set_partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Partition the network into ``groups`` of mutually reachable nodes.

        Messages crossing group boundaries are dropped; nodes absent from
        every group are isolated.  The partition composes with (does not
        replace) any installed link filter.
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in mapping:
                    raise ValueError(f"node {node} appears in more than one group")
                mapping[node] = index
        self._partition_group = mapping

    def heal_partition(self) -> None:
        """Remove the active partition (all links reachable again)."""
        self._partition_group = None

    @property
    def partitioned(self) -> bool:
        return self._partition_group is not None

    def set_latency_scale(self, factor: float) -> None:
        """Scale all propagation delays (link degradation; 1.0 = nominal)."""
        if factor <= 0:
            raise ValueError("latency scale must be positive")
        self._latency_scale = factor

    def set_drop_probability(self, probability: float) -> None:
        """Change the uniform message-loss probability (loss bursts)."""
        if not 0.0 <= probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        self.config.drop_probability = probability

    @property
    def drop_probability(self) -> float:
        """The current uniform message-loss probability."""
        return self.config.drop_probability

    def _partition_blocks(self, sender: int, receiver: int) -> bool:
        if self._partition_group is None:
            return False
        groups = self._partition_group
        sender_group = groups.get(sender)
        receiver_group = groups.get(receiver)
        return sender_group is None or receiver_group is None or sender_group != receiver_group

    # --------------------------------------------------------------- sending
    def send(self, sender: int, receiver: int, message: Any, size_bytes: int = 0) -> None:
        """Send one message; loopback messages are delivered with zero latency."""
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes
        per_node = stats.bytes_per_node
        per_node[sender] = per_node.get(sender, 0) + size_bytes
        per_node = stats.messages_per_node
        per_node[sender] = per_node.get(sender, 0) + 1
        if self._link_filter is not None and not self._link_filter(sender, receiver):
            stats.record_drop("link-filter")
            return
        if self._partition_group is not None and self._partition_blocks(sender, receiver):
            stats.record_drop("partition")
            return
        config = self.config
        if config.drop_probability and self._rng.random() < config.drop_probability:
            stats.record_drop("loss")
            return

        now = self.simulator.now()
        if size_bytes:
            bandwidth = config.node_bandwidth
            if bandwidth:
                bandwidth = bandwidth.get(sender, config.bandwidth_bytes_per_s)
            else:
                bandwidth = config.bandwidth_bytes_per_s
            transmission = size_bytes / bandwidth
        else:
            transmission = 0.0
        # Serialise on the sender's uplink.
        uplink_free = self._uplink_free_at.get(sender, 0.0)
        if uplink_free < now:
            uplink_free = now
        departure = uplink_free + transmission
        self._uplink_free_at[sender] = departure
        propagation = self.latency.delay(sender, receiver, self._rng) * self._latency_scale
        if propagation < 0.0:
            # Catch latency-model bugs at the source so every backend fails
            # identically (the DES scheduler would also reject the past-time
            # delivery, but the realtime scheduler has no virtual "past").
            raise ValueError(
                f"latency model produced a negative delay for {sender}->{receiver}"
            )
        arrival = departure + propagation + config.processing_delay
        schedule_call = self._schedule_call
        schedule_call(arrival, self._deliver, sender, receiver, message)

        if (
            config.duplicate_probability
            and self._rng.random() < config.duplicate_probability
        ):
            # Duplicate delivery: same payload arrives a second time after an
            # independent propagation delay (retransmission/route flap model).
            stats.messages_duplicated += 1
            extra = self.latency.delay(sender, receiver, self._rng) * self._latency_scale
            schedule_call(
                departure + extra + config.processing_delay,
                self._deliver,
                sender,
                receiver,
                message,
            )

    def _deliver(self, sender: int, receiver: int, message: Any) -> None:
        handler = self._handlers.get(receiver)
        if handler is None:
            self.stats.record_drop("unregistered")
            return
        self.stats.messages_delivered += 1
        trace = self._trace
        if trace.enabled:
            # Every delivery lands in the trace: together with cancellations
            # and fault-timeline actions this makes the trace a complete
            # schedule witness (replayable, digestable).
            trace.record(
                self.simulator.now(),
                "deliver",
                receiver,
                sender=sender,
                kind=message.__class__.__name__,
                instance=getattr(message, "instance", -1),
            )
        handler(sender, message)

    def multicast(self, sender: int, receivers: "list[int] | tuple[int, ...]", message: Any, size_bytes: int = 0) -> None:
        """Send the same message to every receiver (including possibly sender).

        One fused fan-out: the shared per-send quantities (transmission time,
        config lookups, bound methods) are hoisted out of the receiver loop.
        On the DES backend with a latency model exposing
        :meth:`~repro.sim.latency.LatencyModel.multicast_profile`, the happy
        path (no filter/partition/loss/duplication) computes the propagation
        inline and pushes delivery entries straight onto the event heap — no
        per-receiver Python frame at all.  The per-receiver operation order
        (and every RNG draw) matches a loop of :meth:`send` calls exactly,
        so statistics, uplink serialisation, and event ordering are
        indistinguishable from per-receiver unicasts.
        """
        stats = self.stats
        config = self.config
        link_filter = self._link_filter
        drop_probability = config.drop_probability
        duplicate_probability = config.duplicate_probability
        partitioned = self._partition_group is not None
        processing_delay = config.processing_delay
        latency_scale = self._latency_scale
        rng_random = self._rng.random
        deliver = self._deliver
        bytes_per_node = stats.bytes_per_node
        messages_per_node = stats.messages_per_node
        if size_bytes:
            bandwidth = config.node_bandwidth
            if bandwidth:
                bandwidth = bandwidth.get(sender, config.bandwidth_bytes_per_s)
            else:
                bandwidth = config.bandwidth_bytes_per_s
            transmission = size_bytes / bandwidth
        else:
            transmission = 0.0
        now = self.simulator.now()
        uplink_free = self._uplink_free_at.get(sender, 0.0)

        # ---------------- DES fast path: direct heap pushes, inline latency
        queue = self._fast_queue
        profile = (
            self.latency.multicast_profile(sender, receivers)
            if queue is not None
            and link_filter is None
            and not partitioned
            and not drop_probability
            and not duplicate_probability
            else None
        )
        if profile is not None:
            base_row, jitter = profile
            heap = queue._heap
            seq = queue._counter
            push = heapq.heappush
            sent = 0
            if uplink_free < now:
                uplink_free = now
            for receiver in receivers:
                sent += 1
                departure = uplink_free = uplink_free + transmission
                if receiver == sender:
                    # delay() contract: self pairs are 0.0 with NO rng draw
                    # (departure + 0.0 + processing == departure + processing).
                    arrival = departure + processing_delay
                else:
                    # Same left-to-right float order as the general path:
                    # departure + propagation + processing_delay.
                    arrival = (
                        departure
                        + (base_row[receiver] + rng_random() * jitter) * latency_scale
                        + processing_delay
                    )
                push(heap, (arrival, next(seq), deliver, sender, receiver, message))
            if sent:
                queue._live += sent
                total_bytes = size_bytes * sent
                stats.messages_sent += sent
                stats.bytes_sent += total_bytes
                bytes_per_node[sender] = bytes_per_node.get(sender, 0) + total_bytes
                messages_per_node[sender] = messages_per_node.get(sender, 0) + sent
                self._uplink_free_at[sender] = uplink_free
            return

        # ------------------------------- general path: per-receiver delay()
        delay = self.latency.delay
        schedule_call = self._schedule_call
        sent = 0
        total_bytes = 0
        for receiver in receivers:
            sent += 1
            total_bytes += size_bytes
            if link_filter is not None and not link_filter(sender, receiver):
                stats.record_drop("link-filter")
                continue
            if partitioned and self._partition_blocks(sender, receiver):
                stats.record_drop("partition")
                continue
            if drop_probability and rng_random() < drop_probability:
                stats.record_drop("loss")
                continue
            if uplink_free < now:
                uplink_free = now
            departure = uplink_free + transmission
            uplink_free = departure
            propagation = delay(sender, receiver, self._rng) * latency_scale
            if propagation < 0.0:
                raise ValueError(
                    f"latency model produced a negative delay for {sender}->{receiver}"
                )
            arrival = departure + propagation + processing_delay
            schedule_call(arrival, deliver, sender, receiver, message)
            if duplicate_probability and rng_random() < duplicate_probability:
                stats.messages_duplicated += 1
                extra = delay(sender, receiver, self._rng) * latency_scale
                schedule_call(
                    departure + extra + processing_delay, deliver, sender, receiver, message
                )
        if sent:
            stats.messages_sent += sent
            stats.bytes_sent += total_bytes
            bytes_per_node[sender] = bytes_per_node.get(sender, 0) + total_bytes
            messages_per_node[sender] = messages_per_node.get(sender, 0) + sent
            self._uplink_free_at[sender] = uplink_free

    def broadcast(self, sender: int, message: Any, size_bytes: int = 0) -> None:
        """Send to every registered node, including the sender itself."""
        self.multicast(sender, self._registered_sorted, message, size_bytes)

    # ------------------------------------------------------------- inspection
    def registered_nodes(self) -> "list[int]":
        """The registered node ids, ascending.  Callers must not mutate."""
        return self._registered_sorted
