"""Structured tracing for simulation runs.

Traces are optional (disabled by default to keep large sweeps cheap) and are
used by tests, the crash-recovery figure, and the schedule-space fuzzer to
inspect protocol behaviour without reaching into node internals.

A trace doubles as the *replay witness* of a run: with tracing enabled the
transport records every delivery, the simulator records every effective
cancellation, and the fault injector records every timeline action, so two
runs are schedule-identical exactly when their canonical digests
(:func:`trace_digest`) match.  The canonical form is JSON (sorted detail
keys, exact float round-trip), so digests are stable across processes and
Python versions and can be pinned in regression artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a timestamp, a category, a node, and details."""

    time: float
    category: str
    node: Optional[int]
    details: Dict[str, Any]


@dataclass
class TraceRecorder:
    """Accumulates :class:`TraceEvent` records during a run."""

    enabled: bool = True
    events: List[TraceEvent] = field(default_factory=list)

    def record(self, time: float, category: str, node: Optional[int] = None, **details: Any) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(time=time, category=category, node=node, details=dict(details)))

    def by_category(self, category: str) -> List[TraceEvent]:
        return [event for event in self.events if event.category == category]

    def by_node(self, node: int) -> List[TraceEvent]:
        return [event for event in self.events if event.node == node]

    def clear(self) -> None:
        self.events.clear()

    def digest(self) -> str:
        """Canonical sha256 of everything recorded so far."""
        return trace_digest(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


# ------------------------------------------------------- canonical encoding
def event_key(event: TraceEvent) -> tuple:
    """The comparison key of one event: ``(time, category, node, details)``."""
    return (event.time, event.category, event.node, tuple(sorted(event.details.items())))


def trace_to_jsonable(events: Iterable[TraceEvent]) -> List[dict]:
    """Events as compact JSON-ready dicts (``t``/``c``/``n``/``d``).

    Detail values must be JSON scalars (str/int/float/bool/None) so the
    round trip through :func:`trace_from_jsonable` is lossless — Python's
    JSON float encoding is exact (shortest round-trip repr).
    """
    return [
        {"t": e.time, "c": e.category, "n": e.node, "d": e.details} for e in events
    ]


def trace_from_jsonable(data: Iterable[dict]) -> List[TraceEvent]:
    """Rebuild :class:`TraceEvent` records from :func:`trace_to_jsonable` output."""
    return [
        TraceEvent(time=item["t"], category=item["c"], node=item["n"], details=dict(item["d"]))
        for item in data
    ]


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """Canonical sha256 hexdigest of an event sequence.

    Canonical form: the JSON encoding of ``[time, category, node,
    [[key, value]...]]`` rows with detail keys sorted, no whitespace.  Two
    runs producing the same digest recorded the same events at the same
    virtual times in the same order — the replay equivalence the fuzzer's
    bit-exactness check rests on.
    """
    payload = json.dumps(
        [
            [e.time, e.category, e.node, sorted(e.details.items())]
            for e in events
        ],
        separators=(",", ":"),
        sort_keys=False,
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
