"""Structured tracing for simulation runs.

Traces are optional (disabled by default to keep large sweeps cheap) and are
used by tests and the crash-recovery figure to inspect protocol behaviour
without reaching into node internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: a timestamp, a category, a node, and details."""

    time: float
    category: str
    node: Optional[int]
    details: Dict[str, Any]


@dataclass
class TraceRecorder:
    """Accumulates :class:`TraceEvent` records during a run."""

    enabled: bool = True
    events: List[TraceEvent] = field(default_factory=list)

    def record(self, time: float, category: str, node: Optional[int] = None, **details: Any) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(time=time, category=category, node=node, details=dict(details)))

    def by_category(self, category: str) -> List[TraceEvent]:
        return [event for event in self.events if event.category == category]

    def by_node(self, node: int) -> List[TraceEvent]:
        return [event for event in self.events if event.node == node]

    def clear(self) -> None:
        self.events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
