"""Fault, straggler, and network-dynamics injection.

The evaluation distinguishes (Sec. 6.1 "Straggler settings"):

* **honest stragglers** — leaders that follow the protocol but propose at
  ``1/k`` of the normal rate, without triggering timeouts, and do not include
  transactions in their blocks;
* **Byzantine stragglers** — honest-straggler behaviour plus rank
  manipulation: they collect more than 2f+1 rank reports, discard the highest
  and use only the lowest 2f+1 (Sec. 4.4, Appendix B case 3);
* **crash faults** — a replica stops at a configured time; the instance it
  leads recovers through a view change (Fig. 8).

Beyond the paper's settings, the scenario engine adds **network dynamics**:
scheduled partitions (split/heal), link degradation windows, and message-loss
bursts.  All of them — crashes included — are armed by one
:class:`FaultInjector` onto a single simulator timeline, so a scenario is
simply a set of declarative specs rather than ad-hoc wiring.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adversary.interceptor import AdversaryInterceptor
    from repro.adversary.spec import AdversarySpec
    from repro.runtime.base import Runtime
    from repro.sim.network import Network


@dataclass(frozen=True)
class StragglerSpec:
    """One straggling leader.

    ``slowdown`` is the ``k`` of the paper: the straggler proposes blocks at
    ``1/k`` of the normal leaders' rate.  ``byzantine`` is a **deprecated
    shim**: the rank-manipulation strategy now lives in the adversary
    catalog (:class:`repro.adversary.attacks.RankManipulation`); setting
    the flag still works and is lowered onto the catalog behaviour.
    """

    replica: int
    slowdown: float = 10.0
    byzantine: bool = False

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError("slowdown k must be >= 1")


@dataclass(frozen=True)
class CrashSpec:
    """Crash ``replica`` at virtual time ``at`` (seconds)."""

    replica: int
    at: float
    recover_at: Optional[float] = None


@dataclass(frozen=True)
class PartitionSpec:
    """Split the network into ``groups`` at ``at``; optionally heal later.

    ``groups`` are tuples of replica ids; replicas absent from every group
    are isolated for the duration.  Overlapping partitions are not modelled:
    a later split replaces the active one, ``heal_at`` restores full
    connectivity.
    """

    at: float
    groups: Tuple[Tuple[int, ...], ...]
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("partition needs at least one group")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError("heal must come after the split")
        seen: set = set()
        for group in self.groups:
            for member in group:
                if member in seen:
                    raise ValueError(
                        f"replica {member} appears in more than one partition group"
                    )
                seen.add(member)


@dataclass(frozen=True)
class DegradationSpec:
    """Scale every link's propagation delay by ``factor`` during a window."""

    at: float
    until: float
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.until <= self.at:
            raise ValueError("degradation window must have positive length")
        if self.factor <= 0:
            raise ValueError("degradation factor must be positive")


@dataclass(frozen=True)
class LossBurstSpec:
    """Raise the uniform message-loss probability during a window."""

    at: float
    until: float
    drop_probability: float = 0.2

    def __post_init__(self) -> None:
        if self.until <= self.at:
            raise ValueError("loss-burst window must have positive length")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")


def _reject_overlaps(kind: str, windows: Sequence[Tuple[float, float]]) -> None:
    ordered = sorted(windows)
    for (_, prev_until), (next_at, _) in zip(ordered, ordered[1:]):
        if next_at < prev_until:
            raise ValueError(f"{kind} windows overlap (t={next_at} < t={prev_until})")


@dataclass
class FaultConfig:
    """All fault, network-dynamics, and adversary injection for one run.

    ``adversary`` carries a :class:`~repro.adversary.spec.AdversarySpec`:
    its :class:`~repro.adversary.attacks.RankManipulation` attacks are
    lowered onto the straggler machinery here (so the proposal hot path
    stays one dict lookup), while its message-layer attacks are armed as
    per-node interceptors by :class:`FaultInjector`.
    """

    stragglers: Tuple[StragglerSpec, ...] = ()
    crashes: Tuple[CrashSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    degradations: Tuple[DegradationSpec, ...] = ()
    loss_bursts: Tuple[LossBurstSpec, ...] = ()
    adversary: Optional["AdversarySpec"] = None

    def __post_init__(self) -> None:
        # The straggler queries sit on the proposal hot path (every pacing
        # tick); precompute the replica -> spec map instead of rescanning the
        # tuple per call.
        self._straggler_by_replica: Dict[int, StragglerSpec] = {
            spec.replica: spec for spec in self.stragglers
        }
        if self.adversary is not None:
            # Rank manipulation lowers onto the straggler machinery; a
            # catalog attack wins over a plain straggler spec for the same
            # replica (the attack is the stronger statement).
            for spec in self.adversary.straggler_specs():
                self._straggler_by_replica[spec.replica] = spec
        legacy = {spec.replica for spec in self.stragglers if spec.byzantine}
        if legacy - (
            self.adversary.rank_manipulators() if self.adversary is not None else frozenset()
        ):
            warnings.warn(
                "StragglerSpec.byzantine is deprecated; declare the attack as "
                "FaultConfig(adversary=AdversarySpec((RankManipulation("
                "replicas=..., slowdown=...),))) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        # Degradation and loss-burst windows restore the pre-window state on
        # expiry, so overlapping windows of one kind would quietly cancel each
        # other — reject them up front.
        _reject_overlaps("degradation", [(d.at, d.until) for d in self.degradations])
        _reject_overlaps("loss-burst", [(b.at, b.until) for b in self.loss_bursts])

    @classmethod
    def with_stragglers(
        cls,
        count: int,
        n: int,
        slowdown: float = 10.0,
        byzantine: bool = False,
        seed: int = 0,
    ) -> "FaultConfig":
        """Randomly select ``count`` straggling leaders out of ``n`` replicas.

        Matches the paper's setting where stragglers are chosen at random;
        the selection is deterministic for a given seed.
        """
        if count < 0 or count > n:
            raise ValueError("straggler count must be within [0, n]")
        rng = random.Random(seed)
        chosen = rng.sample(range(n), count) if count else []
        specs = tuple(
            StragglerSpec(replica=r, slowdown=slowdown, byzantine=byzantine)
            for r in sorted(chosen)
        )
        return cls(stragglers=specs)

    def straggler_map(self) -> Dict[int, StragglerSpec]:
        return dict(self._straggler_by_replica)

    def is_straggler(self, replica: int) -> bool:
        return replica in self._straggler_by_replica

    def is_byzantine(self, replica: int) -> bool:
        """Whether ``replica`` manipulates ranks (catalog attack or legacy flag)."""
        spec = self._straggler_by_replica.get(replica)
        return spec is not None and spec.byzantine

    def slowdown_of(self, replica: int) -> float:
        spec = self._straggler_by_replica.get(replica)
        return spec.slowdown if spec is not None else 1.0

    def straggler_count(self) -> int:
        """Stragglers including adversarial rank manipulators."""
        return len(self._straggler_by_replica)

    def adversarial_replicas(self) -> FrozenSet[int]:
        """Replicas running any Byzantine behaviour (never fit observers)."""
        members = {
            replica
            for replica, spec in self._straggler_by_replica.items()
            if spec.byzantine
        }
        if self.adversary is not None:
            members.update(self.adversary.replicas())
        return frozenset(members)

    def has_network_dynamics(self) -> bool:
        return bool(self.partitions or self.degradations or self.loss_bursts)


class FaultInjector:
    """Arms crash/recovery and network-dynamics events on one timeline.

    Crash and recovery act on nodes; partitions, degradation windows, and
    loss bursts act on the network (which must be supplied when any such
    specs are configured).  Every fired event is appended to ``event_log``;
    ``crash_log`` keeps the historical crash/recover-only view.
    """

    def __init__(
        self,
        runtime: "Runtime",
        nodes: Dict[int, "object"],
        config: FaultConfig,
        network: "Optional[Network | Runtime]" = None,
        *,
        local_only: bool = False,
        total_nodes: Optional[int] = None,
    ) -> None:
        # ``runtime`` needs the scheduling surface (schedule_at / now);
        # ``network`` needs the dynamics surface (set_partition /
        # heal_partition / set_latency_scale / set_drop_probability /
        # drop_probability).  A Runtime provides both, so systems pass the
        # runtime twice; sim-layer tests still pass a bare Network.
        #
        # ``local_only`` marks a sharded worker's partial view: ``nodes``
        # holds one shard's replicas, so node-scoped specs (crashes,
        # adversary corruption) naming non-local replicas are skipped
        # instead of rejected — the shard that hosts them arms them.
        # ``total_nodes`` then supplies the deployment's full n (interceptor
        # quorum math must not see the shard size).
        self.runtime = runtime
        self.nodes = nodes
        self.config = config
        self.network = network
        self.local_only = local_only
        self.total_nodes = total_nodes
        self.crash_log: List[Tuple[float, int, str]] = []
        self.event_log: List[Tuple[float, str, str]] = []
        #: per-replica adversary interceptors installed by :meth:`arm`
        self.interceptors: Dict[int, "AdversaryInterceptor"] = {}

    def _record(self, kind: str, detail: str) -> None:
        """Append to the timeline and, when tracing, to the schedule trace.

        Fault-injector actions change the future schedule (crashes drop
        timers, partitions drop messages), so a replayable trace must see
        them: category ``fault`` mirrors every ``event_log`` entry.
        """
        now = self.runtime.now()
        self.event_log.append((now, kind, detail))
        trace = getattr(self.runtime, "trace", None)
        if trace is not None and trace.enabled:
            trace.record(now, "fault", None, kind=kind, detail=detail)

    def arm(self) -> None:
        """Install all configured events on the runtime timeline."""
        for spec in self.config.crashes:
            self._arm_crash(spec)
        if self.config.has_network_dynamics() and self.network is None:
            raise ValueError("network dynamics configured but no network supplied")
        for partition in self.config.partitions:
            self._arm_partition(partition)
        for degradation in self.config.degradations:
            self._arm_degradation(degradation)
        for burst in self.config.loss_bursts:
            self._arm_loss_burst(burst)
        if self.config.adversary is not None:
            self.interceptors = self.config.adversary.install(
                self.runtime,
                self.nodes,
                event_log=self.event_log,
                n=self.total_nodes,
                local_only=self.local_only,
            )

    def adversary_stats(self) -> Dict[str, int]:
        """Aggregate interceptor counters across all adversarial replicas."""
        totals = {"suppressed": 0, "delayed": 0, "forged": 0}
        for interceptor in self.interceptors.values():
            for key, value in interceptor.stats().items():
                totals[key] += value
        return totals

    # ----------------------------------------------------------- node faults
    def _arm_crash(self, spec: CrashSpec) -> None:
        node = self.nodes.get(spec.replica)
        if node is None:
            if self.local_only:
                return  # armed by the shard hosting the replica
            raise KeyError(f"cannot crash unknown replica {spec.replica}")

        def _crash() -> None:
            node.crash()
            self.crash_log.append((self.runtime.now(), spec.replica, "crash"))
            self._record("crash", f"replica={spec.replica}")

        self.runtime.schedule_at(spec.at, _crash, label=f"crash:{spec.replica}")

        if spec.recover_at is not None:
            if spec.recover_at <= spec.at:
                raise ValueError("recovery must come after the crash")

            def _recover() -> None:
                node.recover()
                self.crash_log.append((self.runtime.now(), spec.replica, "recover"))
                self._record("recover", f"replica={spec.replica}")

            self.runtime.schedule_at(
                spec.recover_at, _recover, label=f"recover:{spec.replica}"
            )

    # ------------------------------------------------------ network dynamics
    def _arm_partition(self, spec: PartitionSpec) -> None:
        network = self.network

        def _split() -> None:
            network.set_partition(spec.groups)
            self._record("partition", f"groups={spec.groups}")

        self.runtime.schedule_at(spec.at, _split, label="partition:split")
        if spec.heal_at is not None:

            def _heal() -> None:
                network.heal_partition()
                self._record("heal", "")

            self.runtime.schedule_at(spec.heal_at, _heal, label="partition:heal")

    def _arm_degradation(self, spec: DegradationSpec) -> None:
        network = self.network

        def _begin() -> None:
            network.set_latency_scale(spec.factor)
            self._record("degrade", f"factor={spec.factor}")

        def _end() -> None:
            network.set_latency_scale(1.0)
            self._record("degrade-end", "")

        self.runtime.schedule_at(spec.at, _begin, label="degrade:begin")
        self.runtime.schedule_at(spec.until, _end, label="degrade:end")

    def _arm_loss_burst(self, spec: LossBurstSpec) -> None:
        network = self.network
        baseline = network.drop_probability

        def _begin() -> None:
            network.set_drop_probability(spec.drop_probability)
            self._record("loss-burst", f"p={spec.drop_probability}")

        def _end() -> None:
            network.set_drop_probability(baseline)
            self._record("loss-burst-end", "")

        self.runtime.schedule_at(spec.at, _begin, label="loss:begin")
        self.runtime.schedule_at(spec.until, _end, label="loss:end")
