"""Fault and straggler injection.

The evaluation distinguishes (Sec. 6.1 "Straggler settings"):

* **honest stragglers** — leaders that follow the protocol but propose at
  ``1/k`` of the normal rate, without triggering timeouts, and do not include
  transactions in their blocks;
* **Byzantine stragglers** — honest-straggler behaviour plus rank
  manipulation: they collect more than 2f+1 rank reports, discard the highest
  and use only the lowest 2f+1 (Sec. 4.4, Appendix B case 3);
* **crash faults** — a replica stops at a configured time; the instance it
  leads recovers through a view change (Fig. 8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class StragglerSpec:
    """One straggling leader.

    ``slowdown`` is the ``k`` of the paper: the straggler proposes blocks at
    ``1/k`` of the normal leaders' rate.  ``byzantine`` selects the rank
    manipulation strategy on top of the slow proposals.
    """

    replica: int
    slowdown: float = 10.0
    byzantine: bool = False

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError("slowdown k must be >= 1")


@dataclass(frozen=True)
class CrashSpec:
    """Crash ``replica`` at virtual time ``at`` (seconds)."""

    replica: int
    at: float
    recover_at: Optional[float] = None


@dataclass
class FaultConfig:
    """All fault injection for one experiment run."""

    stragglers: Tuple[StragglerSpec, ...] = ()
    crashes: Tuple[CrashSpec, ...] = ()

    @classmethod
    def with_stragglers(
        cls,
        count: int,
        n: int,
        slowdown: float = 10.0,
        byzantine: bool = False,
        seed: int = 0,
    ) -> "FaultConfig":
        """Randomly select ``count`` straggling leaders out of ``n`` replicas.

        Matches the paper's setting where stragglers are chosen at random;
        the selection is deterministic for a given seed.
        """
        if count < 0 or count > n:
            raise ValueError("straggler count must be within [0, n]")
        rng = random.Random(seed)
        chosen = rng.sample(range(n), count) if count else []
        specs = tuple(
            StragglerSpec(replica=r, slowdown=slowdown, byzantine=byzantine)
            for r in sorted(chosen)
        )
        return cls(stragglers=specs)

    def straggler_map(self) -> Dict[int, StragglerSpec]:
        return {spec.replica: spec for spec in self.stragglers}

    def is_straggler(self, replica: int) -> bool:
        return any(spec.replica == replica for spec in self.stragglers)

    def is_byzantine(self, replica: int) -> bool:
        return any(spec.replica == replica and spec.byzantine for spec in self.stragglers)

    def slowdown_of(self, replica: int) -> float:
        for spec in self.stragglers:
            if spec.replica == replica:
                return spec.slowdown
        return 1.0

    def straggler_count(self) -> int:
        return len(self.stragglers)


class FaultInjector:
    """Schedules crash/recovery events against a set of nodes."""

    def __init__(self, simulator, nodes: Dict[int, "object"], config: FaultConfig) -> None:
        self.simulator = simulator
        self.nodes = nodes
        self.config = config
        self.crash_log: List[Tuple[float, int, str]] = []

    def arm(self) -> None:
        """Install all configured crash/recovery events on the simulator."""
        for spec in self.config.crashes:
            self._arm_crash(spec)

    def _arm_crash(self, spec: CrashSpec) -> None:
        node = self.nodes.get(spec.replica)
        if node is None:
            raise KeyError(f"cannot crash unknown replica {spec.replica}")

        def _crash() -> None:
            node.crash()
            self.crash_log.append((self.simulator.now(), spec.replica, "crash"))

        self.simulator.schedule_at(spec.at, _crash, label=f"crash:{spec.replica}")

        if spec.recover_at is not None:
            if spec.recover_at <= spec.at:
                raise ValueError("recovery must come after the crash")

            def _recover() -> None:
                node.recover()
                self.crash_log.append((self.simulator.now(), spec.replica, "recover"))

            self.simulator.schedule_at(
                spec.recover_at, _recover, label=f"recover:{spec.replica}"
            )
