"""Deterministic discrete-event simulation substrate.

This package stands in for the paper's AWS deployment.  It provides:

* an event queue and virtual clock (:mod:`repro.sim.events`,
  :mod:`repro.sim.clock`);
* a simulator that schedules timers and message deliveries
  (:mod:`repro.sim.simulator`);
* LAN / 4-region WAN latency models plus a bandwidth model
  (:mod:`repro.sim.latency`, :mod:`repro.sim.network`);
* a node (replica process) abstraction with message handlers and timers
  (:mod:`repro.sim.node`);
* fault injectors: honest stragglers, Byzantine stragglers (rank
  minimisation), and crash faults (:mod:`repro.sim.faults`);
* structured tracing (:mod:`repro.sim.trace`).

Every run is deterministic given its configuration and seed.
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.latency import (
    LatencyModel,
    UniformLatency,
    LanLatency,
    WanLatency,
    Region,
    DEFAULT_WAN_REGIONS,
)
from repro.sim.network import Network, NetworkConfig, NetworkStats
from repro.sim.node import Node, Timer
from repro.sim.faults import (
    FaultConfig,
    StragglerSpec,
    CrashSpec,
    FaultInjector,
)
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "VirtualClock",
    "Event",
    "EventQueue",
    "Simulator",
    "LatencyModel",
    "UniformLatency",
    "LanLatency",
    "WanLatency",
    "Region",
    "DEFAULT_WAN_REGIONS",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "Node",
    "Timer",
    "FaultConfig",
    "StragglerSpec",
    "CrashSpec",
    "FaultInjector",
    "TraceRecorder",
    "TraceEvent",
]
