"""Virtual clock for the discrete-event simulator."""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing virtual clock measured in seconds.

    The clock only moves when the simulator processes an event; protocol code
    reads it via :meth:`now` and never sleeps.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises ``ValueError`` if asked to move backwards, which would indicate
        a scheduling bug.
        """
        if timestamp < self._now:
            raise ValueError(
                f"clock cannot move backwards ({timestamp:.6f} < {self._now:.6f})"
            )
        self._now = timestamp

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self._now:.6f})"
