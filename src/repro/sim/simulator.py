"""Discrete-event simulator core."""

# staticcheck: hot-path
from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.trace import TraceRecorder


class Simulator:
    """Schedules callbacks on a virtual timeline and runs them in order.

    The simulator is intentionally small: protocol behaviour lives in the
    nodes; the network translates sends into scheduled deliveries.  The same
    simulator instance is shared by the network, every node, and the fault
    injectors so that all of them observe one consistent clock.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceRecorder] = None) -> None:
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.rng = random.Random(seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._events_processed = 0
        self._stopped = False
        #: hot-path alias for the network: schedule ``fn(a, b, c)`` with no
        #: past-time guard (delivery times are already validated upstream)
        self.schedule_call_unchecked = self.queue.push_call

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        return self.clock._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.clock._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now()})")
        return self.queue.push(time, callback, label)

    def schedule_after(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.clock._now + delay, callback, label)

    def schedule_call(self, time: float, fn: Callable[..., None], a: Any, b: Any, c: Any) -> None:
        """Hot path: schedule ``fn(a, b, c)`` with no cancellation handle.

        Used by the network for message deliveries — no closure or
        :class:`Event` is allocated.  The past-time guard is intentionally
        kept (a delivery scheduled in the past is always a latency-model
        bug).
        """
        if time < self.clock._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now()})")
        self.queue.push_call(time, fn, a, b, c)

    def cancel(self, event: Event) -> None:
        if event.popped or event.cancelled:
            return  # no-op cancels stay invisible (already fired/cancelled)
        if self.trace.enabled:
            # Effective cancellations are part of the schedule witness: a
            # replay that cancels a different event set is a divergence.
            self.trace.record(
                self.clock._now, "cancel", None, label=event.label, at=event.time
            )
        self.queue.cancel(event)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # -------------------------------------------------------------- run loop
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` passes, or limits hit.

        Returns the clock value when the loop stops.

        The loop reads the queue's heap directly: entries are either
        ``(time, seq, Event)`` or ``(time, seq, fn, a, b, c)`` direct calls
        (see :class:`~repro.sim.events.EventQueue`), and dispatching them
        inline avoids a Python frame per event.
        """
        self._stopped = False
        queue = self.queue
        heap = queue._heap
        clock = self.clock
        heappop = heapq.heappop
        processed = 0
        events_class = Event
        try:
            while heap and not self._stopped:
                # Pop eagerly (one heap operation per event instead of a
                # peek + pop); an entry beyond the horizon is pushed back.
                entry = heappop(heap)
                payload = entry[2]
                if payload.__class__ is events_class:
                    if payload.cancelled:
                        queue._forget(payload)
                        continue
                    if until is not None and entry[0] > until:
                        heapq.heappush(heap, entry)
                        clock.advance_to(until)
                        return until
                    clock._now = entry[0]
                    queue._forget(payload)
                    payload.popped = True
                    payload.callback()
                else:
                    if until is not None and entry[0] > until:
                        heapq.heappush(heap, entry)
                        clock.advance_to(until)
                        return until
                    clock._now = entry[0]
                    queue._live -= 1
                    payload(entry[3], entry[4], entry[5])
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            # Batched: one attribute store per run() instead of one per event.
            self._events_processed += processed
        # Fast-forward to the horizon only when the queue truly drained:
        # breaking on ``max_events`` (or ``stop()``) leaves live events behind,
        # and jumping the clock past them would make a later ``run()`` process
        # them "in the past".
        if until is not None and clock._now < until and not self._stopped and not queue:
            clock.advance_to(until)
        return clock._now

    def step(self) -> bool:
        """Process exactly one event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.callback()
        self._events_processed += 1
        return True
