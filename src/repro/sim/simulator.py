"""Discrete-event simulator core."""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventQueue
from repro.sim.trace import TraceRecorder


class Simulator:
    """Schedules callbacks on a virtual timeline and runs them in order.

    The simulator is intentionally small: protocol behaviour lives in the
    nodes; the network translates sends into scheduled deliveries.  The same
    simulator instance is shared by the network, every node, and the fault
    injectors so that all of them observe one consistent clock.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceRecorder] = None) -> None:
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.rng = random.Random(seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self._events_processed = 0
        self._stopped = False

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        return self.clock.now()

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self.now():
            raise ValueError(f"cannot schedule in the past ({time} < {self.now()})")
        return self.queue.push(time, callback, label)

    def schedule_after(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.queue.push(self.now() + delay, callback, label)

    def cancel(self, event: Event) -> None:
        self.queue.cancel(event)

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    # -------------------------------------------------------------- run loop
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` passes, or limits hit.

        Returns the clock value when the loop stops.
        """
        self._stopped = False
        processed = 0
        while self.queue and not self._stopped:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return self.now()
            event = self.queue.pop()
            if event is None:
                break
            self.clock.advance_to(event.time)
            event.callback()
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        # Fast-forward to the horizon only when the queue truly drained:
        # breaking on ``max_events`` (or ``stop()``) leaves live events behind,
        # and jumping the clock past them would make a later ``run()`` process
        # them "in the past".
        if until is not None and self.now() < until and not self._stopped and not self.queue:
            self.clock.advance_to(until)
        return self.now()

    def step(self) -> bool:
        """Process exactly one event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        event.callback()
        self._events_processed += 1
        return True
