"""Node (replica process) abstraction.

A :class:`Node` owns a node id, a reference to the simulator and network,
and provides timers plus send/multicast helpers.  Protocol replicas subclass
it and implement :meth:`on_message`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.sim.events import Event
from repro.sim.network import Network
from repro.sim.simulator import Simulator


@dataclass
class Timer:
    """A cancellable timer owned by a node."""

    name: str
    event: Event

    def cancel(self) -> None:
        self.event.cancel()

    @property
    def active(self) -> bool:
        return not self.event.cancelled


class Node:
    """Base class for simulated processes (replicas, clients, injectors)."""

    #: outbound message interceptor (the adversary subsystem's hook); when
    #: set, every outbound message passes through ``interceptor.outbound``,
    #: which may suppress, rewrite, or delay it.  None = honest node.
    interceptor: Optional[Any] = None

    def __init__(self, node_id: int, simulator: Simulator, network: Network) -> None:
        self.node_id = node_id
        self.simulator = simulator
        self.network = network
        self.crashed = False
        self._timers: Dict[str, Timer] = {}
        network.register(node_id, self._receive)

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        return self.simulator.now()

    # ------------------------------------------------------------- messaging
    def send(self, receiver: int, message: Any, size_bytes: int = 0) -> None:
        if self.crashed:
            return
        if self.interceptor is not None and self.interceptor.outbound(
            self, receiver, message, size_bytes
        ):
            return
        self.network.send(self.node_id, receiver, message, size_bytes)

    def multicast(self, receivers, message: Any, size_bytes: int = 0) -> None:
        if self.crashed:
            return
        if self.interceptor is not None:
            for receiver in receivers:
                self.send(receiver, message, size_bytes)
            return
        self.network.multicast(self.node_id, receivers, message, size_bytes)

    def _receive(self, sender: int, message: Any) -> None:
        if self.crashed:
            return
        self.on_message(sender, message)

    def on_message(self, sender: int, message: Any) -> None:
        """Handle an incoming message; subclasses override."""
        raise NotImplementedError

    # ----------------------------------------------------------------- timers
    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> Timer:
        """Start (or restart) a named timer firing ``delay`` seconds from now."""
        self.cancel_timer(name)

        def _fire() -> None:
            self._timers.pop(name, None)
            if not self.crashed:
                callback()

        event = self.simulator.schedule_after(delay, _fire, label=f"timer:{self.node_id}:{name}")
        timer = Timer(name=name, event=event)
        self._timers[name] = timer
        return timer

    def cancel_timer(self, name: str) -> None:
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()

    def has_timer(self, name: str) -> bool:
        timer = self._timers.get(name)
        return timer is not None and timer.active

    # ----------------------------------------------------------------- faults
    def crash(self) -> None:
        """Crash the node: it stops sending, receiving, and firing timers."""
        self.crashed = True
        for timer in list(self._timers.values()):
            timer.cancel()
        self._timers.clear()

    def recover(self) -> None:
        """Recover a crashed node (it rejoins with its pre-crash state)."""
        self.crashed = False

    def start(self) -> None:
        """Hook called once by the system after every node is constructed."""
