"""Node (replica process) abstraction.

A :class:`Node` owns a node id and a reference to its execution
:class:`~repro.runtime.base.Runtime`, and provides timers plus
send/multicast helpers.  Protocol replicas subclass it and implement
:meth:`on_message`.  Nodes are *sans-I/O*: they never touch a simulator or
a network directly, so the same node runs on the discrete-event backend and
on the wall-clock backend.

For the sim-layer tests and legacy wiring, ``Node(node_id, simulator,
network)`` still works: the pair is adapted into a
:class:`~repro.runtime.des.DESRuntime` on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional


@dataclass
class Timer:
    """A cancellable timer owned by a node."""

    name: str
    event: Any  # a runtime scheduling handle: ``cancel()`` + ``cancelled``

    def cancel(self) -> None:
        self.event.cancel()

    @property
    def active(self) -> bool:
        return not self.event.cancelled


class Node:
    """Base class for simulated processes (replicas, clients, injectors)."""

    #: outbound message interceptor (the adversary subsystem's hook); when
    #: set, every outbound message passes through ``interceptor.outbound``,
    #: which may suppress, rewrite, or delay it.  None = honest node.
    interceptor: Optional[Any] = None

    def __init__(self, node_id: int, runtime: Any, network: Any = None) -> None:
        if network is not None:
            # Legacy wiring: Node(node_id, simulator, network).
            from repro.runtime.des import DESRuntime

            runtime = DESRuntime.wrap(runtime, network)
        self.node_id = node_id
        self.runtime = runtime
        self.crashed = False
        self._timers: Dict[str, Timer] = {}
        runtime.register(node_id, self._receive)
        # Hot-path binding: ``self.now()`` goes straight to the backend clock.
        self.now = runtime.now

    # ------------------------------------------------------------------ time
    def now(self) -> float:  # shadowed per-instance in __init__
        return self.runtime.now()

    # ------------------------------------------------------------- messaging
    def send(self, receiver: int, message: Any, size_bytes: int = 0) -> None:
        if self.crashed:
            return
        if self.interceptor is not None and self.interceptor.outbound(
            self, receiver, message, size_bytes
        ):
            return
        self.runtime.send(self.node_id, receiver, message, size_bytes)

    def multicast(self, receivers, message: Any, size_bytes: int = 0) -> None:
        """Send ``message`` to every receiver through one transport fan-out.

        With an interceptor installed, each receiver is first offered to
        ``interceptor.outbound`` (which may suppress, rewrite, or delay the
        copy); the *pass-through* receivers then go through the exact same
        fused ``runtime.multicast`` fan-out as the honest path, so
        bandwidth, loss, and duplicate accounting cannot diverge between
        the two paths.
        """
        if self.crashed:
            return
        if self.interceptor is not None:
            outbound = self.interceptor.outbound
            receivers = [
                receiver
                for receiver in receivers
                if not outbound(self, receiver, message, size_bytes)
            ]
            if not receivers:
                return
        self.runtime.multicast(self.node_id, receivers, message, size_bytes)

    def _receive(self, sender: int, message: Any) -> None:
        if self.crashed:
            return
        self.on_message(sender, message)

    def on_message(self, sender: int, message: Any) -> None:
        """Handle an incoming message; subclasses override."""
        raise NotImplementedError

    # ----------------------------------------------------------------- timers
    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> Timer:
        """Start (or restart) a named timer firing ``delay`` seconds from now."""
        self.cancel_timer(name)

        def _fire() -> None:
            self._timers.pop(name, None)
            if not self.crashed:
                callback()

        event = self.runtime.schedule_after(delay, _fire, name)
        timer = Timer(name=name, event=event)
        self._timers[name] = timer
        return timer

    def cancel_timer(self, name: str) -> None:
        timer = self._timers.pop(name, None)
        if timer is not None:
            # Through the runtime (not event.cancel() directly) so the DES
            # backend can record the cancellation in the schedule trace.
            self.runtime.cancel(timer.event)

    def has_timer(self, name: str) -> bool:
        timer = self._timers.get(name)
        return timer is not None and timer.active

    # ----------------------------------------------------------------- faults
    def crash(self) -> None:
        """Crash the node: it stops sending, receiving, and firing timers."""
        self.crashed = True
        for timer in list(self._timers.values()):
            self.runtime.cancel(timer.event)
        self._timers.clear()

    def recover(self) -> None:
        """Recover a crashed node.

        The node rejoins with its pre-crash *state* (message logs, votes,
        ordering progress), but its timers were dropped by :meth:`crash` —
        a recovered process must re-arm whatever timers its protocol needs,
        which is exactly what the :meth:`on_recover` hook is for.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.on_recover()

    def on_recover(self) -> None:
        """Hook: re-arm protocol-level timers after a crash–recover cycle.

        Called by :meth:`recover` once ``crashed`` is cleared.  The base
        node has no timers worth resurrecting; protocol replicas override
        this (see ``MultiBFTReplica.on_recover``, which restarts proposal
        pacing for the instances the replica leads).
        """

    def start(self) -> None:
        """Hook called once by the system after every node is constructed."""
