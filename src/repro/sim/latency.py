"""Network latency models.

The paper deploys replicas in a LAN (one AWS region, 1 Gbps) and a WAN
spanning four regions: France (eu-west-3), N. America, Australia and Tokyo.
We model point-to-point propagation delay with a symmetric region matrix whose
entries approximate public inter-region RTT/2 figures, plus a small jitter
term drawn from a seeded RNG so repeated sends do not synchronise artificially.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Region:
    """A deployment region with a human-readable name."""

    name: str


DEFAULT_WAN_REGIONS: Tuple[Region, ...] = (
    Region("eu-west-3"),      # Paris, France
    Region("us-east-1"),      # N. Virginia, America
    Region("ap-southeast-2"), # Sydney, Australia
    Region("ap-northeast-1"), # Tokyo
)

# One-way delays (seconds) between the default WAN regions, approximating
# public inter-region RTT measurements divided by two.
_WAN_ONE_WAY_DELAY: Dict[Tuple[str, str], float] = {
    ("eu-west-3", "eu-west-3"): 0.0005,
    ("us-east-1", "us-east-1"): 0.0005,
    ("ap-southeast-2", "ap-southeast-2"): 0.0005,
    ("ap-northeast-1", "ap-northeast-1"): 0.0005,
    ("eu-west-3", "us-east-1"): 0.040,
    ("eu-west-3", "ap-southeast-2"): 0.140,
    ("eu-west-3", "ap-northeast-1"): 0.110,
    ("us-east-1", "ap-southeast-2"): 0.100,
    ("us-east-1", "ap-northeast-1"): 0.075,
    ("ap-southeast-2", "ap-northeast-1"): 0.055,
}


class LatencyModel:
    """Base class: maps (sender, receiver) to a propagation delay in seconds."""

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class UniformLatency(LatencyModel):
    """Constant delay plus uniform jitter — useful for tests."""

    def __init__(self, base: float = 0.001, jitter: float = 0.0) -> None:
        if base < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        if sender == receiver:
            return 0.0
        return self.base + (rng.random() * self.jitter if self.jitter else 0.0)


class LanLatency(LatencyModel):
    """Single-datacenter latency: sub-millisecond with small jitter."""

    def __init__(self, base: float = 0.0005, jitter: float = 0.0003) -> None:
        self.base = base
        self.jitter = jitter

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        if sender == receiver:
            return 0.0
        return self.base + rng.random() * self.jitter


class WanLatency(LatencyModel):
    """Four-region WAN latency as in the paper's deployment.

    Replicas are assigned to regions round-robin (the paper distributes them
    evenly across the four regions).
    """

    def __init__(
        self,
        n: int,
        regions: Sequence[Region] = DEFAULT_WAN_REGIONS,
        jitter: float = 0.005,
    ) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.regions: Tuple[Region, ...] = tuple(regions)
        self.jitter = jitter
        self._assignment: List[str] = [
            self.regions[i % len(self.regions)].name for i in range(n)
        ]

    def region_of(self, replica: int) -> str:
        return self._assignment[replica]

    def _base_delay(self, region_a: str, region_b: str) -> float:
        key = (region_a, region_b)
        if key in _WAN_ONE_WAY_DELAY:
            return _WAN_ONE_WAY_DELAY[key]
        key = (region_b, region_a)
        if key in _WAN_ONE_WAY_DELAY:
            return _WAN_ONE_WAY_DELAY[key]
        # Unknown custom region pair: assume a generic intercontinental delay.
        return 0.100

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        if sender == receiver:
            return 0.0
        base = self._base_delay(self.region_of(sender), self.region_of(receiver))
        return base + rng.random() * self.jitter

    def describe(self) -> str:
        return f"WAN({len(self.regions)} regions)"
