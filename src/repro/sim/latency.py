"""Network latency models.

The paper deploys replicas in a LAN (one AWS region, 1 Gbps) and a WAN
spanning four regions: France (eu-west-3), N. America, Australia and Tokyo.
We model point-to-point propagation delay with a symmetric region matrix whose
entries approximate public inter-region RTT/2 figures, plus a small jitter
term drawn from a seeded RNG so repeated sends do not synchronise artificially.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Region:
    """A deployment region with a human-readable name."""

    name: str


#: one-way delay between two nodes in the same region/datacenter (seconds)
INTRA_REGION_DELAY = 0.0005

DEFAULT_WAN_REGIONS: Tuple[Region, ...] = (
    Region("eu-west-3"),      # Paris, France
    Region("us-east-1"),      # N. Virginia, America
    Region("ap-southeast-2"), # Sydney, Australia
    Region("ap-northeast-1"), # Tokyo
)

# One-way delays (seconds) between the default WAN regions, approximating
# public inter-region RTT measurements divided by two.
_WAN_ONE_WAY_DELAY: Dict[Tuple[str, str], float] = {
    ("eu-west-3", "eu-west-3"): 0.0005,
    ("us-east-1", "us-east-1"): 0.0005,
    ("ap-southeast-2", "ap-southeast-2"): 0.0005,
    ("ap-northeast-1", "ap-northeast-1"): 0.0005,
    ("eu-west-3", "us-east-1"): 0.040,
    ("eu-west-3", "ap-southeast-2"): 0.140,
    ("eu-west-3", "ap-northeast-1"): 0.110,
    ("us-east-1", "ap-southeast-2"): 0.100,
    ("us-east-1", "ap-northeast-1"): 0.075,
    ("ap-southeast-2", "ap-northeast-1"): 0.055,
}


class LatencyModel:
    """Base class: maps (sender, receiver) to a propagation delay in seconds."""

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        raise NotImplementedError

    def min_delay(self, sender: int, receiver: int) -> float:
        """Deterministic lower bound on :meth:`delay` for this pair.

        The sharded runtime derives its conservative-synchronization
        lookahead from this bound (see :mod:`repro.shard.lookahead`): the
        contract is ``delay(s, r, rng) >= min_delay(s, r)`` for every RNG
        state.  Models that cannot promise a bound must leave this
        unimplemented, which makes the sharded runtime refuse the scenario
        instead of silently desynchronizing.
        """
        raise NotImplementedError(
            f"{type(self).__name__} provides no deterministic delay lower "
            "bound (required for the sharded runtime's lookahead)"
        )

    def multicast_profile(self, sender: int, receivers) -> Optional[tuple]:
        """Optional fan-out fast path: ``(base_row, jitter)`` or None.

        ``base_row[r]`` is the deterministic base delay ``sender -> r``
        (guaranteed filled for every id in ``receivers``) and ``jitter``
        the uniform jitter magnitude; the transport then computes
        ``base_row[r] + rng.random() * jitter`` inline — **exactly** one RNG
        draw per receiver, matching :meth:`delay` draw-for-draw so RNG
        streams stay byte-identical.  Implementations must resolve base
        delays lazily per pair (only for the ``receivers`` asked about) so
        unknown-pair warn/raise semantics stay tied to first *use*, exactly
        like :meth:`delay`.  Models whose draw count depends on parameters
        (e.g. zero-jitter skips the draw) must return None unless they
        encode that case in the row/jitter pair.  The base implementation
        returns None (per-receiver ``delay`` calls).
        """
        return None

    def describe(self) -> str:
        return type(self).__name__


class UniformLatency(LatencyModel):
    """Constant delay plus uniform jitter — useful for tests."""

    def __init__(self, base: float = 0.001, jitter: float = 0.0) -> None:
        if base < 0 or jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        if sender == receiver:
            return 0.0
        return self.base + (rng.random() * self.jitter if self.jitter else 0.0)

    def min_delay(self, sender: int, receiver: int) -> float:
        return 0.0 if sender == receiver else self.base


class LanLatency(LatencyModel):
    """Single-datacenter latency: sub-millisecond with small jitter."""

    def __init__(self, base: float = 0.0005, jitter: float = 0.0003) -> None:
        self.base = base
        self.jitter = jitter

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        if sender == receiver:
            return 0.0
        return self.base + rng.random() * self.jitter

    def min_delay(self, sender: int, receiver: int) -> float:
        return 0.0 if sender == receiver else self.base

    def multicast_profile(self, sender: int, receivers):
        """Constant row (self pairs are handled by the transport's no-draw
        branch).  The row grows to cover the highest receiver id asked
        about (``receivers`` arrive ascending, so the last one bounds it)."""
        row = getattr(self, "_profile_row", None)
        highest = max(receivers) if receivers else 0
        if row is None or highest >= len(row):
            row = self._profile_row = [self.base] * (max(highest, sender, 255) + 1)
        return row, self.jitter


class WanLatency(LatencyModel):
    """Four-region WAN latency as in the paper's deployment.

    Replicas are assigned to regions round-robin (the paper distributes them
    evenly across the four regions).
    """

    def __init__(
        self,
        n: int,
        regions: Sequence[Region] = DEFAULT_WAN_REGIONS,
        jitter: float = 0.005,
        default_delay: Optional[float] = 0.100,
    ) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.regions: Tuple[Region, ...] = tuple(regions)
        self.jitter = jitter
        self.default_delay = default_delay
        self._warned_pairs: set = set()
        self._assignment: List[str] = [
            self.regions[i % len(self.regions)].name for i in range(n)
        ]
        # Hot path: base delays are deterministic per (sender, receiver), so
        # they are cached in a flat n*n table, filled lazily through
        # ``_base_delay`` (laziness keeps the unknown-pair warning/raise
        # semantics tied to first *use*, exactly as before).
        self._n = n
        self._pair_base: List[Optional[float]] = [None] * (n * n)
        self._profile_rows: Dict[int, List[Optional[float]]] = {}

    def region_of(self, replica: int) -> str:
        return self._assignment[replica]

    def _base_delay(self, region_a: str, region_b: str) -> float:
        key = (region_a, region_b)
        if key in _WAN_ONE_WAY_DELAY:
            return _WAN_ONE_WAY_DELAY[key]
        key = (region_b, region_a)
        if key in _WAN_ONE_WAY_DELAY:
            return _WAN_ONE_WAY_DELAY[key]
        # Unregistered region pair: custom topologies should use
        # TopologyLatency (or pass default_delay explicitly) — fail loudly
        # instead of silently handing out a made-up number.
        if self.default_delay is None:
            raise KeyError(
                f"no WAN delay registered for region pair {region_a!r} <-> {region_b!r}"
            )
        pair = (min(region_a, region_b), max(region_a, region_b))
        if pair not in self._warned_pairs:
            self._warned_pairs.add(pair)
            warnings.warn(
                f"WanLatency: unregistered region pair {region_a!r} <-> {region_b!r}; "
                f"falling back to default_delay={self.default_delay}s "
                "(use TopologyLatency for custom topologies)",
                stacklevel=3,
            )
        return self.default_delay

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        if sender == receiver:
            return 0.0
        index = sender * self._n + receiver
        base = self._pair_base[index]
        if base is None:
            base = self._base_delay(self.region_of(sender), self.region_of(receiver))
            self._pair_base[index] = base
        return base + rng.random() * self.jitter

    def min_delay(self, sender: int, receiver: int) -> float:
        if sender == receiver:
            return 0.0
        return self._base_delay(self.region_of(sender), self.region_of(receiver))

    def multicast_profile(self, sender: int, receivers):
        """(base_row, jitter) for the transport's fused fan-out.

        ``delay`` always draws exactly one jitter sample per pair (even at
        jitter 0), so the inline ``base + rng.random() * jitter`` matches it
        draw-for-draw.  The row is filled **lazily, per requested pair**, so
        the unknown-pair warn/raise semantics of ``_base_delay`` fire on
        first use of that pair — never for pairs a filtered fan-out avoids.
        """
        row = self._profile_rows.get(sender)
        if row is None:
            row = self._profile_rows[sender] = [None] * self._n
        n = self._n
        pair_base = self._pair_base
        for receiver in receivers:
            if row[receiver] is None:
                if receiver == sender:
                    # The transport's no-draw self branch never reads this,
                    # but keep the slot well-defined.
                    row[receiver] = 0.0
                    continue
                index = sender * n + receiver
                base = pair_base[index]
                if base is None:
                    base = pair_base[index] = self._base_delay(
                        self.region_of(sender), self.region_of(receiver)
                    )
                row[receiver] = base
        return row, self.jitter

    def describe(self) -> str:
        return f"WAN({len(self.regions)} regions)"


class TopologyLatency(LatencyModel):
    """Arbitrary region topology: explicit placement and a per-link delay matrix.

    Generalises :class:`WanLatency` to any region set: the delay matrix may be
    asymmetric (``(a, b)`` and ``(b, a)`` can differ — satellite uplinks,
    policy-routed paths), placement is an explicit per-replica region list,
    and unknown pairs raise unless ``default_delay`` is given, so custom
    topologies fail loudly rather than silently getting a canned number.
    """

    def __init__(
        self,
        assignment: Sequence[str],
        delays: Mapping[Tuple[str, str], float],
        jitter: float = 0.005,
        symmetric: bool = True,
        default_delay: Optional[float] = None,
    ) -> None:
        if not assignment:
            raise ValueError("assignment must name a region per replica")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self._assignment: Tuple[str, ...] = tuple(assignment)
        self.jitter = jitter
        self.symmetric = symmetric
        self.default_delay = default_delay
        self._delays: Dict[Tuple[str, str], float] = {}
        for (a, b), value in dict(delays).items():
            if value < 0:
                raise ValueError(f"negative delay for link {a!r}->{b!r}")
            self._delays[(a, b)] = value
            if symmetric:
                self._delays.setdefault((b, a), value)
        # dict.fromkeys, not set(): first-appearance order is deterministic
        # run-to-run (DET-005)
        for region in dict.fromkeys(self._assignment):
            self._delays.setdefault((region, region), INTRA_REGION_DELAY)

    @property
    def regions(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for name in self._assignment:
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def region_of(self, replica: int) -> str:
        return self._assignment[replica]

    def _base_delay(self, region_a: str, region_b: str) -> float:
        try:
            return self._delays[(region_a, region_b)]
        except KeyError:
            if self.default_delay is not None:
                return self.default_delay
            raise KeyError(
                f"no delay registered for link {region_a!r} -> {region_b!r}"
            ) from None

    def delay(self, sender: int, receiver: int, rng: random.Random) -> float:
        if sender == receiver:
            return 0.0
        base = self._base_delay(self.region_of(sender), self.region_of(receiver))
        return base + (rng.random() * self.jitter if self.jitter else 0.0)

    def min_delay(self, sender: int, receiver: int) -> float:
        if sender == receiver:
            return 0.0
        return self._base_delay(self.region_of(sender), self.region_of(receiver))

    def describe(self) -> str:
        kind = "sym" if self.symmetric else "asym"
        return f"Topology({len(self.regions)} regions, {kind})"
