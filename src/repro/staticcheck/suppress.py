"""Inline suppression comments.

Syntax (one comment, same line as the violation or a standalone comment on
the line directly above it)::

    risky_thing()  # staticcheck: ignore[DET-005] -- reason why this is fine
    # staticcheck: ignore[ISO-001,HOT-003] -- shared registry, mutated via register()
    next_line_is_covered()

``ignore[*]`` suppresses every rule on the target line.  The ``-- reason``
clause is **mandatory policy**: a suppression without one is itself reported
as an ``SC-001`` violation, so the tree never accumulates unexplained
exemptions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.staticcheck.violations import Violation

_SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore\[([A-Za-z*][A-Za-z0-9*,\- ]*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)

#: rule id of the meta-rule "suppression without a reason string"
REASONLESS_RULE = "SC-001"


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``# staticcheck: ignore[...]`` comment."""

    line: int  # line the comment sits on (1-based)
    rules: Tuple[str, ...]  # suppressed rule ids, or ("*",)
    reason: str  # empty when the mandatory reason clause is missing
    standalone: bool  # True when the line holds only the comment

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def parse_suppressions(lines: List[str]) -> Dict[int, Suppression]:
    """Map *target* line number -> suppression covering it.

    A standalone comment covers the next line; an end-of-line comment covers
    its own line.
    """
    by_target: Dict[int, Suppression] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        standalone = text.strip().startswith("#")
        suppression = Suppression(
            line=lineno,
            rules=rules,
            reason=(match.group("reason") or "").strip(),
            standalone=standalone,
        )
        target = lineno + 1 if standalone else lineno
        by_target[target] = suppression
    return by_target


def apply_suppressions(
    violations: List[Violation],
    by_target: Dict[int, Suppression],
    path: str,
    lines: List[str],
) -> List[Violation]:
    """Drop suppressed violations; report reasonless suppression comments."""
    kept = [
        v
        for v in violations
        if not (
            (s := by_target.get(v.line)) is not None and s.covers(v.rule)
        )
    ]
    for suppression in by_target.values():
        if suppression.reason:
            continue
        snippet = lines[suppression.line - 1].strip()
        kept.append(
            Violation(
                rule=REASONLESS_RULE,
                severity="error",
                path=path,
                line=suppression.line,
                col=0,
                message=(
                    "suppression has no reason string; write "
                    "'# staticcheck: ignore[RULE] -- why this is fine'"
                ),
                snippet=snippet,
            )
        )
    return kept
