"""repro.staticcheck — determinism & isolation static analysis.

An AST-based rule engine with project-specific rules over ``src/repro/``:

* **SEAM** — the sans-I/O architecture boundary: protocol-layer packages
  talk only to the :mod:`repro.runtime` seam, never the DES engine or
  ``asyncio``/``time``/``threading`` directly;
* **DET** — no nondeterminism sources (wall clocks, the process-global RNG,
  OS entropy, ``id()`` ordering, bare-set iteration) in DES-reachable code;
* **ISO** — shared-state/aliasing rules that gate the sharded multi-core
  DES: no module-level mutable state in protocols/consensus, no mutation of
  received messages in handlers, no frozen-flyweight escapes;
* **HOT** — hot-path hygiene for modules marked ``# staticcheck: hot-path``:
  frozen+slots message dataclasses, no per-event string formatting, no
  mutable default arguments (tree-wide).

Run it with ``python -m repro.staticcheck src``; suppress a single line
with ``# staticcheck: ignore[RULE-ID] -- reason``.  See EXPERIMENTS.md
("Static checks") for the full catalog and policy.
"""

from repro.staticcheck.engine import (
    CheckReport,
    SourceModule,
    check_paths,
    check_source,
)
from repro.staticcheck.rules import ALL_RULES, ALL_RULE_IDS, Rule, select_rules
from repro.staticcheck.violations import Violation

__all__ = [
    "ALL_RULES",
    "ALL_RULE_IDS",
    "CheckReport",
    "Rule",
    "SourceModule",
    "Violation",
    "check_paths",
    "check_source",
    "select_rules",
]
