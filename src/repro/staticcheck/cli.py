"""The ``python -m repro.staticcheck`` command line.

Usage::

    python -m repro.staticcheck src                    # check the tree
    python -m repro.staticcheck src --format json      # machine-readable
    python -m repro.staticcheck src --select DET       # one family
    python -m repro.staticcheck src --ignore HOT-002   # drop one rule
    python -m repro.staticcheck --list-rules           # the catalog
    python -m repro.staticcheck src --write-baseline staticcheck-baseline.json
    python -m repro.staticcheck src --baseline staticcheck-baseline.json

Exit codes: 0 clean (or baseline-covered), 1 violations, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.staticcheck.baseline import load_baseline, write_baseline
from repro.staticcheck.engine import CheckReport, check_paths
from repro.staticcheck.rules import ALL_RULES, select_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=(
            "Determinism & isolation static analysis for the repro tree: "
            "SEAM (sans-I/O boundary), DET (nondeterminism sources), "
            "ISO (shared state / aliasing), HOT (hot-path hygiene)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="only run these rule ids or family prefixes (repeatable, "
        "comma-separable): --select DET --select ISO-001",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="skip these rule ids or family prefixes (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress violations whose fingerprints appear in FILE",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current violations to FILE as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print only the summary line"
    )
    return parser


def _split_selectors(raw: List[str]) -> List[str]:
    return [part.strip() for item in raw for part in item.split(",") if part.strip()]


def _print_rule_catalog(stream) -> None:
    stream.write(f"{'ID':<10} {'severity':<9} {'scope':<44} rule\n")
    for rule in ALL_RULES:
        stream.write(f"{rule.id:<10} {rule.severity:<9} {rule.scope:<44} {rule.name}\n")


def _render_text(report: CheckReport, quiet: bool, stream) -> None:
    everything = report.parse_errors + report.violations
    if not quiet:
        for violation in everything:
            stream.write(violation.format_text() + "\n")
    noun = "violation" if len(everything) == 1 else "violations"
    stream.write(
        f"staticcheck: {len(everything)} {noun} in "
        f"{report.checked_files} files\n"
    )


def _render_json(report: CheckReport, stream) -> None:
    counts: dict = {}
    for violation in report.violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    payload = {
        "version": 1,
        "checked_files": report.checked_files,
        "violations": [
            v.to_json() for v in report.parse_errors + report.violations
        ],
        "counts": counts,
        "exit_code": report.exit_code,
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    stream = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_catalog(stream)
        return 0

    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    try:
        rules = select_rules(
            _split_selectors(args.select), _split_selectors(args.ignore)
        )
    except ValueError as exc:
        parser.error(str(exc))

    baseline_fingerprints = None
    if args.baseline:
        try:
            baseline_fingerprints = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            parser.error(f"cannot load baseline: {exc}")

    report = check_paths(
        paths, rules=rules, baseline_fingerprints=baseline_fingerprints
    )

    if args.write_baseline:
        count = write_baseline(args.write_baseline, report.violations)
        stream.write(
            f"staticcheck: wrote {count} baseline entries to "
            f"{args.write_baseline}\n"
        )
        return 0

    if args.format == "json":
        _render_json(report, stream)
    else:
        _render_text(report, args.quiet, stream)
    return report.exit_code
