"""HOT rules: hot-path hygiene for modules carrying the hot-path marker.

A module opts in with a marker comment near its docstring::

    # staticcheck: hot-path

The PR 4/PR 5 hot-path overhauls established these by convention; the rules
make them permanent: flyweight message classes stay ``frozen=True,
slots=True`` dataclasses, no string formatting runs per-event (f-strings in
``raise``/``assert`` and ``__repr__``/``__str__`` are cold and exempt), and
no function grows a mutable default argument (that one is tree-wide — it is
an aliasing bug everywhere, not just on hot paths).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.staticcheck.rules.base import (
    Rule,
    collect_imports,
    dotted_name,
    is_mutable_literal,
    walk_with_context,
)
from repro.staticcheck.violations import Violation


class HotRule(Rule):
    scope = "modules marked '# staticcheck: hot-path'"

    def applies(self, module) -> bool:
        return module.is_hot


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    for decorator in node.decorator_list:
        name = dotted_name(
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        if name in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


def _truthy_keyword(decorator: ast.AST, keyword_name: str) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == keyword_name:
            return isinstance(keyword.value, ast.Constant) and bool(
                keyword.value.value
            )
    return False


class HotMessageShapeRule(HotRule):
    id = "HOT-001"
    name = "message dataclasses must be frozen + slots"

    def check(self, module) -> Iterator[Violation]:
        # message-likeness is transitive within the module: a class is a
        # message if its name ends in "Message" or it derives from one
        message_classes: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [dotted_name(base) or "" for base in node.bases]
            is_message = node.name.endswith("Message") or any(
                name.endswith("Message") or name.split(".")[-1] in message_classes
                for name in base_names
            )
            if not is_message:
                continue
            message_classes.add(node.name)
            decorator = _dataclass_decorator(node)
            if decorator is None:
                yield self.violation(
                    module,
                    node,
                    f"message class {node.name} is not a dataclass; hot-path "
                    "messages are @dataclass(frozen=True, slots=True) "
                    "flyweights",
                )
                continue
            missing = [
                flag
                for flag in ("frozen", "slots")
                if not _truthy_keyword(decorator, flag)
            ]
            if missing:
                yield self.violation(
                    module,
                    node,
                    f"message class {node.name} must set "
                    f"{', '.join(f'{flag}=True' for flag in missing)} on "
                    "@dataclass (flyweight contract)",
                )


#: dunder methods that only run in debuggers/logs, never per-event
COLD_FUNCTIONS = ("__repr__", "__str__")


class HotStringFormattingRule(HotRule):
    id = "HOT-002"
    name = "no per-event string formatting"

    def check(self, module) -> Iterator[Violation]:
        for node, ctx in walk_with_context(module.tree):
            if ctx.in_raise or ctx.in_assert or ctx.function in COLD_FUNCTIONS:
                continue
            if ctx.function is None:
                continue  # module/class level runs once at import
            if isinstance(node, ast.JoinedStr):
                yield self.violation(
                    module,
                    node,
                    "f-string on a hot path; precompute the string or move "
                    "formatting off the per-event path",
                )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if isinstance(node.left, ast.Constant) and isinstance(
                    node.left.value, str
                ):
                    yield self.violation(
                        module, node, "%-formatting on a hot path"
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "format"
                    and isinstance(func.value, ast.Constant)
                    and isinstance(func.value.value, str)
                ):
                    yield self.violation(
                        module, node, "str.format() on a hot path"
                    )


class HotMutableDefaultRule(Rule):
    id = "HOT-003"
    name = "no mutable default arguments"
    scope = "all scanned files"

    def check(self, module) -> Iterator[Violation]:
        imports = collect_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if is_mutable_literal(default, imports):
                    yield self.violation(
                        module,
                        default,
                        f"mutable default argument in {node.name}(); the "
                        "default is shared across every call — use None and "
                        "construct inside",
                    )


HOT_RULES = (HotMessageShapeRule(), HotStringFormattingRule(), HotMutableDefaultRule())
