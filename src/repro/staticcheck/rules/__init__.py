"""The rule registry.

Five families, fifteen rules::

    SEAM-00x   sans-I/O architecture boundary        (rules/seam.py)
    DET-00x    determinism sources                   (rules/det.py)
    ISO-00x    shared-state / aliasing               (rules/iso.py)
    HOT-00x    hot-path hygiene                      (rules/hot.py)
    SHARD-00x  cross-process isolation (sharded DES) (rules/shard.py)

plus the engine-level meta-ids ``SC-000`` (parse error) and ``SC-001``
(suppression without a reason), which are not selectable rules.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.staticcheck.rules.base import Rule
from repro.staticcheck.rules.det import DET_RULES
from repro.staticcheck.rules.hot import HOT_RULES
from repro.staticcheck.rules.iso import ISO_RULES
from repro.staticcheck.rules.seam import SEAM_RULES
from repro.staticcheck.rules.shard import SHARD_RULES

#: every registered rule, in catalog order
ALL_RULES: Tuple[Rule, ...] = SEAM_RULES + DET_RULES + ISO_RULES + HOT_RULES + SHARD_RULES

ALL_RULE_IDS: Tuple[str, ...] = tuple(rule.id for rule in ALL_RULES)


def select_rules(
    select: Sequence[str] = (), ignore: Sequence[str] = ()
) -> List[Rule]:
    """Filter the registry by id or family prefix (``DET`` == all DET-*).

    Unknown selectors raise ``ValueError`` so typos fail loudly instead of
    silently checking nothing.
    """

    def matches(rule: Rule, selector: str) -> bool:
        return rule.id == selector or rule.id.startswith(selector.rstrip("-") + "-")

    for selector in tuple(select) + tuple(ignore):
        if not any(matches(rule, selector) for rule in ALL_RULES):
            raise ValueError(
                f"unknown rule selector {selector!r}; known: {', '.join(ALL_RULE_IDS)}"
            )
    chosen = [
        rule
        for rule in ALL_RULES
        if (not select or any(matches(rule, s) for s in select))
        and not any(matches(rule, s) for s in ignore)
    ]
    return chosen


__all__ = ["ALL_RULES", "ALL_RULE_IDS", "Rule", "select_rules"]
