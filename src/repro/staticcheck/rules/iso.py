"""ISO rules: shared-state and aliasing hygiene (the sharding gate).

The planned multi-core DES shards replicas/instances across worker
processes.  That is only a refactor — not a behaviour change — if protocol
code keeps all state per-instance and treats received messages as immutable
values.  These rules pin the three ways that invariant historically breaks:
module-level mutable state, in-place mutation of received messages inside
handlers, and ``object.__setattr__`` escapes on frozen flyweights.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Set

from repro.staticcheck.rules.base import (
    Rule,
    SANS_IO_PACKAGES,
    STATE_FREE_PACKAGES,
    attribute_root,
    collect_imports,
    dotted_name,
    is_mutable_literal,
    walk_with_context,
)
from repro.staticcheck.violations import Violation


class IsoModuleStateRule(Rule):
    id = "ISO-001"
    name = "no module-level mutable state"
    scope = "repro.{protocols,consensus}"

    def applies(self, module) -> bool:
        return module.package in STATE_FREE_PACKAGES

    def check(self, module) -> Iterator[Violation]:
        imports = collect_imports(module.tree)
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            # dunders (__all__ & co.) are assign-once export metadata
            names = [n for n in names if not (n.startswith("__") and n.endswith("__"))]
            if names and is_mutable_literal(value, imports):
                yield self.violation(
                    module,
                    node,
                    f"module-level mutable state {', '.join(names)}; worker "
                    "processes must not share import-time containers — make "
                    "it per-instance or a frozen constant",
                )


#: handler naming convention across the protocol stack
HANDLER_NAME_RE = re.compile(r"^_?(on|handle)_")

#: in-place mutator methods on the standard containers
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "sort",
        "reverse",
    }
)


class IsoHandlerMutationRule(Rule):
    id = "ISO-002"
    name = "handlers must not mutate received messages"
    scope = "repro.{protocols,consensus,core,adversary}"

    def applies(self, module) -> bool:
        return module.package in SANS_IO_PACKAGES

    def _handler_params(self, fn) -> Set[str]:
        args = fn.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return {n for n in names if n not in ("self", "cls")}

    def _check_handler(self, module, fn) -> Iterator[Violation]:
        params = self._handler_params(fn)
        if not params:
            return

        def rooted_in_param(target: ast.AST) -> Optional[str]:
            # only *into* a parameter counts: ``message.x``/``message.x[k]``,
            # not rebinding the bare name (which is local)
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                return None
            root = attribute_root(target)
            return root if root in params else None

        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                    if isinstance(node, ast.AugAssign)
                    else node.targets
                )
                for target in targets:
                    root = rooted_in_param(target)
                    if root is not None:
                        yield self.violation(
                            module,
                            node,
                            f"handler {fn.name}() mutates received object "
                            f"{root!r}; messages are shared flyweights — "
                            "build a new value instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
                    root = rooted_in_param(func.value)
                    if root is not None:
                        yield self.violation(
                            module,
                            node,
                            f"handler {fn.name}() calls .{func.attr}() on "
                            f"received object {root!r}; messages are shared "
                            "flyweights — copy before mutating",
                        )

    def check(self, module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                HANDLER_NAME_RE.match(node.name)
            ):
                yield from self._check_handler(module, node)


class IsoFrozenEscapeRule(Rule):
    id = "ISO-003"
    name = "no object.__setattr__ outside __post_init__"
    scope = "all scanned files"

    def check(self, module) -> Iterator[Violation]:
        for node, ctx in walk_with_context(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            if ctx.function == "__post_init__":
                continue  # the one sanctioned frozen-dataclass init idiom
            yield self.violation(
                module,
                node,
                "object.__setattr__ escape on a frozen object outside "
                "__post_init__; frozen messages must stay immutable after "
                "construction",
            )


ISO_RULES = (IsoModuleStateRule(), IsoHandlerMutationRule(), IsoFrozenEscapeRule())
