"""SHARD rules: cross-process isolation for the sharded DES backend.

The sharded runtime (PR 9) is conservative-parallel: worker processes only
exchange *finished, immutable* delivery entries over pipes, synchronized by
lookahead barriers.  Its safety argument leans on two structural facts:

* **No shared mutable state** (SHARD-001).  Workers never see one
  another's heaps; the hub routes opaque byte frames.  The moment someone
  introduces a ``multiprocessing.Manager``/``Value``/``Array``/
  ``shared_memory`` object, shard state can change *between* barriers and
  the determinism proof (per-shard seeded RNG + barrier-ordered merges)
  is void.
* **One serialization chokepoint** (SHARD-002).  Only
  :mod:`repro.shard.ipc` may import ``pickle``/``marshal``; everything
  crossing a pipe goes through its ``encode_batch``/``decode_batch``
  framing, which enforces the frozen-slots flyweight payload contract
  (:func:`repro.shard.ipc.check_flyweight`).  Scattered ad hoc pickling
  would silently widen the wire format and bypass that check.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.rules.base import (
    Rule,
    SHARD_IPC_MODULE,
    SHARD_SCOPE_MODULES,
    SHARD_SCOPE_PACKAGES,
    collect_imports,
    resolve_call_target,
    walk_with_context,
)
from repro.staticcheck.violations import Violation


def _in_shard_scope(module) -> bool:
    return (
        module.package in SHARD_SCOPE_PACKAGES
        or module.module in SHARD_SCOPE_MODULES
    )


#: multiprocessing shared-state factories, by attribute name — these create
#: objects whose contents two processes can mutate concurrently (matched on
#: any receiver so ``ctx.Manager()`` from a ``get_context`` handle is caught)
SHARED_STATE_FACTORIES = frozenset(
    {
        "Manager",
        "Value",
        "Array",
        "RawValue",
        "RawArray",
        "SharedMemory",
        "ShareableList",
    }
)

#: multiprocessing synchronisation primitives — a lock implies the shared
#: state it guards (matched as dotted ``multiprocessing.*``/``ctx.*`` calls)
SHARED_SYNC_FACTORIES = frozenset(
    {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition", "Barrier", "Event"}
)

#: module imports that exist only to share memory across processes
SHARED_STATE_MODULES = (
    "multiprocessing.shared_memory",
    "multiprocessing.sharedctypes",
    "multiprocessing.managers",
)


class ShardNoSharedStateRule(Rule):
    id = "SHARD-001"
    name = "no cross-shard shared mutable state"
    scope = "repro.shard, repro.runtime.sharded"

    def applies(self, module) -> bool:
        return _in_shard_scope(module)

    def check(self, module) -> Iterator[Violation]:
        imports = collect_imports(module.tree)
        for node, ctx in walk_with_context(module.tree):
            if ctx.in_type_checking:
                continue
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for name in _imported_modules(node):
                    if any(
                        name == m or name.startswith(m + ".")
                        for m in SHARED_STATE_MODULES
                    ):
                        yield self.violation(
                            module,
                            node,
                            f"shared-memory module import ({name}); shards "
                            "communicate only by message passing — frozen "
                            "entries over pipes, framed by repro.shard.ipc",
                        )
                        break
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in SHARED_STATE_FACTORIES:
                yield self.violation(
                    module,
                    node,
                    f"cross-process shared state (.{func.attr}()); shard "
                    "workers must stay share-nothing — state changing "
                    "between barriers voids the lookahead safety argument",
                )
                continue
            target = resolve_call_target(node, imports)
            if target is not None:
                head, _, attr = target.rpartition(".")
                if attr in SHARED_SYNC_FACTORIES and (
                    head == "multiprocessing" or head.startswith("multiprocessing.")
                ):
                    yield self.violation(
                        module,
                        node,
                        f"cross-process synchronisation primitive {target}(); "
                        "a lock implies shared state — shards synchronise "
                        "only at the hub's barrier rounds",
                    )


#: serializer modules whose use outside the IPC chokepoint is banned
SERIALIZER_MODULES = ("pickle", "cPickle", "marshal", "dill", "cloudpickle", "shelve")


class ShardPickleChokepointRule(Rule):
    id = "SHARD-002"
    name = "pickle only inside repro.shard.ipc"
    scope = "repro.shard, repro.runtime.sharded"

    def applies(self, module) -> bool:
        return _in_shard_scope(module) and module.module != SHARD_IPC_MODULE

    def check(self, module) -> Iterator[Violation]:
        for node, ctx in walk_with_context(module.tree):
            if ctx.in_type_checking:
                continue
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for name in _imported_modules(node):
                root = name.split(".")[0]
                if root in SERIALIZER_MODULES:
                    yield self.violation(
                        module,
                        node,
                        f"serializer import ({root}) outside {SHARD_IPC_MODULE}; "
                        "all IPC payloads go through its encode/decode framing "
                        "so the flyweight wire contract has one owner",
                    )
                    break


def _imported_modules(node: ast.AST) -> Iterator[str]:
    """Dotted module names a single import statement binds."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        yield node.module
        for alias in node.names:
            yield f"{node.module}.{alias.name}"


SHARD_RULES = (ShardNoSharedStateRule(), ShardPickleChokepointRule())
