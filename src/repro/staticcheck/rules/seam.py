"""SEAM rules: the sans-I/O architecture boundary (PR 4's runtime seam).

Protocol-layer packages (`protocols`, `consensus`, `core`, `adversary`)
must be executable under any :class:`repro.runtime.base.Runtime` backend —
DES virtual time today, sharded worker processes tomorrow.  That only holds
if they never import the simulation engine or the OS clock/IO machinery
directly.  These rules generalise the ad hoc import lint that used to live
in ``tests/test_runtime.py``.

Imports under ``if TYPE_CHECKING:`` are exempt (annotation-only).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.rules.base import (
    Rule,
    SANS_IO_PACKAGES,
    walk_with_context,
)
from repro.staticcheck.violations import Violation

#: the DES engine internals protocol code must never see
ENGINE_MODULES = ("repro.sim.simulator", "repro.sim.network")

#: stdlib modules that smuggle in wall-clock time, threads, or raw I/O
IO_MODULES = frozenset(
    {"asyncio", "time", "threading", "socket", "selectors", "multiprocessing"}
)


def _imported_modules(node: ast.AST) -> Iterator[str]:
    """Dotted module names a single import statement binds."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        yield node.module
        # ``from repro.sim import network`` imports the submodule too
        for alias in node.names:
            yield f"{node.module}.{alias.name}"


class SeamEngineImportRule(Rule):
    id = "SEAM-001"
    name = "no direct simulator/network import"
    scope = "repro.{protocols,consensus,core,adversary}"

    def applies(self, module) -> bool:
        return module.package in SANS_IO_PACKAGES

    def check(self, module) -> Iterator[Violation]:
        for node, ctx in walk_with_context(module.tree):
            if ctx.in_type_checking:
                continue
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for name in _imported_modules(node):
                if any(name == m or name.startswith(m + ".") for m in ENGINE_MODULES):
                    yield self.violation(
                        module,
                        node,
                        f"sans-I/O package imports the DES engine ({name}); "
                        "talk to repro.runtime instead",
                    )
                    break


class SeamIOImportRule(Rule):
    id = "SEAM-002"
    name = "no direct asyncio/time/threading import"
    scope = "repro.{protocols,consensus,core,adversary}"

    def applies(self, module) -> bool:
        return module.package in SANS_IO_PACKAGES

    def check(self, module) -> Iterator[Violation]:
        for node, ctx in walk_with_context(module.tree):
            if ctx.in_type_checking:
                continue
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for name in _imported_modules(node):
                root = name.split(".")[0]
                if root in IO_MODULES:
                    yield self.violation(
                        module,
                        node,
                        f"sans-I/O package imports {root!r} directly; clocks, "
                        "timers, and transport come from the Runtime seam",
                    )
                    break


SEAM_RULES = (SeamEngineImportRule(), SeamIOImportRule())
