"""DET rules: no nondeterminism sources in DES-reachable code.

A DES run must be a pure function of (config, seed): the double-run
determinism test (``tests/test_determinism.py``) witnesses this at runtime,
and these rules keep the classic leak sources out statically — wall clocks,
the process-global RNG, OS entropy, ``id()`` ordering, and iteration over
unordered sets where the order can escape into message traffic.

Scope: every package a DES run can reach (protocols, consensus, core,
adversary, sim, scenario, workload, crypto, metrics, runtime) except
``repro.runtime.realtime``, which *is* the wall-clock backend by design.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.rules.base import (
    DES_REACHABLE_PACKAGES,
    DET_EXEMPT_MODULES,
    Rule,
    collect_imports,
    is_set_expression,
    resolve_call_target,
)
from repro.staticcheck.violations import Violation


class DetRule(Rule):
    scope = "DES-reachable packages (not repro.runtime.realtime)"

    def applies(self, module) -> bool:
        if module.module in DET_EXEMPT_MODULES:
            return False
        return module.package in DES_REACHABLE_PACKAGES


#: callables that read the wall clock
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: suffixes matched when the datetime class was imported directly
#: (``from datetime import datetime; datetime.now()``)
WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "datetime.today", "date.today")


class DetWallClockRule(DetRule):
    id = "DET-001"
    name = "no wall-clock reads"

    def check(self, module) -> Iterator[Violation]:
        imports = collect_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            if target in WALL_CLOCK_CALLS or target.endswith(WALL_CLOCK_SUFFIXES):
                yield self.violation(
                    module,
                    node,
                    f"wall-clock read {target}(); DES-reachable code gets "
                    "time from runtime.now()",
                )


class DetGlobalRngRule(DetRule):
    id = "DET-002"
    name = "no process-global random.* calls"

    def check(self, module) -> Iterator[Violation]:
        imports = collect_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None or not target.startswith("random."):
                continue
            attr = target[len("random.") :]
            # instantiating a seeded RNG is the *fix*, not the bug;
            # SystemRandom is OS entropy and belongs to DET-003
            if attr in ("Random", "SystemRandom") or "." in attr:
                continue
            yield self.violation(
                module,
                node,
                f"process-global RNG call {target}(); use a seeded "
                "random.Random instance threaded from the config",
            )


#: OS entropy and identifier sources that differ run-to-run
ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)


class DetEntropyRule(DetRule):
    id = "DET-003"
    name = "no OS entropy (urandom/uuid/secrets)"

    def check(self, module) -> Iterator[Violation]:
        imports = collect_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            if target in ENTROPY_CALLS or target.startswith("secrets."):
                yield self.violation(
                    module,
                    node,
                    f"OS entropy source {target}(); derive identifiers from "
                    "the seed or a counter",
                )


def _is_id_key(value: ast.AST) -> bool:
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda):
        body = value.body
        return (
            isinstance(body, ast.Call)
            and isinstance(body.func, ast.Name)
            and body.func.id == "id"
        )
    return False


class DetIdOrderingRule(DetRule):
    id = "DET-004"
    name = "no ordering by id()"

    def check(self, module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            is_order_call = (
                isinstance(callee, ast.Name) and callee.id in ("sorted", "min", "max")
            ) or (isinstance(callee, ast.Attribute) and callee.attr == "sort")
            if not is_order_call:
                continue
            for keyword in node.keywords:
                if keyword.arg == "key" and _is_id_key(keyword.value):
                    yield self.violation(
                        module,
                        node,
                        "ordering by id() is address-space-dependent and "
                        "differs run-to-run; order by a stable field",
                    )


#: builtins that freeze iteration order into a sequence/string
ORDER_FREEZING_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "next"})


class DetSetIterationRule(DetRule):
    id = "DET-005"
    name = "no iteration over bare sets"

    def _flag(self, module, node: ast.AST, what: str) -> Violation:
        return self.violation(
            module,
            node,
            f"{what} iterates an unordered set; wrap in sorted(...) or use "
            "dict.fromkeys(...) so the order cannot leak into emissions",
        )

    def check(self, module) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and is_set_expression(node.iter):
                yield self._flag(module, node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if is_set_expression(generator.iter):
                        yield self._flag(module, generator.iter, "comprehension")
            elif isinstance(node, ast.Call):
                callee = node.func
                freezes = (
                    isinstance(callee, ast.Name) and callee.id in ORDER_FREEZING_CALLS
                ) or (isinstance(callee, ast.Attribute) and callee.attr == "join")
                if freezes and node.args and is_set_expression(node.args[0]):
                    yield self._flag(module, node.args[0], "order-freezing call")


DET_RULES = (
    DetWallClockRule(),
    DetGlobalRngRule(),
    DetEntropyRule(),
    DetIdOrderingRule(),
    DetSetIterationRule(),
)
