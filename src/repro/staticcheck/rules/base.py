"""Rule framework: the :class:`Rule` base class and shared AST helpers.

Every rule is a small object with an ``id``, a ``severity``, a path-scope
predicate (:meth:`Rule.applies`) and an AST pass (:meth:`Rule.check`) that
yields :class:`~repro.staticcheck.violations.Violation` records.  Rules are
stateless across files; everything they need about the file under analysis
comes in through the :class:`~repro.staticcheck.engine.SourceModule`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.staticcheck.violations import Violation

if TYPE_CHECKING:
    from repro.staticcheck.engine import SourceModule

# ------------------------------------------------------------- path scopes
#: packages that must stay sans-I/O: they may talk to the world only through
#: the ``repro.runtime`` seam (PR 4), never the simulator/network/OS directly
SANS_IO_PACKAGES = ("protocols", "consensus", "core", "adversary")

#: packages that must carry no module-level mutable state (the sharding
#: prerequisite: a worker process must be able to import these with no
#: cross-instance aliasing)
STATE_FREE_PACKAGES = ("protocols", "consensus")

#: packages reachable from a DES run — everything here must be deterministic
#: given the seed
DES_REACHABLE_PACKAGES = SANS_IO_PACKAGES + (
    "sim",
    "scenario",
    "workload",
    "crypto",
    "metrics",
    "runtime",
    "fuzz",
    "shard",
)

#: modules exempt from the determinism rules by design (the realtime backend
#: *is* the wall clock)
DET_EXEMPT_MODULES = ("repro.runtime.realtime",)

#: the sharded-execution scope: the shard support package plus the hub
#: runtime.  Everything here coordinates worker *processes*, so the SHARD
#: rules police cross-process state and serialization discipline.
SHARD_SCOPE_PACKAGES = ("shard",)
SHARD_SCOPE_MODULES = ("repro.runtime.sharded",)

#: the one module allowed to (un)pickle: IPC framing is centralised so the
#: wire format — and the frozen-flyweight payload contract — has one owner
SHARD_IPC_MODULE = "repro.shard.ipc"


class Rule:
    """Base class: subclass, set the class attributes, implement check()."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    #: one-line scope description for ``--list-rules`` and the docs table
    scope: str = "all scanned files"

    def applies(self, module: "SourceModule") -> bool:
        return True

    def check(self, module: "SourceModule") -> Iterator[Violation]:
        raise NotImplementedError

    # ------------------------------------------------------------- helpers
    def violation(
        self, module: "SourceModule", node: ast.AST, message: str
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        snippet = ""
        if 1 <= line <= len(module.lines):
            snippet = module.lines[line - 1].strip()
        return Violation(
            rule=self.id,
            severity=self.severity,
            path=module.display_path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=snippet,
        )


# --------------------------------------------------------------- AST utils
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything dynamic."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def attribute_root(node: ast.AST) -> Optional[str]:
    """The root Name of an Attribute/Subscript chain (``m`` in ``m.a[k].b``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def collect_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local alias -> dotted origin for every import in the module.

    ``import time as t`` -> ``{"t": "time"}``;
    ``from time import time as now`` -> ``{"now": "time.time"}``;
    ``from repro.sim import network`` -> ``{"network": "repro.sim.network"}``.
    Relative imports keep their leading dots so rules can match suffixes.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return imports


def resolve_call_target(call: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """Dotted origin of a call target, following import aliases.

    With ``from time import time as now``, the call ``now()`` resolves to
    ``"time.time"``; ``t.monotonic()`` (after ``import time as t``) resolves
    to ``"time.monotonic"``.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    origin = imports.get(root, root)
    return f"{origin}.{rest}" if rest else origin


@dataclass(slots=True)
class NodeContext:
    """Lexical context of one AST node during :func:`walk_with_context`."""

    function_stack: Tuple[str, ...] = ()
    class_stack: Tuple[str, ...] = ()
    in_raise: bool = False
    in_assert: bool = False
    in_type_checking: bool = False

    @property
    def function(self) -> Optional[str]:
        return self.function_stack[-1] if self.function_stack else None


def _is_type_checking_test(test: ast.AST) -> bool:
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING")


def walk_with_context(tree: ast.AST) -> Iterator[Tuple[ast.AST, NodeContext]]:
    """Yield ``(node, context)`` for every node, tracking lexical context."""

    def visit(node: ast.AST, ctx: NodeContext) -> Iterator[Tuple[ast.AST, NodeContext]]:
        yield node, ctx
        child_ctx = ctx
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_ctx = NodeContext(
                function_stack=ctx.function_stack + (node.name,),
                class_stack=ctx.class_stack,
                in_type_checking=ctx.in_type_checking,
            )
        elif isinstance(node, ast.ClassDef):
            child_ctx = NodeContext(
                function_stack=ctx.function_stack,
                class_stack=ctx.class_stack + (node.name,),
                in_type_checking=ctx.in_type_checking,
            )
        elif isinstance(node, ast.Raise):
            child_ctx = NodeContext(
                function_stack=ctx.function_stack,
                class_stack=ctx.class_stack,
                in_raise=True,
                in_assert=ctx.in_assert,
                in_type_checking=ctx.in_type_checking,
            )
        elif isinstance(node, ast.Assert):
            child_ctx = NodeContext(
                function_stack=ctx.function_stack,
                class_stack=ctx.class_stack,
                in_raise=ctx.in_raise,
                in_assert=True,
                in_type_checking=ctx.in_type_checking,
            )
        elif isinstance(node, ast.If) and _is_type_checking_test(node.test):
            guarded = NodeContext(
                function_stack=ctx.function_stack,
                class_stack=ctx.class_stack,
                in_raise=ctx.in_raise,
                in_assert=ctx.in_assert,
                in_type_checking=True,
            )
            for child in node.body:
                yield from visit(child, guarded)
            for child in node.orelse:
                yield from visit(child, ctx)
            return
        for child in ast.iter_child_nodes(node):
            yield from visit(child, child_ctx)

    yield from visit(tree, NodeContext())


#: calls that build a mutable container (used by ISO-001 / HOT-003)
MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "defaultdict",
        "collections.deque",
        "deque",
        "collections.Counter",
        "Counter",
        "collections.OrderedDict",
        "OrderedDict",
    }
)


def is_mutable_literal(node: ast.AST, imports: Dict[str, str]) -> bool:
    """True for ``[]``/``{}``/``{x}`` displays, comprehensions, and calls to
    the standard mutable-container factories."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        target = resolve_call_target(node, imports)
        return target in MUTABLE_FACTORIES
    return False


def is_set_expression(node: ast.AST) -> bool:
    """True when the expression's value is an (order-unstable) set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False
