"""Optional baseline file: adopt the checker on a tree with known debt.

A baseline records the fingerprints of currently-accepted violations so the
CLI only fails on *new* ones.  Fingerprints hash the violating line's
content (not its number), so pure line drift does not resurrect entries.

This repo ships with an empty baseline — the tree runs clean — but the
mechanism is what lets a rule land before its last violation is fixed.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.staticcheck.violations import Violation

BASELINE_VERSION = 1


def load_baseline(path: str) -> List[str]:
    """Fingerprints stored in ``path``; raises ValueError on a bad file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a v{BASELINE_VERSION} staticcheck baseline")
    entries = data.get("entries", [])
    if not all(isinstance(entry, str) for entry in entries):
        raise ValueError(f"{path}: baseline entries must be fingerprint strings")
    return list(entries)


def write_baseline(path: str, violations: Iterable[Violation]) -> int:
    """Write the violations' fingerprints; returns the entry count."""
    entries = sorted({violation.fingerprint for violation in violations})
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)
