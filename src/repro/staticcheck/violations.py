"""Violation records produced by the static-analysis rules.

A :class:`Violation` pins one rule hit to one source location.  The
``fingerprint`` property gives a line-content-based identity that survives
line-number drift, which is what the optional baseline file keys on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict

#: severities, in increasing order of consequence.  ``error`` violations make
#: the CLI exit nonzero; ``warning`` violations are reported but do not.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True, slots=True)
class Violation:
    """One rule hit at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: the stripped source line, for display and baseline fingerprinting
    snippet: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> str:
        """Content-based identity: stable across pure line-number drift."""
        digest = hashlib.sha1(self.snippet.strip().encode("utf-8")).hexdigest()
        return f"{self.path}:{self.rule}:{digest[:12]}"

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
