"""The checker engine: file discovery, parsing, rule dispatch, suppressions.

The engine is deliberately dumb: it turns files into
:class:`SourceModule` records, hands each to every applicable rule, filters
the resulting violations through the inline suppressions and the optional
baseline, and returns a sorted list.  All project knowledge lives in the
rules (:mod:`repro.staticcheck.rules`).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.staticcheck.suppress import Suppression, apply_suppressions, parse_suppressions
from repro.staticcheck.violations import Violation

#: marker comment that opts a module into the HOT hygiene rules
HOT_MARKER_RE = re.compile(r"#\s*staticcheck:\s*hot-path\b")

#: directories never scanned (the checker's own sources live in staticcheck/)
EXCLUDED_DIRS = frozenset({"__pycache__", ".git", "staticcheck"})


@dataclass(slots=True)
class SourceModule:
    """One parsed source file plus everything the rules need to know."""

    path: str  # filesystem path as given
    display_path: str  # path used in reports (relative when possible)
    module: str  # dotted module name, best-effort ("" if unknown)
    text: str
    lines: List[str]
    tree: ast.Module
    is_hot: bool
    suppressions: Dict[int, Suppression]

    @property
    def package(self) -> str:
        """Top package under ``repro`` ("consensus" for repro.consensus.pbft)."""
        parts = self.module.split(".")
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return ""

    @classmethod
    def from_source(
        cls,
        text: str,
        *,
        module: str = "",
        path: str = "<memory>",
        display_path: Optional[str] = None,
    ) -> "SourceModule":
        lines = text.splitlines()
        return cls(
            path=path,
            display_path=display_path or path,
            module=module,
            text=text,
            lines=lines,
            tree=ast.parse(text, filename=path),
            is_hot=bool(HOT_MARKER_RE.search(text)),
            suppressions=parse_suppressions(lines),
        )

    @classmethod
    def from_path(cls, path: str) -> "SourceModule":
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        return cls.from_source(
            text,
            module=module_name_for(path),
            path=path,
            display_path=display_path_for(path),
        )


def module_name_for(path: str) -> str:
    """Best-effort dotted module name: everything from the ``repro`` path
    component down (``.../src/repro/sim/network.py`` -> ``repro.sim.network``)."""
    normalized = os.path.normpath(os.path.abspath(path))
    parts = normalized.split(os.sep)
    if "repro" not in parts:
        return ""
    start = parts.index("repro")
    module_parts = parts[start:]
    module_parts[-1] = module_parts[-1][:-3]  # strip .py
    if module_parts[-1] == "__init__":
        module_parts.pop()
    return ".".join(module_parts)


def display_path_for(path: str) -> str:
    absolute = os.path.abspath(path)
    cwd = os.getcwd()
    if absolute.startswith(cwd + os.sep):
        return os.path.relpath(absolute, cwd)
    return path


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                found.append(path)
            continue
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in EXCLUDED_DIRS)
            for name in sorted(names):
                if name.endswith(".py"):
                    found.append(os.path.join(root, name))
    return found


@dataclass(slots=True)
class CheckReport:
    """Everything one run produced."""

    violations: List[Violation]
    checked_files: int
    parse_errors: List[Violation] = field(default_factory=list)

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity == "error"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors or self.parse_errors else 0


def check_module(module: SourceModule, rules: Sequence) -> List[Violation]:
    """Run ``rules`` over one parsed module, honouring inline suppressions."""
    raw: List[Violation] = []
    for rule in rules:
        if rule.applies(module):
            raw.extend(rule.check(module))
    filtered = apply_suppressions(
        raw, module.suppressions, module.display_path, module.lines
    )
    filtered.sort(key=lambda v: (v.line, v.col, v.rule))
    return filtered


def check_source(
    text: str, *, module: str = "", path: str = "<memory>", rules: Optional[Sequence] = None
) -> List[Violation]:
    """Check an in-memory snippet (the unit-test entry point).

    ``module`` positions the snippet in the package scopes the rules key on,
    e.g. ``module="repro.consensus._fixture"`` makes the SEAM/ISO rules
    treat it as consensus code.
    """
    from repro.staticcheck.rules import ALL_RULES

    source = SourceModule.from_source(text, module=module, path=path)
    return check_module(source, ALL_RULES if rules is None else rules)


def check_paths(
    paths: Sequence[str],
    *,
    rules: Optional[Sequence] = None,
    baseline_fingerprints: Optional[Iterable[str]] = None,
) -> CheckReport:
    """Check files/trees on disk; the CLI and the tier-1 test both call this."""
    from repro.staticcheck.rules import ALL_RULES

    active = ALL_RULES if rules is None else rules
    violations: List[Violation] = []
    parse_errors: List[Violation] = []
    files = discover_files(paths)
    for path in files:
        try:
            source = SourceModule.from_path(path)
        except SyntaxError as exc:
            parse_errors.append(
                Violation(
                    rule="SC-000",
                    severity="error",
                    path=display_path_for(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                    snippet=(exc.text or "").strip(),
                )
            )
            continue
        violations.extend(check_module(source, active))
    if baseline_fingerprints is not None:
        known = frozenset(baseline_fingerprints)
        violations = [v for v in violations if v.fingerprint not in known]
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return CheckReport(
        violations=violations, checked_files=len(files), parse_errors=parse_errors
    )
