"""Ladon's primary contribution: dynamic global ordering of Multi-BFT blocks.

This package is deliberately free of networking: it contains the pure data
structures and algorithms of the paper's Sections 3–5 (blocks, monotonic
ranks, the global ordering algorithm, epochs, rotating buckets and the causal
strength metric).  The protocol systems in :mod:`repro.protocols` drive these
against the simulated network.
"""

from repro.core.block import Block, BlockId, ordering_key, precedes
from repro.core.rank import RankState, RankReport, RankCertificate, choose_rank
from repro.core.ordering import (
    GlobalOrderer,
    DynamicOrderer,
    ConfirmedBlock,
    ConfirmationBar,
)
from repro.core.predetermined import PredeterminedOrderer
from repro.core.dqbft_ordering import DQBFTOrderer
from repro.core.epoch import EpochConfig, EpochPacemaker, EpochState
from repro.core.buckets import Bucket, RotatingBuckets
from repro.core.causality import causal_strength, count_causality_violations

__all__ = [
    "Block",
    "BlockId",
    "ordering_key",
    "precedes",
    "RankState",
    "RankReport",
    "RankCertificate",
    "choose_rank",
    "GlobalOrderer",
    "DynamicOrderer",
    "ConfirmedBlock",
    "ConfirmationBar",
    "PredeterminedOrderer",
    "DQBFTOrderer",
    "EpochConfig",
    "EpochPacemaker",
    "EpochState",
    "Bucket",
    "RotatingBuckets",
    "causal_strength",
    "count_causality_violations",
]
