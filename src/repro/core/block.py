"""Blocks and the global ordering relation ``≺``.

A block (paper Sec. 3.2) is the tuple ``(txs, index, round, rank)`` where
``index`` is the consensus-instance index, ``round`` is the round in which the
instance proposed it and ``rank`` is the monotonic rank assigned at proposal.
The global ordering index ``sn`` is *not* a field — it is computed when the
block is globally confirmed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.hashing import digest_hex


@dataclass(frozen=True, slots=True)
class BlockId:
    """Uniquely identifies a block by instance and round."""

    instance: int
    round: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"B^{self.instance}_{self.round}"


@dataclass(frozen=True, slots=True)
class Block:
    """A partially committed (or proposed) block.

    ``txs`` is a tuple of opaque transaction objects (see
    :mod:`repro.workload.transactions`); ``proposed_at`` records the virtual
    time the leader created the block (used by the causal-strength metric and
    to order "generation" events), and ``committed_at`` is filled when the
    block becomes partially committed.
    """

    instance: int
    round: int
    rank: int
    txs: Tuple = ()
    epoch: int = 0
    proposer: int = -1
    proposed_at: float = 0.0
    committed_at: Optional[float] = None
    payload_digest: str = field(default="")
    #: number of transactions the block stands for when ``txs`` is not
    #: materialised (synthetic batches in peak-throughput runs)
    tx_count_hint: int = 0
    #: representative submission time of the block's transactions, used for
    #: end-to-end latency accounting
    batch_submitted_at: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be non-negative")
        if self.round < 0:
            raise ValueError("round must be non-negative")
        if self.instance < 0:
            raise ValueError("instance index must be non-negative")
        if not self.payload_digest:
            object.__setattr__(
                self,
                "payload_digest",
                digest_hex(self.instance, self.round, self.rank, len(self.txs)),
            )

    @property
    def block_id(self) -> BlockId:
        return BlockId(instance=self.instance, round=self.round)

    @property
    def tx_count(self) -> int:
        return len(self.txs) if self.txs else self.tx_count_hint

    def with_commit_time(self, committed_at: float) -> "Block":
        """Return a copy of this block annotated with its partial-commit time."""
        return Block(
            instance=self.instance,
            round=self.round,
            rank=self.rank,
            txs=self.txs,
            epoch=self.epoch,
            proposer=self.proposer,
            proposed_at=self.proposed_at,
            committed_at=committed_at,
            payload_digest=self.payload_digest,
            tx_count_hint=self.tx_count_hint,
            batch_submitted_at=self.batch_submitted_at,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Block(inst={self.instance}, round={self.round}, rank={self.rank})"


def ordering_key(block: Block) -> Tuple[int, int]:
    """The total-order key: increasing rank, ties broken by instance index."""
    return (block.rank, block.instance)


def precedes(a: Block, b: Block) -> bool:
    """``a ≺ b``: a is globally ordered before b (Sec. 4.2)."""
    return ordering_key(a) < ordering_key(b)
