"""Pre-determined global ordering (ISS, Mir, RCC).

A block produced by instance ``i`` in round ``j`` is assigned the fixed global
index ``(j - 1) * m + i`` (the paper's Fig. 1 layout: round-robin interleaving
across the ``m`` instances).  Replicas execute blocks strictly in increasing
global index; a missing block (a "hole" left by a slow instance) blocks every
later block from being globally confirmed.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.block import Block
from repro.core.ordering import ConfirmedBlock, GlobalOrderer


class PredeterminedOrderer(GlobalOrderer):
    """Global ordering by pre-assigned index, as in ISS / Mir / RCC.

    Memory is O(active window): confirmation drains a contiguous prefix, so
    duplicate detection is an index comparison, and the confirmed history is
    kept compact unless ``retain_blocks`` (see :class:`GlobalOrderer`).
    """

    def __init__(self, num_instances: int, retain_blocks: bool = True) -> None:
        if num_instances <= 0:
            raise ValueError("need at least one instance")
        super().__init__(retain_blocks=retain_blocks)
        self.num_instances = num_instances
        self._pending: Dict[int, Block] = {}
        self._next_sn = 0
        # Highest global index ever received; because confirmation drains a
        # contiguous prefix, whenever ``_pending`` is non-empty this is also
        # the highest *pending* index, giving an O(1) ``hole_count``.
        self._highest_seen = -1

    def global_index(self, block: Block) -> int:
        """The pre-determined index of ``block`` (rounds are 1-based)."""
        if block.round < 1:
            raise ValueError("rounds are 1-based in the partial ordering layer")
        return (block.round - 1) * self.num_instances + block.instance

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def add_partially_committed(self, block: Block, now: float) -> List[ConfirmedBlock]:
        index = self.global_index(block)
        if index < self._next_sn or index in self._pending:
            return []  # duplicate delivery
        self._pending[index] = block
        if index > self._highest_seen:
            self._highest_seen = index
        newly: List[ConfirmedBlock] = []
        while self._next_sn in self._pending:
            blk = self._pending.pop(self._next_sn)
            newly.append(self._append_confirmed(blk, now))
            self._next_sn += 1
        return newly

    # ------------------------------------------------------------- inspection
    def next_missing_index(self) -> int:
        """The global index of the hole currently blocking confirmation."""
        return self._next_sn

    def hole_count(self) -> int:
        """Number of holes below the highest pending index (diagnostic)."""
        if not self._pending:
            return 0
        expected = self._highest_seen - self._next_sn + 1
        return expected - len(self._pending)
