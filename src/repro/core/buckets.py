"""Rotating transaction buckets (paper Sec. 5.1, adopted from ISS).

Client transactions are hashed into one of ``num_buckets`` disjoint buckets.
At every epoch the buckets are reassigned round-robin to consensus instances,
which prevents two leaders from proposing the same transaction and mitigates
censorship: a transaction stuck with an unco-operative leader is eventually
rotated to an honest one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.hashing import digest


@dataclass
class Bucket:
    """A FIFO queue of pending transactions."""

    bucket_id: int
    pending: Deque = field(default_factory=deque)

    def add(self, tx) -> None:
        self.pending.append(tx)

    def cut(self, max_txs: int) -> Tuple:
        """Remove and return up to ``max_txs`` transactions (a batch cut)."""
        batch = []
        while self.pending and len(batch) < max_txs:
            batch.append(self.pending.popleft())
        return tuple(batch)

    def __len__(self) -> int:
        return len(self.pending)


class RotatingBuckets:
    """Assignment of buckets to consensus instances, rotated per epoch."""

    def __init__(self, num_buckets: int, num_instances: int) -> None:
        if num_buckets < num_instances:
            raise ValueError("need at least one bucket per instance")
        if num_instances <= 0:
            raise ValueError("need at least one instance")
        self.num_buckets = num_buckets
        self.num_instances = num_instances
        self._buckets: Dict[int, Bucket] = {i: Bucket(bucket_id=i) for i in range(num_buckets)}

    # ------------------------------------------------------------ assignment
    def bucket_of(self, tx_id) -> int:
        """Hash a transaction id into its bucket."""
        return int.from_bytes(digest(tx_id)[:8], "big") % self.num_buckets

    def add_transaction(self, tx, tx_id=None) -> int:
        """Add ``tx`` to its bucket; returns the bucket id."""
        key = tx_id if tx_id is not None else getattr(tx, "tx_id", tx)
        bucket_id = self.bucket_of(key)
        self._buckets[bucket_id].add(tx)
        return bucket_id

    def assignment_for_epoch(self, epoch: int) -> Dict[int, List[int]]:
        """Bucket ids assigned to each instance in ``epoch`` (round-robin rotation)."""
        assignment: Dict[int, List[int]] = {i: [] for i in range(self.num_instances)}
        for bucket_id in range(self.num_buckets):
            instance = (bucket_id + epoch) % self.num_instances
            assignment[instance].append(bucket_id)
        return assignment

    def buckets_for_instance(self, instance: int, epoch: int) -> List[Bucket]:
        assignment = self.assignment_for_epoch(epoch)
        return [self._buckets[bid] for bid in assignment[instance]]

    # ---------------------------------------------------------------- cutting
    def cut_batch(self, instance: int, epoch: int, max_txs: int) -> Tuple:
        """Cut a batch of up to ``max_txs`` transactions for ``instance``.

        Transactions are drawn round-robin from the instance's buckets so a
        single hot bucket cannot starve the others.
        """
        buckets = self.buckets_for_instance(instance, epoch)
        batch: List = []
        while len(batch) < max_txs:
            progressed = False
            for bucket in buckets:
                if bucket.pending and len(batch) < max_txs:
                    batch.append(bucket.pending.popleft())
                    progressed = True
            if not progressed:
                break
        return tuple(batch)

    # ------------------------------------------------------------- inspection
    def pending_count(self, instance: Optional[int] = None, epoch: int = 0) -> int:
        if instance is None:
            return sum(len(bucket) for bucket in self._buckets.values())
        return sum(len(bucket) for bucket in self.buckets_for_instance(instance, epoch))

    def bucket(self, bucket_id: int) -> Bucket:
        return self._buckets[bucket_id]
