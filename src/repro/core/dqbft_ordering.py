"""DQBFT-style global ordering.

DQBFT (Arun & Ravindran, PVLDB 2022) adds one *special ordering instance*: the
other instances only partially commit blocks, and the ordering instance runs
consensus on "sequencing" decisions that append partially committed blocks to
the global log in the order its leader observes them.  This removes the rigid
round-robin interleaving (so it tolerates stragglers much better than ISS)
but (a) adds the ordering instance's own consensus latency to every block and
(b) centralises ordering at that leader — if *it* straggles, the whole system
stalls, and it can reorder blocks arbitrarily (no causality guarantee).

In this reproduction the ordering instance is modelled by the protocol layer
(:mod:`repro.protocols.dqbft`) which feeds *sequencing decisions* into this
orderer; the orderer simply appends blocks in decision order once both the
decision and the block itself are available.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.core.block import Block, BlockId
from repro.core.ordering import ConfirmedBlock, GlobalOrderer


class DQBFTOrderer(GlobalOrderer):
    """Appends blocks in the order decided by the central ordering instance.

    Draining is O(1) amortised per confirmation already (a deque of
    decisions); the undecided set is additionally maintained incrementally so
    inspection never rescans the full block history, and confirmed blocks are
    released from the block buffer (only their ids are remembered for
    duplicate detection).
    """

    def __init__(self, num_instances: int, retain_blocks: bool = True) -> None:
        if num_instances <= 0:
            raise ValueError("need at least one instance")
        super().__init__(retain_blocks=retain_blocks)
        self.num_instances = num_instances
        self._blocks: Dict[BlockId, Block] = {}
        self._decisions: Deque[BlockId] = deque()
        self._decided: set = set()
        self._confirmed_ids: set = set()
        self._undecided: Dict[BlockId, Block] = {}

    @property
    def pending_count(self) -> int:
        return len(self._blocks)

    # ----------------------------------------------------- ordering decisions
    def add_sequencing_decision(self, block_id: BlockId, now: float) -> List[ConfirmedBlock]:
        """Record that the ordering instance decided ``block_id`` comes next."""
        if block_id in self._decided or block_id in self._confirmed_ids:
            return []
        self._decided.add(block_id)
        self._decisions.append(block_id)
        self._undecided.pop(block_id, None)
        return self._drain(now)

    def add_partially_committed(self, block: Block, now: float) -> List[ConfirmedBlock]:
        block_id = block.block_id
        if block_id in self._blocks or block_id in self._confirmed_ids:
            return []
        self._blocks[block_id] = block
        if block_id not in self._decided:
            self._undecided[block_id] = block
        return self._drain(now)

    def _drain(self, now: float) -> List[ConfirmedBlock]:
        newly: List[ConfirmedBlock] = []
        while self._decisions:
            head = self._decisions[0]
            block = self._blocks.get(head)
            if block is None:
                break  # decision arrived before the block itself
            self._decisions.popleft()
            if head in self._confirmed_ids:
                continue
            newly.append(self._append_confirmed(block, now))
            self._confirmed_ids.add(head)
            # Confirmed blocks leave the buffer; the id set covers duplicates.
            del self._blocks[head]
            self._decided.discard(head)
        return newly

    # ------------------------------------------------------------- inspection
    def undecided_blocks(self) -> List[Block]:
        """Blocks partially committed but not yet sequenced by the orderer."""
        return list(self._undecided.values())
