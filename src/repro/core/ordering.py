"""Global ordering layer.

Two implementations of the :class:`GlobalOrderer` interface live elsewhere
(:mod:`repro.core.predetermined` and :mod:`repro.core.dqbft_ordering`); this
module defines the interface, the confirmed-block record, and Ladon's
:class:`DynamicOrderer`, a faithful implementation of Algorithm 1.

Two hot-path properties of :class:`DynamicOrderer` (both pinned against the
reference :class:`ScanDrainDynamicOrderer` by equivalence property tests):

* the **confirmation bar** — the minimum ordering key over the per-instance
  last-partially-confirmed blocks — is maintained *incrementally* in a lazy
  min-heap, so each partial commit pays O(log m) instead of rebuilding a
  list of m blocks and scanning it (the old ``_compute_bar``, kept as the
  reference implementation and for cold-path inspection);
* memory is **O(active window)**: per-instance round buffers are pruned as
  the partially-confirmed prefix advances, duplicate detection uses a
  contiguous watermark plus a small overflow set instead of an ever-growing
  id set, and a non-retaining mode (``retain_blocks=False``) keeps only
  compact confirmed-block fingerprints for the safety auditor instead of
  the full :class:`ConfirmedBlock` history (the observing replica retains
  everything, so experiment outputs are unchanged).
"""

# staticcheck: hot-path
from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.block import Block, ordering_key


@dataclass(frozen=True, slots=True)
class ConfirmedBlock:
    """A globally confirmed block with its global ordering index ``sn``."""

    block: Block
    sn: int
    confirmed_at: float

    @property
    def rank(self) -> int:
        return self.block.rank

    @property
    def instance(self) -> int:
        return self.block.instance


@dataclass(frozen=True, slots=True)
class ConfirmationBar:
    """The confirmation bar: the lowest ordering key future blocks can take."""

    rank: int
    instance: int

    def admits(self, block: Block) -> bool:
        """True when ``block ≺ bar`` and so the block can be confirmed."""
        return ordering_key(block) < (self.rank, self.instance)


#: compact audit fingerprint of one confirmed block
ConfirmedFingerprint = Tuple[int, int, int, int, str]


def _fingerprint(confirmed: ConfirmedBlock) -> ConfirmedFingerprint:
    block = confirmed.block
    return (confirmed.sn, block.instance, block.round, block.rank, block.payload_digest)


class GlobalOrderer:
    """Interface of the global ordering layer (paper Sec. 3.3).

    ``add_partially_committed`` feeds the output of the partial ordering
    layer; the orderer returns the (possibly empty) list of newly confirmed
    blocks, already assigned consecutive global ordering indices.

    Implementations share the confirmed-history bookkeeping: with
    ``retain_blocks=True`` (the default) the full :class:`ConfirmedBlock`
    history is kept and exposed through :attr:`confirmed`; with
    ``retain_blocks=False`` only compact audit fingerprints are kept —
    ``confirmed`` then raises so that a forgotten caller fails loudly
    instead of silently reading an empty history.
    """

    def __init__(self, retain_blocks: bool = True) -> None:
        self.retain_blocks = retain_blocks
        self._confirmed: List[ConfirmedBlock] = []
        self._fingerprints: List[ConfirmedFingerprint] = []
        self._confirmed_count = 0
        self._confirmed_cache: Optional[Tuple[ConfirmedBlock, ...]] = None

    def add_partially_committed(self, block: Block, now: float) -> List[ConfirmedBlock]:
        raise NotImplementedError

    # ------------------------------------------------------ confirmed history
    def _append_confirmed(self, block: Block, now: float) -> ConfirmedBlock:
        """Assign the next sn to ``block`` and record it."""
        confirmed = ConfirmedBlock(block=block, sn=self._confirmed_count, confirmed_at=now)
        self._confirmed_count += 1
        if self.retain_blocks:
            self._confirmed.append(confirmed)
            self._confirmed_cache = None
        else:
            self._fingerprints.append(_fingerprint(confirmed))
        return confirmed

    @property
    def confirmed(self) -> Tuple[ConfirmedBlock, ...]:
        """The full confirmed history (cached: cheap on repeated calls)."""
        if not self.retain_blocks:
            raise RuntimeError(
                "orderer runs with retain_blocks=False (bounded memory); "
                "use confirmed_count / confirmed_fingerprints() instead"
            )
        cache = self._confirmed_cache
        if cache is None or len(cache) != len(self._confirmed):
            cache = self._confirmed_cache = tuple(self._confirmed)
        return cache

    @property
    def confirmed_count(self) -> int:
        """Number of confirmed blocks — O(1), never copies history."""
        return self._confirmed_count

    def confirmed_fingerprints(self) -> List[ConfirmedFingerprint]:
        """Compact (sn, instance, round, rank, digest) log for the auditor."""
        if self.retain_blocks:
            return [_fingerprint(c) for c in self._confirmed]
        return list(self._fingerprints)

    @property
    def pending_count(self) -> int:
        """Number of partially committed but not yet confirmed blocks."""
        raise NotImplementedError


class DynamicOrderer(GlobalOrderer):
    """Ladon's dynamic global ordering (Algorithm 1).

    The orderer keeps, per instance, the last *partially confirmed* block —
    a block is partially confirmed only when every earlier round of its
    instance is partially committed — plus the set ``S`` of unconfirmed
    blocks.  When fed a new block it advances the bar (the lowest
    last-partially-confirmed ordering key across instances, maintained
    incrementally), then drains every unconfirmed block below the bar in
    ``≺`` order.

    Unconfirmed blocks are kept both in a dict (duplicate detection,
    inspection) and in a min-heap keyed by ``ordering_key``, so each
    confirmation is O(log k); the bar itself costs O(log m) amortised per
    partial commit (a lazy heap over the per-instance last-partially-
    confirmed keys, stale entries skipped on peek) instead of the O(m)
    list-build-and-min of the original ``_compute_bar``.
    """

    def __init__(self, num_instances: int, retain_blocks: bool = True) -> None:
        if num_instances <= 0:
            raise ValueError("need at least one instance")
        super().__init__(retain_blocks=retain_blocks)
        self.num_instances = num_instances
        # Per instance: blocks received keyed by round (pruned as the
        # partially-confirmed prefix advances), and the next round needed to
        # extend that contiguous prefix.
        self._by_instance: Dict[int, Dict[int, Block]] = {i: {} for i in range(num_instances)}
        self._next_round: Dict[int, int] = {i: 1 for i in range(num_instances)}
        self._last_partially_confirmed: Dict[int, Optional[Block]] = {
            i: None for i in range(num_instances)
        }
        self._unconfirmed: Dict[Tuple[int, int], Block] = {}
        # Min-heap of (rank, instance, round) over the unconfirmed set.
        # (rank, instance) is the ordering key; the round makes entries
        # unique and resolvable back into ``_unconfirmed``.
        self._heap: List[Tuple[int, int, int]] = []
        # ----- incremental bar state -----
        # Current last-partially-confirmed rank per instance (None = none yet),
        # a lazy min-heap of (rank, instance) with stale entries skipped at
        # peek time, and the count of instances contributing to the bar.
        self._bar_rank: List[Optional[int]] = [None] * num_instances
        self._bar_heap: List[Tuple[int, int]] = []
        self._bar_ready = 0
        # ----- duplicate detection (bounded) -----
        # Per instance: every round <= watermark is confirmed; confirmed
        # rounds above the watermark live in a small overflow set until the
        # prefix catches up.  Equivalent to the old O(history) id set.
        self._confirmed_watermark: List[int] = [0] * num_instances
        self._confirmed_above: List[set] = [set() for _ in range(num_instances)]

    # ------------------------------------------------------------ interface
    @property
    def pending_count(self) -> int:
        return len(self._unconfirmed)

    def add_partially_committed(self, block: Block, now: float) -> List[ConfirmedBlock]:
        instance = block.instance
        if instance >= self.num_instances:
            raise ValueError(
                f"block instance {instance} out of range (m={self.num_instances})"
            )
        round_ = block.round
        key = (instance, round_)
        if (
            key in self._unconfirmed
            or round_ <= self._confirmed_watermark[instance]
            or round_ in self._confirmed_above[instance]
        ):
            return []  # duplicate delivery
        self._by_instance[instance][round_] = block
        self._unconfirmed[key] = block
        heapq.heappush(self._heap, (block.rank, instance, round_))
        self._advance_partially_confirmed(instance)
        return self._drain(now)

    # -------------------------------------------------------------- internals
    def _advance_partially_confirmed(self, instance: int) -> None:
        """Extend the contiguous prefix of partially confirmed blocks.

        Rounds behind the prefix are popped from the per-instance buffer
        (the blocks stay referenced by ``_unconfirmed`` until confirmed),
        and the bar heap learns the new last-partially-confirmed rank.
        """
        rounds = self._by_instance[instance]
        nxt = self._next_round[instance]
        last = None
        while nxt in rounds:
            last = rounds.pop(nxt)
            nxt += 1
        if last is None:
            return
        self._next_round[instance] = nxt
        self._last_partially_confirmed[instance] = last
        if self._bar_rank[instance] is None:
            self._bar_ready += 1
        if self._bar_rank[instance] != last.rank:
            self._bar_rank[instance] = last.rank
            heapq.heappush(self._bar_heap, (last.rank, instance))

    def _bar_key(self) -> Optional[Tuple[int, int]]:
        """The bar's (rank, instance) exclusive upper bound, maintained lazily.

        None while some instance has no partially confirmed block yet (the
        bar must stay at its initial value: that instance could still
        produce a block of any low rank it has certified).
        """
        if self._bar_ready < self.num_instances:
            return None
        heap = self._bar_heap
        ranks = self._bar_rank
        while True:
            rank, instance = heap[0]
            if ranks[instance] == rank:
                return (rank + 1, instance)
            heapq.heappop(heap)  # stale: the instance has advanced past it

    def _compute_bar(self) -> Optional[ConfirmationBar]:
        """Reference bar computation: O(m) scan (Algorithm 1 verbatim).

        Kept as the pinned baseline (:class:`ScanDrainDynamicOrderer` and
        the equivalence tests) and for cold-path inspection; the production
        drain uses the incremental :meth:`_bar_key`.
        """
        last_blocks = [b for b in self._last_partially_confirmed.values() if b is not None]
        if len(last_blocks) < self.num_instances:
            return None
        lowest = min(last_blocks, key=ordering_key)
        return ConfirmationBar(rank=lowest.rank + 1, instance=lowest.instance)

    def _mark_confirmed(self, instance: int, round_: int) -> None:
        """Record (instance, round) as confirmed, folding into the watermark."""
        above = self._confirmed_above[instance]
        above.add(round_)
        watermark = self._confirmed_watermark[instance]
        while watermark + 1 in above:
            watermark += 1
            above.discard(watermark)
        self._confirmed_watermark[instance] = watermark

    def _drain(self, now: float) -> List[ConfirmedBlock]:
        bar_key = self._bar_key()
        if bar_key is None:
            return []
        newly: List[ConfirmedBlock] = []
        heap = self._heap
        unconfirmed = self._unconfirmed
        while heap and (heap[0][0], heap[0][1]) < bar_key:
            rank, instance, round_ = heapq.heappop(heap)
            candidate = unconfirmed.pop((instance, round_), None)
            if candidate is None:
                continue  # stale heap entry
            newly.append(self._append_confirmed(candidate, now))
            self._mark_confirmed(instance, round_)
        return newly

    # ------------------------------------------------------------- inspection
    def current_bar(self) -> Optional[ConfirmationBar]:
        """Expose the bar for tests and diagnostics."""
        return self._compute_bar()

    def unconfirmed_blocks(self) -> List[Block]:
        return sorted(self._unconfirmed.values(), key=ordering_key)


class ScanDrainDynamicOrderer(DynamicOrderer):
    """Reference drain: re-``min()`` over the unconfirmed set per confirmation.

    This is the original (pre-heap, pre-incremental-bar) implementation,
    O(k²) for a k-block drain with an O(m) bar recomputation per partial
    commit.  It is kept as the single pinned baseline for the equivalence
    property tests and the drain micro-benchmark; production code should
    always use :class:`DynamicOrderer`.
    """

    def _drain(self, now: float) -> List[ConfirmedBlock]:
        bar = self._compute_bar()
        if bar is None:
            return []
        newly: List[ConfirmedBlock] = []
        while self._unconfirmed:
            candidate_key = min(
                self._unconfirmed, key=lambda k: ordering_key(self._unconfirmed[k])
            )
            candidate = self._unconfirmed[candidate_key]
            if not bar.admits(candidate):
                break
            del self._unconfirmed[candidate_key]
            newly.append(self._append_confirmed(candidate, now))
            self._mark_confirmed(candidate_key[0], candidate_key[1])
        return newly
