"""Global ordering layer.

Two implementations of the :class:`GlobalOrderer` interface live elsewhere
(:mod:`repro.core.predetermined` and :mod:`repro.core.dqbft_ordering`); this
module defines the interface, the confirmed-block record, and Ladon's
:class:`DynamicOrderer`, a faithful implementation of Algorithm 1.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.block import Block, ordering_key


@dataclass(frozen=True)
class ConfirmedBlock:
    """A globally confirmed block with its global ordering index ``sn``."""

    block: Block
    sn: int
    confirmed_at: float

    @property
    def rank(self) -> int:
        return self.block.rank

    @property
    def instance(self) -> int:
        return self.block.instance


@dataclass(frozen=True)
class ConfirmationBar:
    """The confirmation bar: the lowest ordering key future blocks can take."""

    rank: int
    instance: int

    def admits(self, block: Block) -> bool:
        """True when ``block ≺ bar`` and so the block can be confirmed."""
        return ordering_key(block) < (self.rank, self.instance)


class GlobalOrderer:
    """Interface of the global ordering layer (paper Sec. 3.3).

    ``add_partially_committed`` feeds the output of the partial ordering
    layer; the orderer returns the (possibly empty) list of newly confirmed
    blocks, already assigned consecutive global ordering indices.
    """

    def add_partially_committed(self, block: Block, now: float) -> List[ConfirmedBlock]:
        raise NotImplementedError

    @property
    def confirmed(self) -> Tuple[ConfirmedBlock, ...]:
        raise NotImplementedError

    @property
    def pending_count(self) -> int:
        """Number of partially committed but not yet confirmed blocks."""
        raise NotImplementedError


class DynamicOrderer(GlobalOrderer):
    """Ladon's dynamic global ordering (Algorithm 1).

    The orderer keeps, per instance, the last *partially confirmed* block —
    a block is partially confirmed only when every earlier round of its
    instance is partially committed — plus the set ``S`` of unconfirmed
    blocks.  When fed a new block it recomputes the bar from the lowest
    last-partially-confirmed block across instances, then drains every
    unconfirmed block below the bar in ``≺`` order.

    Unconfirmed blocks are kept both in a dict (duplicate detection,
    inspection) and in a min-heap keyed by ``ordering_key``, so each
    confirmation is O(log k) instead of the O(k) rescans of a naive
    ``min()`` over the pending set — an O(k²) drain when a straggler
    releases k queued blocks at once.
    """

    def __init__(self, num_instances: int) -> None:
        if num_instances <= 0:
            raise ValueError("need at least one instance")
        self.num_instances = num_instances
        self._confirmed: List[ConfirmedBlock] = []
        self._confirmed_ids = set()
        # Per instance: blocks received keyed by round, and the next round
        # needed to extend the contiguous partially-confirmed prefix.
        self._by_instance: Dict[int, Dict[int, Block]] = {i: {} for i in range(num_instances)}
        self._next_round: Dict[int, int] = {i: 1 for i in range(num_instances)}
        self._last_partially_confirmed: Dict[int, Optional[Block]] = {
            i: None for i in range(num_instances)
        }
        self._unconfirmed: Dict[Tuple[int, int], Block] = {}
        # Min-heap of (rank, instance, round) over the unconfirmed set.
        # (rank, instance) is the ordering key; the round makes entries
        # unique and resolvable back into ``_unconfirmed``.
        self._heap: List[Tuple[int, int, int]] = []

    # ------------------------------------------------------------ interface
    @property
    def confirmed(self) -> Tuple[ConfirmedBlock, ...]:
        return tuple(self._confirmed)

    @property
    def pending_count(self) -> int:
        return len(self._unconfirmed)

    def add_partially_committed(self, block: Block, now: float) -> List[ConfirmedBlock]:
        if block.instance >= self.num_instances:
            raise ValueError(
                f"block instance {block.instance} out of range (m={self.num_instances})"
            )
        key = (block.instance, block.round)
        if key in self._unconfirmed or key in self._confirmed_ids:
            return []  # duplicate delivery

        self._by_instance[block.instance][block.round] = block
        self._unconfirmed[key] = block
        heapq.heappush(self._heap, (block.rank, block.instance, block.round))
        self._advance_partially_confirmed(block.instance)
        return self._drain(now)

    # -------------------------------------------------------------- internals
    def _advance_partially_confirmed(self, instance: int) -> None:
        """Extend the contiguous prefix of partially confirmed blocks."""
        rounds = self._by_instance[instance]
        nxt = self._next_round[instance]
        while nxt in rounds:
            self._last_partially_confirmed[instance] = rounds[nxt]
            nxt += 1
        self._next_round[instance] = nxt

    def _compute_bar(self) -> Optional[ConfirmationBar]:
        """Compute the bar from the last partially confirmed block per instance.

        Following Algorithm 1, the bar is derived from S', the set of last
        partially confirmed blocks of each instance.  An instance that has not
        yet partially confirmed any block contributes nothing yet — but then
        the bar must stay at its initial value (0, 0) because that instance
        could still produce a block of any low rank it has certified; we model
        this by returning ``None`` (no block can be confirmed yet) unless
        every instance has at least one partially confirmed block.
        """
        last_blocks = [b for b in self._last_partially_confirmed.values() if b is not None]
        if len(last_blocks) < self.num_instances:
            return None
        lowest = min(last_blocks, key=ordering_key)
        return ConfirmationBar(rank=lowest.rank + 1, instance=lowest.instance)

    def _drain(self, now: float) -> List[ConfirmedBlock]:
        bar = self._compute_bar()
        if bar is None:
            return []
        newly: List[ConfirmedBlock] = []
        bar_key = (bar.rank, bar.instance)
        while self._heap and (self._heap[0][0], self._heap[0][1]) < bar_key:
            rank, instance, round_ = heapq.heappop(self._heap)
            candidate_key = (instance, round_)
            candidate = self._unconfirmed.pop(candidate_key, None)
            if candidate is None:
                continue  # stale heap entry
            sn = len(self._confirmed)
            confirmed = ConfirmedBlock(block=candidate, sn=sn, confirmed_at=now)
            self._confirmed.append(confirmed)
            self._confirmed_ids.add(candidate_key)
            newly.append(confirmed)
        return newly

    # ------------------------------------------------------------- inspection
    def current_bar(self) -> Optional[ConfirmationBar]:
        """Expose the bar for tests and diagnostics."""
        return self._compute_bar()

    def unconfirmed_blocks(self) -> List[Block]:
        return sorted(self._unconfirmed.values(), key=ordering_key)


class ScanDrainDynamicOrderer(DynamicOrderer):
    """Reference drain: re-``min()`` over the unconfirmed set per confirmation.

    This is the original (pre-heap) implementation, O(k²) for a k-block
    drain.  It is kept as the single pinned baseline for the equivalence
    property tests and the drain micro-benchmark; production code should
    always use :class:`DynamicOrderer`.
    """

    def _drain(self, now: float) -> List[ConfirmedBlock]:
        bar = self._compute_bar()
        if bar is None:
            return []
        newly: List[ConfirmedBlock] = []
        while self._unconfirmed:
            candidate_key = min(
                self._unconfirmed, key=lambda k: ordering_key(self._unconfirmed[k])
            )
            candidate = self._unconfirmed[candidate_key]
            if not bar.admits(candidate):
                break
            del self._unconfirmed[candidate_key]
            sn = len(self._confirmed)
            confirmed = ConfirmedBlock(block=candidate, sn=sn, confirmed_at=now)
            self._confirmed.append(confirmed)
            self._confirmed_ids.add(candidate_key)
            newly.append(confirmed)
        return newly
