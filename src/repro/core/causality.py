"""Inter-block Causal Strength (paper Sec. 6.4).

Given the globally confirmed sequence ``B_1 .. B_n``, a *causality violation*
occurs for a pair ``i < j`` when ``B_i`` was generated (proposed) after
``B_j`` was committed by f+1 replicas — i.e. a later-created block jumped
ahead of an already-committed one in the global order, the situation a
front-runner exploits.  The causal strength is ``CS = exp(-N / n)`` where
``N`` is the number of violations; CS = 1 means no violation.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.ordering import ConfirmedBlock


def count_causality_violations(confirmed: Sequence[ConfirmedBlock]) -> int:
    """Count ordered pairs (i < j) where block i was proposed after j committed.

    ``proposed_at`` is the leader's proposal time and ``committed_at`` the
    partial-commit time (by f+1 replicas — in the simulator all honest
    replicas commit within the same event cascade, so the block's commit time
    is the relevant instant).
    """
    violations = 0
    blocks = [c.block for c in sorted(confirmed, key=lambda c: c.sn)]
    for j, later in enumerate(blocks):
        if later.committed_at is None:
            continue
        for earlier in blocks[:j]:
            if earlier.proposed_at > later.committed_at:
                violations += 1
    return violations


def causal_strength(confirmed: Sequence[ConfirmedBlock]) -> float:
    """Return ``CS = exp(-N / n)`` over the confirmed sequence (1.0 if empty)."""
    n = len(confirmed)
    if n == 0:
        return 1.0
    violations = count_causality_violations(confirmed)
    return math.exp(-violations / n)
