"""Monotonic rank bookkeeping (paper Sec. 4.1 and Algorithm 2).

Each replica tracks ``curRank`` — the highest *certified* rank it has seen —
together with the quorum certificate proving that 2f+1 replicas prepared a
block carrying that rank.  A leader about to propose collects 2f+1 rank
reports, takes the maximum, and assigns ``max + 1`` to its new block (clamped
to the epoch's ``maxRank``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.crypto.aggregate import QuorumCertificate


@dataclass(frozen=True, slots=True)
class RankCertificate:
    """Proof that a rank was carried by a block prepared by 2f+1 replicas.

    ``rank == 0`` (the epoch's minimum) needs no certificate: the prepare
    validity rule in the paper only requires a QC when ``rank_m != minRank``.

    ``quorum_certificate`` holds a real aggregate signature when the caller
    runs with full crypto (unit tests, small examples).  The simulator's hot
    path instead records only ``signer_count`` so that wire sizes stay
    faithful without recomputing MACs for every message.
    """

    rank: int
    quorum_certificate: Optional[QuorumCertificate] = None
    signer_count: int = 0

    def is_genesis(self) -> bool:
        return self.quorum_certificate is None and self.signer_count == 0

    @property
    def size_bytes(self) -> int:
        if self.quorum_certificate is not None:
            return 8 + self.quorum_certificate.size_bytes
        if self.signer_count:
            # modelled aggregate: one 96-byte point + signer bitmap
            return 8 + 96 + 4 * ((self.signer_count + 31) // 32)
        return 8


@dataclass(frozen=True, slots=True)
class RankReport:
    """A rank message from one replica: its current highest certified rank."""

    replica: int
    rank: int
    view: int
    round: int
    instance: int
    certificate: RankCertificate = field(default_factory=lambda: RankCertificate(rank=0))

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be non-negative")

    @property
    def size_bytes(self) -> int:
        return 64 + self.certificate.size_bytes  # signature + cert


@dataclass(slots=True)
class RankState:
    """Per-replica ``curRank`` state (Algorithm 2, lines 23-26 and 37-41)."""

    rank: int = 0
    certificate: RankCertificate = field(default_factory=lambda: RankCertificate(rank=0))

    def observe(self, rank: int, certificate: Optional[RankCertificate] = None) -> bool:
        """Adopt ``rank`` if it is higher than the current one.

        Returns True when the state advanced.  ``certificate`` defaults to a
        bare certificate carrying the rank (callers in the optimised protocol
        pass the aggregate QC they verified).
        """
        if rank <= self.rank:
            return False
        self.rank = rank
        self.certificate = certificate if certificate is not None else RankCertificate(rank=rank)
        return True

    def report(self, replica: int, view: int, round: int, instance: int) -> RankReport:
        """Produce the rank message this replica sends to a leader."""
        return RankReport(
            replica=replica,
            rank=self.rank,
            view=view,
            round=round,
            instance=instance,
            certificate=self.certificate,
        )


def choose_rank(
    reports: Sequence[RankReport],
    quorum: int,
    max_rank: int,
    byzantine_minimize: bool = False,
) -> Tuple[int, RankReport]:
    """Choose the rank for a new proposal from collected rank reports.

    Honest leaders (``byzantine_minimize=False``) take the maximum reported
    rank among at least ``quorum`` reports and add one, clamped to
    ``max_rank`` (Algorithm 2, line 6).

    A Byzantine straggler (Sec. 4.4 / Appendix B case 3) that collected more
    than ``quorum`` reports discards the highest ones and keeps only the
    lowest ``quorum`` before taking the maximum — the worst manipulation that
    still passes validation, since backups only require *some* 2f+1 valid
    reports.

    Returns ``(rank, winning_report)`` where ``winning_report`` supplies the
    certificate embedded in the pre-prepare message.
    """
    if len(reports) < quorum:
        raise ValueError(f"need at least {quorum} rank reports, got {len(reports)}")
    if max_rank < 0:
        raise ValueError("max_rank must be non-negative")

    pool = sorted(reports, key=lambda r: r.rank)
    if byzantine_minimize and len(pool) > quorum:
        pool = pool[:quorum]
    winning = max(pool, key=lambda r: r.rank)
    rank = min(winning.rank + 1, max_rank)
    return rank, winning


def merge_reports(
    existing: Iterable[RankReport], new: Iterable[RankReport]
) -> Tuple[RankReport, ...]:
    """Merge rank reports keeping, per replica, only the highest-rank report."""
    best = {}
    for report in list(existing) + list(new):
        current = best.get(report.replica)
        if current is None or report.rank > current.rank:
            best[report.replica] = report
    return tuple(sorted(best.values(), key=lambda r: r.replica))
