"""Epoch pacemaker (paper Sec. 5.2.1).

Ladon proceeds in epochs.  Epoch ``e`` owns the contiguous rank range
``[minRank(e), maxRank(e)]`` with ``maxRank(e) = minRank(e) + l(e) - 1``.  A
leader that proposes a block carrying ``maxRank(e)`` stops proposing; the
system advances to epoch ``e+1`` only when every instance has partially
committed its ``maxRank(e)`` block, after which 2f+1 checkpoint messages form
a stable checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class EpochConfig:
    """Static epoch parameters.

    ``length`` is the paper's ``l(e)`` (fixed at 64 in the evaluation), i.e.
    the number of ranks available per epoch.
    """

    length: int = 64
    num_instances: int = 1

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("epoch length must be positive")
        if self.num_instances <= 0:
            raise ValueError("need at least one instance")

    def min_rank(self, epoch: int) -> int:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return epoch * self.length

    def max_rank(self, epoch: int) -> int:
        return self.min_rank(epoch) + self.length - 1

    def epoch_of_rank(self, rank: int) -> int:
        if rank < 0:
            raise ValueError("rank must be non-negative")
        return rank // self.length


@dataclass
class EpochState:
    """Mutable per-epoch progress tracked by one replica."""

    epoch: int
    instances_at_max_rank: Set[int] = field(default_factory=set)
    checkpoint_votes: Set[int] = field(default_factory=set)
    stable_checkpoint: bool = False


class EpochPacemaker:
    """Tracks epoch advancement for one replica.

    The pacemaker is deliberately local: each replica observes partially
    committed blocks and checkpoint messages and decides when *it* may start
    processing the next epoch.  The protocol layer feeds it via
    :meth:`observe_commit` and :meth:`observe_checkpoint`.
    """

    def __init__(self, config: EpochConfig, quorum: int) -> None:
        self.config = config
        self.quorum = quorum
        self.current_epoch = 0
        self._states: Dict[int, EpochState] = {0: EpochState(epoch=0)}
        self.advancement_log: List[Tuple[float, int]] = []

    # ------------------------------------------------------------- rank range
    def min_rank(self, epoch: Optional[int] = None) -> int:
        return self.config.min_rank(self.current_epoch if epoch is None else epoch)

    def max_rank(self, epoch: Optional[int] = None) -> int:
        return self.config.max_rank(self.current_epoch if epoch is None else epoch)

    def _state(self, epoch: int) -> EpochState:
        if epoch not in self._states:
            self._states[epoch] = EpochState(epoch=epoch)
        return self._states[epoch]

    # ------------------------------------------------------------ observation
    def observe_commit(self, instance: int, rank: int, now: float) -> bool:
        """Record a partial commit; returns True if the epoch may now advance.

        Epoch ``e`` is complete when every instance has partially committed a
        block carrying ``maxRank(e)``.
        """
        epoch = self.config.epoch_of_rank(rank)
        state = self._state(epoch)
        if rank == self.config.max_rank(epoch):
            state.instances_at_max_rank.add(instance)
        return self.epoch_complete(epoch)

    def epoch_complete(self, epoch: Optional[int] = None) -> bool:
        epoch = self.current_epoch if epoch is None else epoch
        state = self._state(epoch)
        return len(state.instances_at_max_rank) >= self.config.num_instances

    def observe_checkpoint(self, epoch: int, replica: int) -> bool:
        """Record a checkpoint vote; returns True when it became stable (2f+1)."""
        state = self._state(epoch)
        state.checkpoint_votes.add(replica)
        if not state.stable_checkpoint and len(state.checkpoint_votes) >= self.quorum:
            state.stable_checkpoint = True
            return True
        return False

    def has_stable_checkpoint(self, epoch: int) -> bool:
        return self._state(epoch).stable_checkpoint

    # ------------------------------------------------------------ advancement
    def try_advance(self, now: float) -> bool:
        """Advance to the next epoch if the current one is complete and checkpointed."""
        state = self._state(self.current_epoch)
        if not self.epoch_complete(self.current_epoch):
            return False
        if not state.stable_checkpoint:
            return False
        self.current_epoch += 1
        self._state(self.current_epoch)
        self.advancement_log.append((now, self.current_epoch))
        return True
