"""Experiment harness: one entry point per table and figure of the paper.

The harness supports two engines:

* ``des`` — the message-level discrete-event simulator (exact protocol state
  machines; used for the 8–32 replica cells, the crash-fault timeline and the
  causality table);
* ``analytical`` — a block-level performance model that executes the same
  global-ordering code over synthetic per-block commit times (used for the
  64–128 replica sweeps of Fig. 5/6/7/10 where message-level simulation is
  too slow to run routinely).

Grid-shaped experiments run through :mod:`repro.bench.sweep`, a parallel
sweep runner with an on-disk result cache; ``python -m repro.bench`` exposes
every table/figure on the command line.
"""

from repro.bench.config import ExperimentCell, EngineKind
from repro.bench.runner import run_cell, run_cells
from repro.bench.analytical import AnalyticalConfig, run_analytical
from repro.bench import experiments
from repro.bench.report import format_table, format_series
from repro.bench.sweep import SweepCache, SweepProgress, SweepRunner, cell_key, derive_seed, expand_grid

__all__ = [
    "ExperimentCell",
    "EngineKind",
    "run_cell",
    "run_cells",
    "AnalyticalConfig",
    "run_analytical",
    "experiments",
    "format_table",
    "format_series",
    "SweepCache",
    "SweepProgress",
    "SweepRunner",
    "cell_key",
    "derive_seed",
    "expand_grid",
]
