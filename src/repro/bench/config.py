"""Experiment cell configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.fuzz.perturb import PerturbationSpec
from repro.protocols.base import SystemConfig
from repro.sim.faults import FaultConfig


#: engine selector: "des" (message-level) or "analytical" (block-level)
EngineKind = str


@dataclass(frozen=True)
class ExperimentCell:
    """One (protocol, n, straggler, environment) measurement cell."""

    protocol: str
    n: int
    stragglers: int = 0
    byzantine: bool = False
    environment: str = "wan"
    duration: float = 40.0
    straggler_slowdown: float = 10.0
    batch_size: int = 4096
    total_block_rate: Optional[float] = None  # default: 16 (WAN) / 32 (LAN)
    engine: EngineKind = "des"
    seed: int = 0
    epoch_length: int = 64
    propose_timeout: Optional[float] = None
    #: named scenario (see :mod:`repro.scenario.registry`); overrides
    #: ``environment`` with the scenario's topology when set
    scenario: Optional[str] = None
    #: named adversary (see :mod:`repro.adversary.registry`), applied on top
    #: of whatever the scenario configures; cache-keyed like ``scenario``
    adversary: Optional[str] = None
    #: execution backend for the DES engine's system: "des" (virtual time,
    #: the default), "realtime" (asyncio wall clock), or "sharded"
    #: (conservative-parallel DES across worker processes); cache-keyed
    runtime: str = "des"
    #: realtime backend only: wall seconds per simulated second
    realtime_timescale: float = 1.0
    #: sharded backend only: number of DES worker processes; cache-keyed
    shards: int = 1
    #: sharded backend only: replica placement ("affine" or "hash")
    shard_strategy: str = "affine"
    #: schedule-space fuzzing: bounded delivery-order perturbation applied to
    #: the run (DES engine only); cache-keyed like every other field
    perturbation: Optional[PerturbationSpec] = None
    #: opt-in historical-bug reproductions (regression corpus); cache-keyed
    compat_flags: Tuple[str, ...] = ()
    #: per-instance view-change timeout override; None = SystemConfig default
    view_change_timeout: Optional[float] = None

    def scenario_spec(self):
        """Resolve the named scenario, or None for the legacy presets."""
        if self.scenario is None:
            return None
        from repro.scenario.registry import get_scenario

        return get_scenario(self.scenario)

    def adversary_spec(self):
        """Resolve the named adversary, or None for an all-honest run."""
        if self.adversary is None:
            return None
        from repro.adversary.registry import get_adversary

        return get_adversary(self.adversary)

    def effective_environment(self) -> str:
        spec = self.scenario_spec()
        return spec.environment if spec is not None else self.environment

    def block_rate(self) -> float:
        if self.total_block_rate is not None:
            return self.total_block_rate
        return 32.0 if self.effective_environment() == "lan" else 16.0

    def to_system_config(self) -> SystemConfig:
        """Build the simulator configuration for the DES engine."""
        faults = (
            FaultConfig.with_stragglers(
                self.stragglers,
                self.n,
                slowdown=self.straggler_slowdown,
                byzantine=self.byzantine,
                seed=self.seed + 1,
            )
            if self.stragglers
            else FaultConfig()
        )
        adversary = self.adversary_spec()
        if adversary is not None:
            faults = replace(faults, adversary=adversary)
        extra = {}
        if self.view_change_timeout is not None:
            extra["view_change_timeout"] = self.view_change_timeout
        return SystemConfig(
            protocol=self.protocol,
            n=self.n,
            batch_size=self.batch_size,
            total_block_rate=self.block_rate(),
            epoch_length=self.epoch_length,
            environment=self.effective_environment(),
            duration=self.duration,
            seed=self.seed,
            faults=faults,
            propose_timeout=self.propose_timeout,
            scenario=self.scenario_spec(),
            runtime=self.runtime,
            realtime_timescale=self.realtime_timescale,
            shards=self.shards,
            shard_strategy=self.shard_strategy,
            perturbation=self.perturbation,
            compat_flags=self.compat_flags,
            **extra,
        )

    def label(self) -> str:
        tag = f"{self.protocol}-n{self.n}-s{self.stragglers}"
        if self.byzantine:
            tag += "-byz"
        if self.runtime != "des":
            tag += f"-rt:{self.runtime}"
        if self.shards != 1:
            tag += f"x{self.shards}"
        if self.adversary is not None:
            tag += f"-adv:{self.adversary}"
        if self.perturbation is not None:
            tag += f"-perturb:{self.perturbation.seed}"
        if self.compat_flags:
            tag += "-compat:" + ",".join(self.compat_flags)
        if self.scenario is not None:
            return f"{tag}-{self.scenario}"
        return f"{tag}-{self.environment}"
