"""Parallel experiment sweep runner.

The evaluation harness expands parameter grids into
:class:`~repro.bench.config.ExperimentCell`\\ s and runs them through one
shared machinery instead of ad-hoc nested loops:

* :func:`expand_grid` turns ``{"axis": [values...]}`` into the same
  deterministic nested-loop order the original per-figure loops used;
* :class:`SweepRunner` fans cells out across worker processes
  (``concurrent.futures.ProcessPoolExecutor``), falling back to in-process
  execution when multiprocessing is unavailable or ``workers <= 1``;
* :class:`SweepCache` memoises finished rows on disk, keyed by a stable
  content hash of the cell, so re-running a figure only pays for cells whose
  parameters changed;
* progress is streamed through a callback (the CLI prints it to stderr).

Rows come back as the plain ``RunMetrics.as_dict()`` dictionaries the
benchmark drivers already consume, **in cell order** regardless of which
worker finished first — a parallel sweep is byte-identical to a sequential
one because every cell carries its own seed and the engines are
deterministic.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, fields
from itertools import product
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.bench.config import ExperimentCell
from repro.bench.runner import run_cell

#: bump when the cell semantics or the row layout change incompatibly, so
#: stale cache entries are ignored rather than misread
CACHE_VERSION = 3

Row = Dict[str, object]
ProgressFn = Callable[["SweepProgress"], None]


# ----------------------------------------------------------------- grid
def expand_grid(
    axes: Mapping[str, Sequence[object]],
    defaults: Optional[Mapping[str, object]] = None,
) -> List[ExperimentCell]:
    """Expand ``axes`` into cells in deterministic nested-loop order.

    The first axis is the outermost loop (its values vary slowest), exactly
    like writing the equivalent nested ``for`` loops by hand, so porting a
    figure onto the sweep runner preserves its historical row order.
    """
    names = list(axes)
    cells: List[ExperimentCell] = []
    base = dict(defaults or {})
    for combo in product(*(tuple(axes[name]) for name in names)):
        kwargs = dict(base)
        kwargs.update(zip(names, combo))
        cells.append(ExperimentCell(**kwargs))
    return cells


def cell_key(cell: ExperimentCell) -> str:
    """Stable content hash of a cell (cache key, seed derivation input)."""
    payload = {"cache_version": CACHE_VERSION}
    for f in fields(cell):
        payload[f.name] = getattr(cell, f.name)
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def derive_seed(base_seed: int, *parts: object) -> int:
    """Deterministic per-cell seed from a base seed and identifying parts.

    Use this when a sweep should give every cell an independent random
    stream: the result only depends on the inputs, never on worker or
    completion order.
    """
    blob = json.dumps([base_seed, *parts], sort_keys=True, default=repr).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


# ---------------------------------------------------------------- cache
class SweepCache:
    """Disk cache of finished rows, one JSON file per cell hash.

    Layout: ``<directory>/<first two hash chars>/<hash>.json`` holding
    ``{"cell": <label>, "row": {...}}``.  Writes are atomic (tempfile +
    rename) so concurrent sweeps sharing a directory never observe torn
    entries.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], key + ".json")

    def get(self, cell: ExperimentCell) -> Optional[Row]:
        path = self._path(cell_key(cell))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)["row"]
        except (OSError, ValueError, KeyError):
            return None

    def put(self, cell: ExperimentCell, row: Row) -> None:
        path = self._path(cell_key(cell))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({"cell": cell.label(), "row": row}, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ------------------------------------------------------------- progress
@dataclass(frozen=True)
class SweepProgress:
    """One progress tick: cell ``done`` of ``total`` finished via ``source``."""

    done: int
    total: int
    label: str
    source: str  # "cache" | "run"
    cached: int  # cumulative cache hits


def _run_cell_row(cell: ExperimentCell) -> Row:
    """Worker entry point: run one cell and return its metrics row."""
    return run_cell(cell).as_dict()


# --------------------------------------------------------------- runner
class SweepRunner:
    """Runs batches of cells, optionally in parallel and with a disk cache.

    ``workers`` ``<= 1`` (or ``None``) runs in-process; larger values fan
    out across that many worker processes.  ``cache_dir=None`` disables
    caching.  Identical cells appearing multiple times in one batch are
    executed once.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.workers = int(workers) if workers else 0
        self.cache = SweepCache(cache_dir) if cache_dir else None
        self.progress = progress

    # ------------------------------------------------------------- public
    def run(self, cells: Sequence[ExperimentCell]) -> List[Row]:
        """Run ``cells`` and return one row per cell, in cell order."""
        total = len(cells)
        rows: List[Optional[Row]] = [None] * total
        done = 0
        cached = 0

        # Cache hits and duplicate-cell coalescing first.
        pending: Dict[str, List[int]] = {}
        pending_cells: Dict[str, ExperimentCell] = {}
        for index, cell in enumerate(cells):
            key = cell_key(cell)
            if self.cache is not None:
                hit = self.cache.get(cell)
                if hit is not None:
                    rows[index] = hit
                    done += 1
                    cached += 1
                    self._tick(done, total, cell.label(), "cache", cached)
                    continue
            pending.setdefault(key, []).append(index)
            pending_cells[key] = cell

        if pending:
            for key, row in self._execute(pending_cells):
                cell = pending_cells[key]
                if self.cache is not None:
                    self.cache.put(cell, row)
                for index in pending[key]:
                    # Each position gets its own dict: callers stamp
                    # per-position metadata into rows in place, and coalesced
                    # duplicates must not alias one another (cache hits come
                    # back as independent dicts too).
                    rows[index] = dict(row)
                    done += 1
                    self._tick(done, total, cell.label(), "run", cached)
        return [row for row in rows if row is not None]

    # ----------------------------------------------------------- internals
    def _tick(self, done: int, total: int, label: str, source: str, cached: int) -> None:
        if self.progress is not None:
            self.progress(
                SweepProgress(done=done, total=total, label=label, source=source, cached=cached)
            )

    def _execute(self, pending_cells: Mapping[str, ExperimentCell]):
        """Yield ``(key, row)`` for every pending cell, streaming completions."""
        keys = list(pending_cells)
        max_workers = min(self.workers, len(keys))
        finished_keys: set = set()
        if max_workers > 1:
            try:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = {
                        pool.submit(_run_cell_row, pending_cells[key]): key for key in keys
                    }
                    outstanding = set(futures)
                    while outstanding:
                        ready, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                        for future in ready:
                            key = futures[future]
                            finished_keys.add(key)
                            yield key, future.result()
                return
            except (OSError, PermissionError, ImportError, BrokenExecutor):
                # Environments without working multiprocessing primitives
                # (locked-down sandboxes, missing semaphores): degrade to the
                # sequential path for whatever has not completed yet.
                pass
        for key in keys:
            if key not in finished_keys:
                yield key, _run_cell_row(pending_cells[key])
