"""Run experiment cells on either engine."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.bench.analytical import AnalyticalConfig, run_analytical
from repro.bench.config import ExperimentCell
from repro.metrics.collector import RunMetrics
from repro.protocols.base import SystemResult
from repro.protocols.registry import build_system


def run_cell(cell: ExperimentCell) -> RunMetrics:
    """Run one experiment cell and return its summary metrics."""
    if cell.engine == "analytical":
        if cell.scenario is not None:
            raise ValueError(
                "scenarios run only on the DES engine; "
                f"cell {cell.label()!r} sets engine='analytical'"
            )
        if cell.adversary is not None:
            raise ValueError(
                "adversaries run only on the DES engine; "
                f"cell {cell.label()!r} sets engine='analytical'"
            )
        if cell.runtime != "des":
            raise ValueError(
                "the analytical engine has no execution runtime; "
                f"cell {cell.label()!r} sets runtime={cell.runtime!r}"
            )
        if cell.perturbation is not None or cell.compat_flags:
            raise ValueError(
                "schedule perturbation and compat flags run only on the DES "
                f"engine; cell {cell.label()!r} sets engine='analytical'"
            )
        config = AnalyticalConfig(
            protocol=cell.protocol,
            n=cell.n,
            stragglers=cell.stragglers,
            byzantine=cell.byzantine,
            environment=cell.environment,
            duration=cell.duration,
            straggler_slowdown=cell.straggler_slowdown,
            batch_size=cell.batch_size,
            total_block_rate=cell.total_block_rate,
            seed=cell.seed,
        )
        return run_analytical(config)
    result = run_des_cell(cell)
    return result.metrics


def run_des_cell(cell: ExperimentCell) -> SystemResult:
    """Run one cell on the message-level simulator, returning the full result."""
    system = build_system(cell.to_system_config())
    return system.run()


def run_cells(cells: Iterable[ExperimentCell]) -> List[RunMetrics]:
    """Run a batch of cells sequentially (deterministic order)."""
    return [run_cell(cell) for cell in cells]


def metrics_by_label(cells: Iterable[ExperimentCell]) -> Dict[str, RunMetrics]:
    """Run cells and key the results by ``cell.label()``."""
    out: Dict[str, RunMetrics] = {}
    for cell in cells:
        out[cell.label()] = run_cell(cell)
    return out
