"""Performance measurement harness: events/s, peak RSS, scaling sweeps.

``python -m repro.bench perf`` runs saturated cells through the DES engine
and reports wall-clock events/second plus peak resident set size, the two
axes the protocol-layer hot path is engineered for (see EXPERIMENTS.md
"Performance").  Modes:

* default — one cell (``--n``, 10 simulated seconds by default);
* ``--scaling`` — the scale-out curve over n ∈ {8, 16, 32, 64, 128}
  (extended to 256 and 512 when sharded), one **subprocess per cell** so
  each row's peak RSS is that cell's own high-water mark rather than the
  running maximum of earlier cells;
* ``--n-list`` — an explicit comma-separated ladder instead of the canon;
* ``--shards K`` — run on the conservative-parallel sharded DES backend
  with K worker processes (K >= 2);
* ``--profile`` — attach cProfile and print the top-25 functions by
  internal time (single-cell mode only; the profiler slows the run, so the
  events/s of a profiled run is reported but not comparable).

Peak RSS is read from ``resource.getrusage`` (ru_maxrss is in KiB on
Linux), a *process* high-water mark — which is why the scaling sweep
forks per cell.  Sharded cells instead sum the workers' self-reported
peaks plus the hub's own (``ShardedDESRuntime.total_peak_rss_bytes``):
``getrusage(RUSAGE_CHILDREN)`` reports the max over *terminated* children,
not their sum, so it would under-count an N-worker fleet N-fold.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from typing import List, Optional, Sequence

from repro.bench.config import ExperimentCell

#: the canonical scale-out ladder
SCALING_NS = (8, 16, 32, 64, 128)

#: the extended ladder the sharded backend unlocks (single-process n=512
#: holds n*m = 262k instance state machines in one heap — the sharded
#: runtime splits that across workers)
SCALING_NS_SHARDED = (8, 16, 32, 64, 128, 256, 512)


def peak_rss_bytes() -> int:
    """The process's peak resident set size, in bytes (Linux: KiB units)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return rss
    return rss * 1024


def machine_info() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def run_cell(
    protocol: str = "ladon-pbft",
    n: int = 32,
    duration: float = 10.0,
    batch_size: int = 1024,
    environment: str = "wan",
    seed: int = 0,
    profile: bool = False,
    shards: int = 1,
) -> dict:
    """Run one saturated cell; return events/s, wall time, and peak RSS."""
    from repro.protocols.registry import build_system

    cell = ExperimentCell(
        protocol=protocol,
        n=n,
        environment=environment,
        duration=duration,
        batch_size=batch_size,
        seed=seed,
        runtime="sharded" if shards > 1 else "des",
        shards=shards,
    )
    system = build_system(cell.to_system_config())
    rss_before = peak_rss_bytes()
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    start = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - start
    if profiler is not None:
        profiler.disable()
        import io
        import pstats

        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(25)
        print(buf.getvalue())
    events = system.runtime.events_processed
    # Sharded runs: the work (and the memory) lives in the worker
    # processes, so RUSAGE_SELF on the hub alone would be a lie — sum the
    # workers' self-reported peaks plus the hub's own.
    total_rss = getattr(system.runtime, "total_peak_rss_bytes", peak_rss_bytes)()
    row = {
        "cell": cell.label(),
        "n": n,
        "duration_simulated_s": duration,
        "events": events,
        "wall_seconds": round(elapsed, 3),
        "events_per_sec": round(events / elapsed),
        "peak_rss_mb": round(total_rss / 1e6, 1),
        "rss_before_mb": round(rss_before / 1e6, 1),
        "confirmed_blocks": len(result.confirmed),
        "throughput_tps": result.metrics.throughput_tps,
        "audit_safe": bool(result.audit and result.audit.safety_ok),
        "profiled": profile,
    }
    if shards > 1:
        row["shards"] = shards
        row["sync_rounds"] = result.metrics.extra.get("sync_rounds")
        row["lookahead_ms"] = result.metrics.extra.get("lookahead_ms")
    return row


def run_cell_subprocess(**kwargs) -> dict:
    """Run one cell in a fresh interpreter so peak RSS is per-cell."""
    import subprocess

    src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    code = (
        "import json, sys\n"
        f"sys.path.insert(0, {src_root!r})\n"
        "from repro.bench.perf import run_cell\n"
        f"print(json.dumps(run_cell(**{kwargs!r})))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _print_row(row: dict, stream=sys.stdout) -> None:
    stream.write(
        f"{row['cell']:28s} {row['events']:>10,} events  "
        f"{row['wall_seconds']:>7.2f}s  {row['events_per_sec']:>9,} ev/s  "
        f"peak RSS {row['peak_rss_mb']:>7.1f} MB\n"
    )
    stream.flush()


def perf_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf",
        description="Hot-path performance harness: events/s + peak RSS, "
        "optionally profiled, optionally swept over the n scaling ladder.",
    )
    parser.add_argument("--protocol", default="ladon-pbft")
    parser.add_argument("--n", type=int, default=32)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="simulated seconds (default: 10)")
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--environment", choices=["wan", "lan"], default="wan")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scaling", action="store_true",
                        help=f"sweep n over {list(SCALING_NS)} instead of one cell "
                             f"({list(SCALING_NS_SHARDED)} with --shards)")
    parser.add_argument("--n-list", dest="n_list",
                        help="comma-separated n ladder for --scaling "
                             "(e.g. 64,128,256), replacing the canon")
    parser.add_argument("--shards", type=int, default=1,
                        help="run on the sharded DES backend with this many "
                             "worker processes (>= 2); default: single-process")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the run and print the top-25 functions "
                             "(single-cell mode)")
    parser.add_argument("--json", dest="json_path",
                        help="write the results (with machine info) as JSON")
    args = parser.parse_args(argv)

    if args.scaling and args.profile:
        parser.error("--profile applies to a single cell, not --scaling")
    if args.shards < 1:
        parser.error("--shards must be >= 2 (or omitted for single-process)")
    if args.shards > 1 and args.profile:
        parser.error("--profile profiles the hub only; not meaningful with --shards")
    if args.n_list and not args.scaling:
        parser.error("--n-list only applies to --scaling")

    rows: List[dict] = []
    if args.scaling:
        if args.n_list:
            try:
                ladder = tuple(int(part) for part in args.n_list.split(","))
            except ValueError:
                parser.error(f"--n-list must be comma-separated ints, got {args.n_list!r}")
        else:
            ladder = SCALING_NS_SHARDED if args.shards > 1 else SCALING_NS
        for n in ladder:
            row = run_cell_subprocess(
                protocol=args.protocol,
                n=n,
                duration=args.duration,
                batch_size=args.batch_size,
                environment=args.environment,
                seed=args.seed,
                shards=args.shards,
            )
            rows.append(row)
            _print_row(row)
    else:
        row = run_cell(
            protocol=args.protocol,
            n=args.n,
            duration=args.duration,
            batch_size=args.batch_size,
            environment=args.environment,
            seed=args.seed,
            profile=args.profile,
            shards=args.shards,
        )
        rows.append(row)
        _print_row(row)

    if args.json_path:
        payload = {"machine": machine_info(), "results": rows}
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    return 0
