"""Performance measurement harness: events/s, peak RSS, scaling sweeps.

``python -m repro.bench perf`` runs saturated cells through the DES engine
and reports wall-clock events/second plus peak resident set size, the two
axes the protocol-layer hot path is engineered for (see EXPERIMENTS.md
"Performance").  Modes:

* default — one cell (``--n``, 10 simulated seconds by default);
* ``--scaling`` — the scale-out curve over n ∈ {8, 16, 32, 64, 128}, one
  **subprocess per cell** so each row's peak RSS is that cell's own
  high-water mark rather than the running maximum of earlier cells;
* ``--profile`` — attach cProfile and print the top-25 functions by
  internal time (single-cell mode only; the profiler slows the run, so the
  events/s of a profiled run is reported but not comparable).

Peak RSS is read from ``resource.getrusage`` (ru_maxrss is in KiB on
Linux), a *process* high-water mark — which is why the scaling sweep
forks per cell.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time
from typing import List, Optional, Sequence

from repro.bench.config import ExperimentCell

#: the canonical scale-out ladder
SCALING_NS = (8, 16, 32, 64, 128)


def peak_rss_bytes() -> int:
    """The process's peak resident set size, in bytes (Linux: KiB units)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return rss
    return rss * 1024


def machine_info() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def run_cell(
    protocol: str = "ladon-pbft",
    n: int = 32,
    duration: float = 10.0,
    batch_size: int = 1024,
    environment: str = "wan",
    seed: int = 0,
    profile: bool = False,
) -> dict:
    """Run one saturated cell; return events/s, wall time, and peak RSS."""
    from repro.protocols.registry import build_system

    cell = ExperimentCell(
        protocol=protocol,
        n=n,
        environment=environment,
        duration=duration,
        batch_size=batch_size,
        seed=seed,
    )
    system = build_system(cell.to_system_config())
    rss_before = peak_rss_bytes()
    profiler = None
    if profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    start = time.perf_counter()
    result = system.run()
    elapsed = time.perf_counter() - start
    if profiler is not None:
        profiler.disable()
        import io
        import pstats

        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(25)
        print(buf.getvalue())
    events = system.runtime.events_processed
    return {
        "cell": cell.label(),
        "n": n,
        "duration_simulated_s": duration,
        "events": events,
        "wall_seconds": round(elapsed, 3),
        "events_per_sec": round(events / elapsed),
        "peak_rss_mb": round(peak_rss_bytes() / 1e6, 1),
        "rss_before_mb": round(rss_before / 1e6, 1),
        "confirmed_blocks": len(result.confirmed),
        "throughput_tps": result.metrics.throughput_tps,
        "audit_safe": bool(result.audit and result.audit.safety_ok),
        "profiled": profile,
    }


def run_cell_subprocess(**kwargs) -> dict:
    """Run one cell in a fresh interpreter so peak RSS is per-cell."""
    import subprocess

    src_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    code = (
        "import json, sys\n"
        f"sys.path.insert(0, {src_root!r})\n"
        "from repro.bench.perf import run_cell\n"
        f"print(json.dumps(run_cell(**{kwargs!r})))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _print_row(row: dict, stream=sys.stdout) -> None:
    stream.write(
        f"{row['cell']:28s} {row['events']:>10,} events  "
        f"{row['wall_seconds']:>7.2f}s  {row['events_per_sec']:>9,} ev/s  "
        f"peak RSS {row['peak_rss_mb']:>7.1f} MB\n"
    )
    stream.flush()


def perf_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench perf",
        description="Hot-path performance harness: events/s + peak RSS, "
        "optionally profiled, optionally swept over the n scaling ladder.",
    )
    parser.add_argument("--protocol", default="ladon-pbft")
    parser.add_argument("--n", type=int, default=32)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="simulated seconds (default: 10)")
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--environment", choices=["wan", "lan"], default="wan")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scaling", action="store_true",
                        help=f"sweep n over {list(SCALING_NS)} instead of one cell")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the run and print the top-25 functions "
                             "(single-cell mode)")
    parser.add_argument("--json", dest="json_path",
                        help="write the results (with machine info) as JSON")
    args = parser.parse_args(argv)

    if args.scaling and args.profile:
        parser.error("--profile applies to a single cell, not --scaling")

    rows: List[dict] = []
    if args.scaling:
        for n in SCALING_NS:
            row = run_cell_subprocess(
                protocol=args.protocol,
                n=n,
                duration=args.duration,
                batch_size=args.batch_size,
                environment=args.environment,
                seed=args.seed,
            )
            rows.append(row)
            _print_row(row)
    else:
        row = run_cell(
            protocol=args.protocol,
            n=args.n,
            duration=args.duration,
            batch_size=args.batch_size,
            environment=args.environment,
            seed=args.seed,
            profile=args.profile,
        )
        rows.append(row)
        _print_row(row)

    if args.json_path:
        payload = {"machine": machine_info(), "results": rows}
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
    return 0
