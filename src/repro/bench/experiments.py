"""One function per table/figure of the paper's evaluation.

Every function returns plain dictionaries / lists so that the benchmark
drivers in ``benchmarks/`` can both assert on the reproduced *shape* (who
wins, by roughly what factor) and print the regenerated rows next to the
paper's numbers for EXPERIMENTS.md.

All grid-shaped experiments run through :mod:`repro.bench.sweep`: each
function expands its parameter grid into cells and hands them to a
:class:`~repro.bench.sweep.SweepRunner`, so every figure transparently gains
parallel workers and disk caching (``python -m repro.bench <experiment>
--workers N``).  Passing no runner keeps the historical behaviour — an
in-process sequential sweep producing exactly the same rows.

Default parameters are chosen so the whole suite regenerates in minutes on a
laptop: the 8–32 replica cells run on the message-level simulator, the
64–128 replica sweeps on the block-level analytical engine (see
:mod:`repro.bench.analytical` for the modelling assumptions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.complexity import compare_protocol_complexity
from repro.analysis.straggler_model import (
    StragglerModelConfig,
    dynamic_ordering_backlog,
    predetermined_ordering_backlog,
    throughput_ratio,
)
from repro.bench.config import ExperimentCell
from repro.bench.sweep import SweepRunner, expand_grid
from repro.metrics.collector import RunMetrics
from repro.sim.faults import CrashSpec, FaultConfig


PAPER_PROTOCOLS: Tuple[str, ...] = ("ladon-pbft", "iss-pbft", "rcc", "mir", "dqbft")


def _metrics_dict(metrics: RunMetrics) -> Dict[str, float]:
    return metrics.as_dict()


def _runner(sweep: Optional[SweepRunner]) -> SweepRunner:
    """The sweep runner to use: caller-supplied or a sequential default."""
    return sweep if sweep is not None else SweepRunner()


def instances_led_by(replica: int, num_instances: int, n: int, view: int = 0) -> List[int]:
    """Consensus instances whose view-``view`` leader is ``replica``.

    Instance ``i``'s leader in view ``v`` is ``(i + v) % n`` (one instance
    per replica in the paper's deployment, rotating on view changes).
    Experiment code must use this mapping rather than equating instance ids
    with replica ids — they only coincide for view 0 with ``m == n``.
    """
    return [i for i in range(num_instances) if (i + view) % n == replica]


# --------------------------------------------------------------------- Fig 2
def fig2a_analytical(
    num_instances: int = 16, straggler_period: int = 10, rounds: int = 100
) -> Dict[str, object]:
    """Fig. 2a: analytical backlog/delay growth with one straggler."""
    config = StragglerModelConfig(
        num_instances=num_instances, straggler_period=straggler_period, rounds=rounds
    )
    predetermined = predetermined_ordering_backlog(config)
    dynamic = dynamic_ordering_backlog(config)
    return {
        "config": config,
        "predetermined_queued": predetermined.queued_blocks,
        "predetermined_delay": predetermined.ordering_delay,
        "dynamic_queued": dynamic.queued_blocks,
        "dynamic_delay": dynamic.ordering_delay,
        "throughput_ratio": throughput_ratio(config),
    }


def fig2b_iss_stragglers(
    straggler_counts: Sequence[int] = (0, 1, 3),
    n: int = 16,
    duration: float = 40.0,
    batch_size: int = 1024,
    seed: int = 0,
    sweep: Optional[SweepRunner] = None,
) -> Dict[int, Dict[str, float]]:
    """Fig. 2b: ISS-PBFT throughput/latency with 0, 1, 3 stragglers (WAN)."""
    cells = expand_grid(
        {"stragglers": straggler_counts},
        defaults=dict(
            protocol="iss-pbft",
            n=n,
            environment="wan",
            duration=duration,
            batch_size=batch_size,
            engine="des",
            seed=seed,
        ),
    )
    rows = _runner(sweep).run(cells)
    return {cell.stragglers: row for cell, row in zip(cells, rows)}


# --------------------------------------------------------------------- Fig 5
def fig5_scaling(
    replica_counts: Sequence[int] = (8, 16, 32, 64, 128),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    environments: Sequence[str] = ("wan", "lan"),
    straggler_counts: Sequence[int] = (0, 1),
    duration: float = 300.0,
    seed: int = 0,
    sweep: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """Fig. 5 (a)-(h): throughput and latency vs replica count, WAN and LAN.

    Uses the analytical engine across the whole replica range so the full
    5-protocol x 5-size x 2-environment x 2-straggler grid regenerates in
    seconds.
    """
    cells = expand_grid(
        {
            "environment": environments,
            "stragglers": straggler_counts,
            "n": replica_counts,
            "protocol": protocols,
        },
        defaults=dict(duration=duration, engine="analytical", seed=seed),
    )
    rows = _runner(sweep).run(cells)
    for cell, row in zip(cells, rows):
        row["environment"] = cell.environment
    return rows


# --------------------------------------------------------------------- Fig 6
def fig6_straggler_count(
    straggler_counts: Sequence[int] = (1, 2, 3, 4, 5),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    n: int = 16,
    duration: float = 120.0,
    seed: int = 0,
    sweep: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """Fig. 6: throughput/latency vs number of stragglers (16 replicas, WAN)."""
    cells = expand_grid(
        {"stragglers": straggler_counts, "protocol": protocols},
        defaults=dict(
            n=n, environment="wan", duration=duration, engine="analytical", seed=seed
        ),
    )
    return _runner(sweep).run(cells)


# --------------------------------------------------------------------- Fig 7
def fig7_byzantine_stragglers(
    straggler_counts: Sequence[int] = (0, 1, 2, 3, 4, 5),
    n: int = 16,
    duration: float = 120.0,
    seed: int = 0,
    sweep: Optional[SweepRunner] = None,
) -> Dict[str, List[Dict[str, float]]]:
    """Fig. 7: Ladon under honest vs Byzantine stragglers (16 replicas, WAN)."""
    cells = expand_grid(
        {"stragglers": straggler_counts, "byzantine": (False, True)},
        defaults=dict(
            protocol="ladon-pbft",
            n=n,
            environment="wan",
            duration=duration,
            engine="analytical",
            seed=seed,
        ),
    )
    rows = _runner(sweep).run(cells)
    honest: List[Dict[str, float]] = []
    byzantine: List[Dict[str, float]] = []
    for cell, row in zip(cells, rows):
        (byzantine if cell.byzantine else honest).append(row)
    return {"honest": honest, "byzantine": byzantine}


# --------------------------------------------------------------------- Fig 8
def fig8_crash_recovery(
    n: int = 16,
    duration: float = 60.0,
    crash_at: float = 11.0,
    view_change_timeout: float = 10.0,
    batch_size: int = 1024,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 8: Ladon throughput over time with a crash fault at t=11 s.

    The crashed replica leads one instance; the view-change timeout is 10 s,
    so the instance recovers (and throughput with it) about 10 s later.

    This is the one experiment that needs the full :class:`SystemResult`
    timeline (throughput series, view-change log), not just summary metrics,
    so it runs its single cell directly rather than through the sweep cache.
    """
    crashed_replica = n - 1  # crash a leader other than the observer
    cell = ExperimentCell(
        protocol="ladon-pbft",
        n=n,
        environment="wan",
        duration=duration,
        batch_size=batch_size,
        engine="des",
        seed=seed,
        propose_timeout=view_change_timeout,
    )
    config = cell.to_system_config()
    config.faults = FaultConfig(crashes=(CrashSpec(replica=crashed_replica, at=crash_at),))
    from repro.protocols.registry import build_system

    system = build_system(config)
    result = system.run()
    # The view-change log records *instance* ids; map the crashed replica to
    # the instance(s) it led so we report when leadership actually rotated
    # away from the crashed node (instance id == replica id only holds for
    # view 0 with one instance per replica).
    crashed_instances = set(instances_led_by(crashed_replica, config.m, config.n))
    view_change_completed = [
        t for (t, instance, view) in result.view_change_times if instance in crashed_instances
    ]
    return {
        "throughput_series": result.throughput_series,
        "crash_time": crash_at,
        "view_change_completed_at": min(view_change_completed) if view_change_completed else None,
        "epoch_advancements": result.epoch_advancements,
        "metrics": _metrics_dict(result.metrics),
    }


# ------------------------------------------------------------------- Table 1
def table1_resources(
    n: int = 32,
    duration: float = 20.0,
    batch_size: int = 1024,
    seed: int = 0,
    sweep: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """Table 1: CPU and bandwidth usage of Ladon and ISS (0 and 1 straggler)."""
    cells = expand_grid(
        {
            "protocol": ("iss-pbft", "ladon-pbft"),
            "environment": ("wan", "lan"),
            "stragglers": (0, 1),
        },
        defaults=dict(
            n=n, duration=duration, batch_size=batch_size, engine="des", seed=seed
        ),
    )
    rows = _runner(sweep).run(cells)
    for cell, row in zip(cells, rows):
        row["environment"] = cell.environment
        row["block_rate"] = cell.block_rate()
    return rows


# ------------------------------------------------------------------- Table 2
def table2_causality(
    n: int = 16,
    straggler_counts: Sequence[int] = (1, 3, 5),
    proposal_rates: Sequence[float] = (0.5, 0.1),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    duration: float = 30.0,
    batch_size: int = 512,
    seed: int = 0,
    sweep: Optional[SweepRunner] = None,
) -> Dict[str, List[Dict[str, float]]]:
    """Table 2: causal strength vs straggler count and straggler proposal rate.

    The straggler-count sweep uses the paper's fixed straggler proposal rate
    of 0.1 blocks/s; the rate sweep uses one straggler.  Rates are mapped to
    the slowdown factor k of the per-leader rate (1 block/s at 16 replicas
    with a 16 blocks/s total rate).
    """
    runner = _runner(sweep)
    count_cells = expand_grid(
        {"stragglers": straggler_counts, "protocol": protocols},
        defaults=dict(
            n=n,
            straggler_slowdown=10.0,  # 0.1 blocks/s against a 1 block/s baseline
            environment="wan",
            duration=duration,
            batch_size=batch_size,
            engine="des",
            seed=seed,
        ),
    )
    by_count = runner.run(count_cells)

    per_leader_rate = 16.0 / n
    rate_cells: List[ExperimentCell] = []
    for rate in proposal_rates:
        slowdown = max(1.0, per_leader_rate / rate)
        rate_cells.extend(
            expand_grid(
                {"protocol": protocols},
                defaults=dict(
                    n=n,
                    stragglers=1,
                    straggler_slowdown=slowdown,
                    environment="wan",
                    duration=duration,
                    batch_size=batch_size,
                    engine="des",
                    seed=seed,
                ),
            )
        )
    by_rate = runner.run(rate_cells)
    rates_per_cell = [rate for rate in proposal_rates for _ in protocols]
    for rate, row in zip(rates_per_cell, by_rate):
        row["proposal_rate"] = rate
    return {"by_straggler_count": by_count, "by_proposal_rate": by_rate}


# -------------------------------------------------------------------- Fig 10
def fig10_hotstuff(
    replica_counts: Sequence[int] = (8, 16, 32, 64, 128),
    straggler_counts: Sequence[int] = (0, 1),
    duration: float = 1200.0,
    seed: int = 0,
    sweep: Optional[SweepRunner] = None,
) -> List[Dict[str, float]]:
    """Fig. 10 (Appendix D): Ladon-HotStuff vs ISS-HotStuff, WAN."""
    cells = expand_grid(
        {
            "stragglers": straggler_counts,
            "n": replica_counts,
            "protocol": ("ladon-hotstuff", "iss-hotstuff"),
        },
        defaults=dict(environment="wan", duration=duration, engine="analytical", seed=seed),
    )
    return _runner(sweep).run(cells)


# --------------------------------------------------------------- Appendix A
def appendix_a_complexity(replica_counts: Sequence[int] = (4, 16, 64, 128)) -> List[Dict[str, int]]:
    """Appendix A: message/authenticator complexity of PBFT vs Ladon variants."""
    rows: List[Dict[str, int]] = []
    for n in replica_counts:
        for name, profile in compare_protocol_complexity(n).items():
            rows.append(
                {
                    "protocol": name,
                    "n": n,
                    "pre_prepare_messages": profile.pre_prepare_messages,
                    "prepare_messages": profile.prepare_messages,
                    "commit_messages": profile.commit_messages,
                    "rank_messages": profile.rank_messages,
                    "pre_prepare_units": profile.pre_prepare_units,
                    "backup_verifications_pre_prepare": profile.backup_verifications_pre_prepare,
                    "total_messages": profile.total_messages,
                }
            )
    return rows
