"""One function per table/figure of the paper's evaluation.

Every function returns plain dictionaries / lists so that the benchmark
drivers in ``benchmarks/`` can both assert on the reproduced *shape* (who
wins, by roughly what factor) and print the regenerated rows next to the
paper's numbers for EXPERIMENTS.md.

Default parameters are chosen so the whole suite regenerates in minutes on a
laptop: the 8–32 replica cells run on the message-level simulator, the
64–128 replica sweeps on the block-level analytical engine (see
:mod:`repro.bench.analytical` for the modelling assumptions).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.complexity import compare_protocol_complexity
from repro.analysis.straggler_model import (
    StragglerModelConfig,
    dynamic_ordering_backlog,
    predetermined_ordering_backlog,
    throughput_ratio,
)
from repro.bench.config import ExperimentCell
from repro.bench.runner import run_cell, run_des_cell
from repro.metrics.collector import RunMetrics
from repro.sim.faults import CrashSpec, FaultConfig


PAPER_PROTOCOLS: Tuple[str, ...] = ("ladon-pbft", "iss-pbft", "rcc", "mir", "dqbft")


def _metrics_dict(metrics: RunMetrics) -> Dict[str, float]:
    return metrics.as_dict()


# --------------------------------------------------------------------- Fig 2
def fig2a_analytical(
    num_instances: int = 16, straggler_period: int = 10, rounds: int = 100
) -> Dict[str, object]:
    """Fig. 2a: analytical backlog/delay growth with one straggler."""
    config = StragglerModelConfig(
        num_instances=num_instances, straggler_period=straggler_period, rounds=rounds
    )
    predetermined = predetermined_ordering_backlog(config)
    dynamic = dynamic_ordering_backlog(config)
    return {
        "config": config,
        "predetermined_queued": predetermined.queued_blocks,
        "predetermined_delay": predetermined.ordering_delay,
        "dynamic_queued": dynamic.queued_blocks,
        "dynamic_delay": dynamic.ordering_delay,
        "throughput_ratio": throughput_ratio(config),
    }


def fig2b_iss_stragglers(
    straggler_counts: Sequence[int] = (0, 1, 3),
    n: int = 16,
    duration: float = 40.0,
    batch_size: int = 1024,
    seed: int = 0,
) -> Dict[int, Dict[str, float]]:
    """Fig. 2b: ISS-PBFT throughput/latency with 0, 1, 3 stragglers (WAN)."""
    results: Dict[int, Dict[str, float]] = {}
    for count in straggler_counts:
        cell = ExperimentCell(
            protocol="iss-pbft",
            n=n,
            stragglers=count,
            environment="wan",
            duration=duration,
            batch_size=batch_size,
            engine="des",
            seed=seed,
        )
        results[count] = _metrics_dict(run_cell(cell))
    return results


# --------------------------------------------------------------------- Fig 5
def fig5_scaling(
    replica_counts: Sequence[int] = (8, 16, 32, 64, 128),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    environments: Sequence[str] = ("wan", "lan"),
    straggler_counts: Sequence[int] = (0, 1),
    duration: float = 300.0,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 5 (a)-(h): throughput and latency vs replica count, WAN and LAN.

    Uses the analytical engine across the whole replica range so the full
    5-protocol x 5-size x 2-environment x 2-straggler grid regenerates in
    seconds.
    """
    rows: List[Dict[str, float]] = []
    for environment in environments:
        for stragglers in straggler_counts:
            for n in replica_counts:
                for protocol in protocols:
                    cell = ExperimentCell(
                        protocol=protocol,
                        n=n,
                        stragglers=stragglers,
                        environment=environment,
                        duration=duration,
                        engine="analytical",
                        seed=seed,
                    )
                    row = _metrics_dict(run_cell(cell))
                    row["environment"] = environment
                    rows.append(row)
    return rows


# --------------------------------------------------------------------- Fig 6
def fig6_straggler_count(
    straggler_counts: Sequence[int] = (1, 2, 3, 4, 5),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    n: int = 16,
    duration: float = 120.0,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 6: throughput/latency vs number of stragglers (16 replicas, WAN)."""
    rows: List[Dict[str, float]] = []
    for count in straggler_counts:
        for protocol in protocols:
            cell = ExperimentCell(
                protocol=protocol,
                n=n,
                stragglers=count,
                environment="wan",
                duration=duration,
                engine="analytical",
                seed=seed,
            )
            rows.append(_metrics_dict(run_cell(cell)))
    return rows


# --------------------------------------------------------------------- Fig 7
def fig7_byzantine_stragglers(
    straggler_counts: Sequence[int] = (0, 1, 2, 3, 4, 5),
    n: int = 16,
    duration: float = 120.0,
    seed: int = 0,
) -> Dict[str, List[Dict[str, float]]]:
    """Fig. 7: Ladon under honest vs Byzantine stragglers (16 replicas, WAN)."""
    honest: List[Dict[str, float]] = []
    byzantine: List[Dict[str, float]] = []
    for count in straggler_counts:
        for byz, sink in ((False, honest), (True, byzantine)):
            cell = ExperimentCell(
                protocol="ladon-pbft",
                n=n,
                stragglers=count,
                byzantine=byz,
                environment="wan",
                duration=duration,
                engine="analytical",
                seed=seed,
            )
            sink.append(_metrics_dict(run_cell(cell)))
    return {"honest": honest, "byzantine": byzantine}


# --------------------------------------------------------------------- Fig 8
def fig8_crash_recovery(
    n: int = 16,
    duration: float = 60.0,
    crash_at: float = 11.0,
    view_change_timeout: float = 10.0,
    batch_size: int = 1024,
    seed: int = 0,
) -> Dict[str, object]:
    """Fig. 8: Ladon throughput over time with a crash fault at t=11 s.

    The crashed replica leads one instance; the view-change timeout is 10 s,
    so the instance recovers (and throughput with it) about 10 s later.
    """
    crashed_replica = n - 1  # crash a leader other than the observer
    cell = ExperimentCell(
        protocol="ladon-pbft",
        n=n,
        environment="wan",
        duration=duration,
        batch_size=batch_size,
        engine="des",
        seed=seed,
        propose_timeout=view_change_timeout,
    )
    config = cell.to_system_config()
    config.faults = FaultConfig(crashes=(CrashSpec(replica=crashed_replica, at=crash_at),))
    from repro.protocols.registry import build_system

    system = build_system(config)
    result = system.run()
    view_change_completed = [
        t for (t, instance, view) in result.view_change_times if instance == crashed_replica
    ]
    return {
        "throughput_series": result.throughput_series,
        "crash_time": crash_at,
        "view_change_completed_at": min(view_change_completed) if view_change_completed else None,
        "epoch_advancements": result.epoch_advancements,
        "metrics": _metrics_dict(result.metrics),
    }


# ------------------------------------------------------------------- Table 1
def table1_resources(
    n: int = 32,
    duration: float = 20.0,
    batch_size: int = 1024,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Table 1: CPU and bandwidth usage of Ladon and ISS (0 and 1 straggler)."""
    rows: List[Dict[str, float]] = []
    for protocol in ("iss-pbft", "ladon-pbft"):
        for environment in ("wan", "lan"):
            for stragglers in (0, 1):
                cell = ExperimentCell(
                    protocol=protocol,
                    n=n,
                    stragglers=stragglers,
                    environment=environment,
                    duration=duration,
                    batch_size=batch_size,
                    engine="des",
                    seed=seed,
                )
                result = run_des_cell(cell)
                row = _metrics_dict(result.metrics)
                row["environment"] = environment
                row["block_rate"] = cell.block_rate()
                rows.append(row)
    return rows


# ------------------------------------------------------------------- Table 2
def table2_causality(
    n: int = 16,
    straggler_counts: Sequence[int] = (1, 3, 5),
    proposal_rates: Sequence[float] = (0.5, 0.1),
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    duration: float = 30.0,
    batch_size: int = 512,
    seed: int = 0,
) -> Dict[str, List[Dict[str, float]]]:
    """Table 2: causal strength vs straggler count and straggler proposal rate.

    The straggler-count sweep uses the paper's fixed straggler proposal rate
    of 0.1 blocks/s; the rate sweep uses one straggler.  Rates are mapped to
    the slowdown factor k of the per-leader rate (1 block/s at 16 replicas
    with a 16 blocks/s total rate).
    """
    by_count: List[Dict[str, float]] = []
    for count in straggler_counts:
        for protocol in protocols:
            cell = ExperimentCell(
                protocol=protocol,
                n=n,
                stragglers=count,
                straggler_slowdown=10.0,  # 0.1 blocks/s against a 1 block/s baseline
                environment="wan",
                duration=duration,
                batch_size=batch_size,
                engine="des",
                seed=seed,
            )
            by_count.append(_metrics_dict(run_cell(cell)))

    by_rate: List[Dict[str, float]] = []
    per_leader_rate = 16.0 / n
    for rate in proposal_rates:
        slowdown = max(1.0, per_leader_rate / rate)
        for protocol in protocols:
            cell = ExperimentCell(
                protocol=protocol,
                n=n,
                stragglers=1,
                straggler_slowdown=slowdown,
                environment="wan",
                duration=duration,
                batch_size=batch_size,
                engine="des",
                seed=seed,
            )
            row = _metrics_dict(run_cell(cell))
            row["proposal_rate"] = rate
            by_rate.append(row)
    return {"by_straggler_count": by_count, "by_proposal_rate": by_rate}


# -------------------------------------------------------------------- Fig 10
def fig10_hotstuff(
    replica_counts: Sequence[int] = (8, 16, 32, 64, 128),
    straggler_counts: Sequence[int] = (0, 1),
    duration: float = 1200.0,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Fig. 10 (Appendix D): Ladon-HotStuff vs ISS-HotStuff, WAN."""
    rows: List[Dict[str, float]] = []
    for stragglers in straggler_counts:
        for n in replica_counts:
            for protocol in ("ladon-hotstuff", "iss-hotstuff"):
                cell = ExperimentCell(
                    protocol=protocol,
                    n=n,
                    stragglers=stragglers,
                    environment="wan",
                    duration=duration,
                    engine="analytical",
                    seed=seed,
                )
                rows.append(_metrics_dict(run_cell(cell)))
    return rows


# --------------------------------------------------------------- Appendix A
def appendix_a_complexity(replica_counts: Sequence[int] = (4, 16, 64, 128)) -> List[Dict[str, int]]:
    """Appendix A: message/authenticator complexity of PBFT vs Ladon variants."""
    rows: List[Dict[str, int]] = []
    for n in replica_counts:
        for name, profile in compare_protocol_complexity(n).items():
            rows.append(
                {
                    "protocol": name,
                    "n": n,
                    "pre_prepare_messages": profile.pre_prepare_messages,
                    "prepare_messages": profile.prepare_messages,
                    "commit_messages": profile.commit_messages,
                    "rank_messages": profile.rank_messages,
                    "pre_prepare_units": profile.pre_prepare_units,
                    "backup_verifications_pre_prepare": profile.backup_verifications_pre_prepare,
                    "total_messages": profile.total_messages,
                }
            )
    return rows
