"""Plain-text table/series formatting for benchmark output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str], title: str = "") -> str:
    """Render rows as a fixed-width text table with the given columns."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    header = columns
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered_rows.append([_format_value(row.get(col, "")) for col in columns])
    widths = [
        max(len(str(header[i])), *(len(r[i]) for r in rendered_rows)) for i in range(len(columns))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(header[i]).ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for rendered in rendered_rows:
        lines.append("  ".join(rendered[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(series: Iterable[Tuple[float, float]], title: str = "", max_points: int = 30) -> str:
    """Render a (time, value) series as a compact text sparkline table."""
    points = list(series)
    lines: List[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)
    step = max(1, len(points) // max_points)
    peak = max(v for _, v in points) or 1.0
    for time, value in points[::step]:
        bar = "#" * int(round(30 * value / peak))
        lines.append(f"{time:8.1f}s  {value:12.1f}  {bar}")
    return "\n".join(lines)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)
