"""Block-level analytical performance engine.

The message-level simulator reproduces protocol behaviour exactly but costs
O(n^2) events per block, which makes the 64–128 replica sweeps of Fig. 5/6/7
and Fig. 10 impractically slow to regenerate routinely.  This engine keeps
the *ordering-layer* code identical (it feeds the very same
``DynamicOrderer`` / ``PredeterminedOrderer`` / ``DQBFTOrderer`` classes) and
replaces per-message simulation with a per-block timing model:

* each instance proposes on its schedule (total block rate capped at
  16 blocks/s WAN or 32 blocks/s LAN, stragglers at 1/k of their share and
  with empty blocks);
* a block's partial-commit latency is the leader's batch dissemination time
  ((n-1) x batch bytes / 1 Gbps, serialised on its uplink) plus the quorum
  round trips of its consensus protocol (3 one-way quorum delays for PBFT;
  chained HotStuff additionally waits for its 3-chain successors);
* Ladon ranks follow the pipelined collection rule (a proposal's rank is one
  above the highest rank certified by the time of the instance's previous
  commit, plus the leader's own fresh observation for honest leaders);
* DQBFT adds the ordering instance's consensus latency to every block and a
  sequencer service time that grows with n, modelling the central leader
  bottleneck.

The absolute numbers are a model; the comparative shapes (who wins, by what
factor, where DQBFT bends over) are what the figures check.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.block import Block
from repro.core.dqbft_ordering import DQBFTOrderer
from repro.core.ordering import ConfirmedBlock, DynamicOrderer, GlobalOrderer
from repro.core.predetermined import PredeterminedOrderer
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.sim.faults import FaultConfig


GIGABIT_BYTES_PER_S = 125_000_000.0

#: one-way quorum delay (seconds) used for the 2f+1-th fastest replica
_QUORUM_DELAY = {"wan": 0.095, "lan": 0.0008}
#: jitter applied per phase
_QUORUM_JITTER = {"wan": 0.02, "lan": 0.0004}

#: DQBFT sequencer service time per sequenced block, per replica in the
#: system (signature verification + ordering-instance fan-out at the leader)
_DQBFT_SEQUENCER_SERVICE_PER_REPLICA = 0.001


@dataclass(frozen=True)
class AnalyticalConfig:
    """Inputs of the block-level model (mirrors the DES SystemConfig)."""

    protocol: str = "ladon-pbft"
    n: int = 128
    stragglers: int = 0
    byzantine: bool = False
    environment: str = "wan"
    duration: float = 300.0
    straggler_slowdown: float = 10.0
    batch_size: int = 4096
    payload_bytes: int = 500
    total_block_rate: Optional[float] = None
    seed: int = 0

    @property
    def m(self) -> int:
        return self.n

    def block_rate(self) -> float:
        if self.total_block_rate is not None:
            return self.total_block_rate
        return 32.0 if self.environment == "lan" else 16.0

    @property
    def proposal_interval(self) -> float:
        return self.m / self.block_rate()

    def fault_config(self) -> FaultConfig:
        if not self.stragglers:
            return FaultConfig()
        return FaultConfig.with_stragglers(
            self.stragglers,
            self.n,
            slowdown=self.straggler_slowdown,
            byzantine=self.byzantine,
            seed=self.seed + 1,
        )


@dataclass
class _PlannedBlock:
    """A block plus its model-computed commit time."""

    block: Block
    commit_time: float


def _family(protocol: str) -> str:
    if "hotstuff" in protocol:
        return "hotstuff"
    return "pbft"


def _orderer_for(protocol: str, m: int) -> GlobalOrderer:
    if protocol.startswith("ladon"):
        return DynamicOrderer(num_instances=m)
    if protocol.startswith("dqbft"):
        return DQBFTOrderer(num_instances=m)
    return PredeterminedOrderer(num_instances=m)


def _dissemination_time(config: AnalyticalConfig, empty: bool) -> float:
    """Time the leader's uplink is busy pushing one proposal to n-1 backups."""
    if empty:
        batch_bytes = 0
    else:
        batch_bytes = config.batch_size * config.payload_bytes
    return (config.n - 1) * batch_bytes / GIGABIT_BYTES_PER_S


def _consensus_latency(config: AnalyticalConfig, rng: random.Random, phases: int = 3) -> float:
    """Quorum phase latency: ``phases`` one-way quorum delays plus jitter."""
    base = _QUORUM_DELAY[config.environment]
    jitter = _QUORUM_JITTER[config.environment]
    return sum(base + rng.random() * jitter for _ in range(phases))


def _plan_blocks(config: AnalyticalConfig) -> List[_PlannedBlock]:
    """Plan every block's proposal and partial-commit time."""
    rng = random.Random(config.seed)
    faults = config.fault_config()
    interval = config.proposal_interval
    family = _family(config.protocol)
    is_ladon = config.protocol.startswith("ladon")

    planned: List[_PlannedBlock] = []
    proposals: List[Tuple[float, int, int]] = []  # (time, instance, round)
    for instance in range(config.m):
        slowdown = faults.slowdown_of(instance)
        inst_interval = interval * slowdown
        offset = (instance / config.m) * interval
        t = offset + 1e-6
        round = 1
        while t <= config.duration:
            proposals.append((t, instance, round))
            t += inst_interval
            round += 1
    proposals.sort()

    # curRank is the highest rank certified by any committed block so far.
    # Honest leaders effectively propose one above the freshest rank they can
    # observe (their own observation is part of the report set), so their
    # ranks follow the running maximum over proposal order; only Byzantine
    # leaders need the explicit "certified by time t" query, which scans the
    # commit events of the (few) blocks committed so far.
    cur_rank_events: List[Tuple[float, int]] = []  # (commit_time, rank)

    def rank_certified_by(time: float) -> int:
        best = 0
        for commit_time, rank in cur_rank_events:
            if commit_time <= time and rank > best:
                best = rank
        return best

    pending_rank = 0  # running max over planned ranks, used for honest leaders

    for proposed_at, instance, round in proposals:
        straggler = faults.is_straggler(instance)
        byzantine = faults.is_byzantine(instance)
        empty = straggler
        dissemination = _dissemination_time(config, empty)
        if family == "hotstuff":
            # A chained-HotStuff block needs its 3 successors' proposals; the
            # successor cadence follows the instance's own proposal interval.
            chain_wait = 3 * interval * faults.slowdown_of(instance)
            latency = dissemination + _consensus_latency(config, rng, phases=2) + chain_wait
        else:
            latency = dissemination + _consensus_latency(config, rng, phases=3)
        commit_time = proposed_at + latency

        if is_ladon:
            if byzantine:
                # Lowest-2f+1 manipulation: the leader may ignore reports newer
                # than its previous commit phase (one straggler period ago).
                stale_horizon = proposed_at - interval * faults.slowdown_of(instance)
                rank = rank_certified_by(max(0.0, stale_horizon)) + 1
            else:
                rank = pending_rank + 1
            pending_rank = max(pending_rank, rank)
        else:
            rank = round

        block = Block(
            instance=instance,
            round=round,
            rank=rank,
            epoch=0,
            proposer=instance,
            proposed_at=proposed_at,
            committed_at=commit_time,
            tx_count_hint=0 if empty else config.batch_size,
            batch_submitted_at=max(0.0, proposed_at - interval / 2.0),
        )
        planned.append(_PlannedBlock(block=block, commit_time=commit_time))
        if is_ladon:
            cur_rank_events.append((commit_time, rank))
    return planned


def _dqbft_sequencing_times(
    config: AnalyticalConfig, planned: List[_PlannedBlock], rng: random.Random
) -> Dict[Tuple[int, int], float]:
    """Decide when the DQBFT ordering instance sequences each block.

    Blocks queue at the sequencer in commit order; each needs a service time
    proportional to n (verification + fan-out at the central leader) plus the
    ordering instance's own consensus latency.
    """
    service = _DQBFT_SEQUENCER_SERVICE_PER_REPLICA * config.n
    sequencer_free_at = 0.0
    decisions: Dict[Tuple[int, int], float] = {}
    for item in sorted(planned, key=lambda p: p.commit_time):
        start = max(sequencer_free_at, item.commit_time)
        sequencer_free_at = start + service
        decided_at = sequencer_free_at + _consensus_latency(config, rng, phases=3)
        decisions[(item.block.instance, item.block.round)] = decided_at
    return decisions


def run_analytical(config: AnalyticalConfig) -> RunMetrics:
    """Run the block-level model and summarise it like a DES run."""
    planned = _plan_blocks(config)
    orderer = _orderer_for(config.protocol, config.m)
    collector = MetricsCollector(bin_width=1.0)
    rng = random.Random(config.seed + 17)

    events: List[Tuple[float, str, _PlannedBlock]] = [
        (item.commit_time, "commit", item) for item in planned
    ]
    if config.protocol.startswith("dqbft"):
        decisions = _dqbft_sequencing_times(config, planned, rng)
        for item in planned:
            decided_at = decisions[(item.block.instance, item.block.round)]
            events.append((decided_at, "decide", item))
    events.sort(key=lambda e: (e[0], e[1]))

    for time, kind, item in events:
        if time > config.duration:
            continue
        if kind == "commit":
            collector.record_partial_commit()
            newly = orderer.add_partially_committed(item.block, time)
        else:
            assert isinstance(orderer, DQBFTOrderer)
            newly = orderer.add_sequencing_decision(item.block.block_id, time)
        if newly:
            collector.record_confirmations(newly)

    return collector.summarise(
        protocol=config.protocol,
        n=config.n,
        stragglers=config.stragglers,
        duration=config.duration,
    )
