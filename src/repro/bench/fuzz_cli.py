"""``python -m repro.bench fuzz``: the schedule-space fuzzer CLI.

Subcommands::

    fuzz run     — sweep perturbation seeds, audit every run, shrink and
                   serialize violations (exit 1 iff a violation was found)
    fuzz replay  — re-execute an artifact and check bit-exactness (exit 0
                   iff the replay reproduces the pinned trace digest and
                   audit verdict)
    fuzz shrink  — re-minimize an existing artifact with a fresh test budget

The campaign engine (:mod:`repro.fuzz.campaign`) is wall-clock-free by the
determinism rules (DET-001); the wall-clock budget for ``fuzz run`` lives
here, injected as a ``should_stop`` callable — the bench package is the one
place wall clocks are allowed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Optional, Sequence

from repro.bench.sweep import SweepRunner


def _budget_stopper(budget_s: Optional[float]) -> Optional[Callable[[], bool]]:
    if budget_s is None:
        return None
    deadline = time.monotonic() + budget_s
    return lambda: time.monotonic() >= deadline


def _artifact_name(finding) -> str:
    cell = finding.cell
    flags = "-".join(cell.compat_flags) if cell.compat_flags else "faithful"
    return f"fuzz-{flags}-seed{finding.seed_index}.json"


def fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import FuzzConfig, run_campaign

    config = FuzzConfig(
        protocol=args.protocol,
        n=args.n,
        duration=args.duration,
        batch_size=args.batch_size,
        seed=args.seed,
        seeds=args.seeds,
        base_seed=args.base_seed,
        max_delay=args.max_delay,
        probability=args.probability,
        view_change_timeout=args.view_change_timeout,
        propose_timeout=args.propose_timeout,
        scenario=args.scenario,
        adversary=args.adversary,
        compat_flags=tuple(args.compat or ()),
    )
    runner = SweepRunner(workers=args.workers)
    emit = lambda message: print(f"fuzz: {message}", file=sys.stderr)
    report = run_campaign(
        config,
        runner=runner,
        should_stop=_budget_stopper(args.budget),
        stop_on_violation=not args.keep_going,
        do_shrink=not args.no_shrink,
        shrink_max_tests=args.shrink_tests,
        log=emit,
    )
    print(
        f"fuzz run: {report.seeds_run}/{config.seeds} seeds, "
        f"{len(report.findings)} violation(s)"
        + (" [budget hit]" if report.stopped_early else "")
    )
    for finding in report.findings:
        kinds = ",".join(finding.artifact["expected"]["violation_kinds"])
        line = f"  seed {finding.seed_index}: {kinds}"
        if finding.shrink_result is not None:
            line += (
                f" (shrunk to {finding.shrink_result.nonzero_decisions} "
                f"decisions in {finding.shrink_result.tests} tests)"
            )
        print(line)
        if args.artifact_dir:
            from repro.fuzz.artifact import write_artifact

            os.makedirs(args.artifact_dir, exist_ok=True)
            path = os.path.join(args.artifact_dir, _artifact_name(finding))
            write_artifact(path, finding.artifact)
            print(f"  artifact: {path}")
    if args.json_path:
        payload = {
            "seeds_run": report.seeds_run,
            "stopped_early": report.stopped_early,
            "findings": [
                {"seed_index": f.seed_index, "artifact": f.artifact}
                for f in report.findings
            ],
            "rows": report.rows,
        }
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=repr)
    return 1 if report.findings else 0


def fuzz_replay(args: argparse.Namespace) -> int:
    from repro.fuzz.artifact import read_artifact
    from repro.fuzz.replay import replay_artifact

    status = 0
    for path in args.artifact:
        artifact = read_artifact(path)
        report = replay_artifact(artifact)
        note = artifact.get("note", "")
        print(f"{path}: {report.summary()}" + (f"  [{note}]" if note else ""))
        if not report.ok:
            status = 1
    return status


def fuzz_shrink(args: argparse.Namespace) -> int:
    from repro.fuzz.artifact import (
        artifact_cell,
        make_artifact,
        outcome_of,
        read_artifact,
        write_artifact,
    )
    from repro.fuzz.campaign import predicate_for
    from repro.fuzz.replay import run_cell_traced
    from repro.fuzz.shrink import shrink

    artifact = read_artifact(args.artifact)
    cell = artifact_cell(artifact)
    # Preserve the finding's class while minimizing: a safety artifact must
    # not shrink into a liveness-only repro.
    predicate = predicate_for(artifact["expected"])
    if not predicate(cell):
        print(f"{args.artifact}: cell no longer violates; nothing to shrink")
        return 1
    result = shrink(cell, predicate, max_tests=args.shrink_tests)
    print(
        f"{args.artifact}: {result.nonzero_decisions} nonzero decisions "
        f"after {result.tests} tests ({result.accepted} reductions)"
    )
    system, run_result = run_cell_traced(result.cell)
    outcome = outcome_of(run_result, system.trace.events)
    minimized = make_artifact(
        result.cell, outcome, system.trace.events, note=artifact.get("note", "")
    )
    out_path = args.output or args.artifact
    write_artifact(out_path, minimized)
    print(f"wrote {out_path}")
    return 0


def fuzz_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench fuzz",
        description="Schedule-space fuzzing: perturb delivery schedules, "
        "audit every run, shrink violations to minimal replayable artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="sweep perturbation seeds and audit")
    run_parser.add_argument("--protocol", default="ladon-pbft")
    run_parser.add_argument("--n", type=int, default=4)
    run_parser.add_argument("--duration", type=float, default=8.0,
                            help="simulated seconds per run (default: 8)")
    run_parser.add_argument("--batch-size", type=int, default=64)
    run_parser.add_argument("--seed", type=int, default=0,
                            help="base cell seed (workload/latency RNG)")
    run_parser.add_argument("--seeds", type=int, default=16,
                            help="perturbation seeds to sweep (default: 16)")
    run_parser.add_argument("--base-seed", type=int, default=0,
                            help="campaign seed the perturbation seeds derive from")
    run_parser.add_argument("--max-delay", type=float, default=1.2,
                            help="per-delivery delay bound in seconds")
    run_parser.add_argument("--probability", type=float, default=0.08,
                            help="fraction of deliveries perturbed")
    run_parser.add_argument("--view-change-timeout", type=float, default=1.0)
    run_parser.add_argument("--propose-timeout", type=float, default=2.0)
    run_parser.add_argument("--scenario", default=None)
    run_parser.add_argument("--adversary", default=None)
    run_parser.add_argument("--compat", action="append", default=None,
                            metavar="FLAG",
                            help="enable a compat bug reproduction "
                                 "(e.g. wedged-view-cursor); repeatable")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="sweep worker processes (default: 1)")
    run_parser.add_argument("--budget", type=float, default=None,
                            help="wall-clock budget in seconds (checked "
                                 "between seed batches)")
    run_parser.add_argument("--keep-going", action="store_true",
                            help="continue after the first violation")
    run_parser.add_argument("--no-shrink", action="store_true",
                            help="serialize violations without minimizing")
    run_parser.add_argument("--shrink-tests", type=int, default=48,
                            help="max shrink predicate evaluations per finding")
    run_parser.add_argument("--artifact-dir", default=None,
                            help="write violation artifacts into this directory")
    run_parser.add_argument("--json", dest="json_path")

    replay_parser = sub.add_parser(
        "replay", help="re-execute artifacts and check bit-exactness"
    )
    replay_parser.add_argument("artifact", nargs="+",
                               help="artifact JSON path(s), e.g. tests/corpus/*.json")

    shrink_parser = sub.add_parser(
        "shrink", help="re-minimize an existing artifact"
    )
    shrink_parser.add_argument("artifact", help="artifact JSON path")
    shrink_parser.add_argument("--shrink-tests", type=int, default=96)
    shrink_parser.add_argument("--output", default=None,
                               help="write here instead of overwriting")

    args = parser.parse_args(argv)
    if args.command == "run":
        return fuzz_run(args)
    if args.command == "replay":
        return fuzz_replay(args)
    return fuzz_shrink(args)
