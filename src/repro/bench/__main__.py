"""Command-line entry point for the experiment sweep harness.

Usage::

    python -m repro.bench list
    python -m repro.bench fig5 --workers 4
    python -m repro.bench table2 --cache-dir .sweep-cache --json out.json
    python -m repro.bench run --runtime realtime --duration 3
    python -m repro.bench run --protocol iss-pbft --scenario lossy-lan
    python -m repro.bench scenario list
    python -m repro.bench scenario run wan-partition --protocol ladon-pbft
    python -m repro.bench scenario sweep --scenarios all --workers 4
    python -m repro.bench adversary list
    python -m repro.bench adversary run equivocation --n 4 --duration 20
    python -m repro.bench perf --scaling --json BENCH.json
    python -m repro.bench perf --n 128 --duration 10
    python -m repro.bench fuzz run --seeds 16 --workers 4
    python -m repro.bench fuzz replay tests/corpus/*.json

Each experiment name maps to the corresponding function in
:mod:`repro.bench.experiments`; grid-shaped experiments (and scenario
sweeps) run through a :class:`~repro.bench.sweep.SweepRunner` wired to the
chosen worker count and cache directory, with per-cell progress streamed to
stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench import experiments
from repro.bench.config import ExperimentCell
from repro.bench.report import format_series, format_table
from repro.bench.sweep import SweepProgress, SweepRunner

#: columns shared by every metrics row, printed in this order when present
DEFAULT_COLUMNS = (
    "protocol",
    "n",
    "stragglers",
    "environment",
    "throughput_tps",
    "peak_throughput_tps",
    "average_latency_s",
    "causal_strength",
    "confirmed_blocks",
)

#: experiment name -> (function, takes_sweep_runner)
EXPERIMENTS: Dict[str, Callable] = {
    "fig2a": experiments.fig2a_analytical,
    "fig2b": experiments.fig2b_iss_stragglers,
    "fig5": experiments.fig5_scaling,
    "fig6": experiments.fig6_straggler_count,
    "fig7": experiments.fig7_byzantine_stragglers,
    "fig8": experiments.fig8_crash_recovery,
    "table1": experiments.table1_resources,
    "table2": experiments.table2_causality,
    "fig10": experiments.fig10_hotstuff,
    "appendix-a": experiments.appendix_a_complexity,
}

#: experiments that accept a ``sweep=`` runner (grid-shaped)
SWEEPABLE = {"fig2b", "fig5", "fig6", "fig7", "table1", "table2", "fig10"}


def _progress_printer(stream) -> Callable[[SweepProgress], None]:
    def _print(progress: SweepProgress) -> None:
        source = "cached" if progress.source == "cache" else "ran"
        stream.write(
            f"\r[{progress.done}/{progress.total}] {source} {progress.label}"
            f" ({progress.cached} cache hits)   "
        )
        stream.flush()
        if progress.done == progress.total:
            stream.write("\n")

    return _print


def _rows_of(result: object) -> List[dict]:
    """Flatten an experiment result into printable rows, best effort."""
    if isinstance(result, list) and result and isinstance(result[0], dict):
        return result
    if isinstance(result, dict):
        rows: List[dict] = []
        for key, value in result.items():
            if isinstance(value, list) and value and isinstance(value[0], dict):
                for row in value:
                    rows.append({"group": key, **row})
            elif isinstance(value, dict) and "protocol" in value:
                rows.append({"group": key, **value})
        return rows
    return []


def _print_result(name: str, result: object) -> None:
    if name == "fig8":
        series = result.get("throughput_series", [])
        print(format_series(series, title="fig8: throughput over time (tx/s)"))
        print(f"crash at t={result['crash_time']}s; "
              f"view change completed at t={result['view_change_completed_at']}")
        rows = [result["metrics"]]
    else:
        rows = _rows_of(result)
    if rows:
        columns = [c for c in ("group",) + DEFAULT_COLUMNS if any(c in r for r in rows)]
        extra = [c for c in rows[0] if c not in columns and c not in DEFAULT_COLUMNS]
        print(format_table(rows, columns=columns + extra[:3], title=name))
    elif name != "fig8":
        print(json.dumps(result, indent=2, default=repr))


# ------------------------------------------------------------- run CLI
def run_main(argv: Sequence[str]) -> int:
    """``python -m repro.bench run``: one cell on a chosen execution backend."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench run",
        description="Run one experiment cell end-to-end on a chosen runtime "
        "backend (DES virtual time, or asyncio wall clock) and audit it.",
    )
    parser.add_argument("--runtime", choices=["des", "realtime"], default="des",
                        help="execution backend (default: des)")
    parser.add_argument("--protocol", default="ladon-pbft")
    parser.add_argument("--n", type=int, default=4)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="simulated seconds (realtime: wall-clock seconds "
                             "scaled by --timescale)")
    parser.add_argument("--timescale", type=float, default=1.0,
                        help="realtime only: wall seconds per simulated second "
                             "(0.5 runs a 10 s scenario in ~5 s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--scenario", default=None,
                        help="named scenario (default: paper WAN preset)")
    parser.add_argument("--adversary", default=None,
                        help="named adversary (default: all honest)")
    parser.add_argument("--json", dest="json_path")
    args = parser.parse_args(argv)

    from repro.bench.runner import run_des_cell

    cell = ExperimentCell(
        protocol=args.protocol,
        n=args.n,
        duration=args.duration,
        seed=args.seed,
        batch_size=args.batch_size,
        scenario=args.scenario,
        adversary=args.adversary,
        runtime=args.runtime,
        realtime_timescale=args.timescale,
    )
    result = run_des_cell(cell)
    row = result.metrics.as_dict()
    row["runtime"] = args.runtime
    print(format_table([row], columns=["runtime"] + list(DEFAULT_COLUMNS),
                       title=f"run {cell.label()}"))
    for line in _audit_lines(result):
        print(line)
    if result.dynamics_log:
        print("timeline:")
        for time, kind, detail in result.dynamics_log:
            print(f"  t={time:7.3f}s  {kind:28s} {detail}")
    if args.json_path:
        payload = {
            "cell": cell.label(),
            "runtime": args.runtime,
            "metrics": row,
            "audit": {
                "safety_ok": result.audit.safety_ok,
                "violations": [str(v) for v in result.audit.violations],
                "stalled_instances": list(result.audit.stalled_instances),
            },
            "dynamics_log": result.dynamics_log,
        }
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=repr)
    return 0 if result.audit.safety_ok else 1


# ------------------------------------------------------------ adversary CLI
def _adversary_list() -> int:
    from repro.adversary.attacks import MESSAGE_KINDS
    from repro.adversary.registry import available_adversaries, get_adversary

    print("attack catalog (compose with AdversarySpec; see repro.adversary):")
    print("  equivocation       conflicting proposals/votes to disjoint replica sets")
    print("  silence            selective suppression per target/kind/instance")
    print("  delayed-votes      hold messages just under the view-change timeout")
    print("  rank-manipulation  the paper's Byzantine straggler (Sec. 4.4)")
    print(f"  message kinds: {', '.join(MESSAGE_KINDS)}")
    print()
    print("named adversaries (python -m repro.bench adversary run <name>):")
    for name in available_adversaries():
        spec = get_adversary(name)
        print(f"  {name:24s} {spec.description or spec.describe()}")
    print()
    print("adversarial scenarios (python -m repro.bench scenario run byz-*):")
    from repro.scenario.registry import available_scenarios, get_scenario

    for name in available_scenarios():
        if name.startswith("byz-"):
            print(f"  {name:24s} {get_scenario(name).description}")
    return 0


def _audit_lines(result) -> List[str]:
    lines = [f"audit: {result.audit.summary()}"]
    for violation in result.audit.violations[:5]:
        lines.append(f"  VIOLATION {violation}")
    if len(result.audit.violations) > 5:
        lines.append(f"  ... and {len(result.audit.violations) - 5} more")
    return lines


def _adversary_run(args: argparse.Namespace) -> int:
    from repro.adversary.registry import get_adversary
    from repro.bench.runner import run_des_cell

    spec = get_adversary(args.name)  # fail fast on unknown names
    common = dict(
        protocol=args.protocol,
        n=args.n,
        duration=args.duration,
        seed=args.seed,
        batch_size=args.batch_size,
        scenario=args.scenario,
        runtime=args.runtime,
        realtime_timescale=args.timescale,
    )
    baseline_label = "honest"
    if args.scenario is not None:
        from repro.scenario.registry import get_scenario

        if get_scenario(args.scenario).adversary is not None:
            # The base scenario is itself adversarial: the comparison run is
            # a baseline for the *extra* attack, not an honest deployment.
            baseline_label = f"baseline ({args.scenario})"
            print(
                f"note: scenario {args.scenario!r} declares its own adversary; "
                f"the comparison row is that scenario, not an honest run",
                file=sys.stderr,
            )
    adversarial_cell = ExperimentCell(adversary=args.name, **common)
    result = run_des_cell(adversarial_cell)
    rows = []
    if not args.no_baseline:
        baseline = run_des_cell(ExperimentCell(**common))
        row = baseline.metrics.as_dict()
        row["run"] = baseline_label
        rows.append(row)
    row = result.metrics.as_dict()
    row["run"] = args.name
    rows.append(row)
    columns = ["run"] + [c for c in DEFAULT_COLUMNS if c != "stragglers"]
    columns += ["safety_violations", "stalled_instances"]
    print(format_table(
        rows,
        columns=columns,
        title=f"adversary {args.name}: {spec.description or spec.describe()}",
    ))
    for line in _audit_lines(result):
        print(line)
    if result.dynamics_log:
        print("timeline:")
        for time, kind, detail in result.dynamics_log:
            print(f"  t={time:7.3f}s  {kind:28s} {detail}")
    if args.json_path:
        payload = {
            "adversary": args.name,
            "rows": rows,
            "audit": {
                "safety_ok": result.audit.safety_ok,
                "violations": [str(v) for v in result.audit.violations],
                "stalled_instances": list(result.audit.stalled_instances),
                "honest_replicas": list(result.audit.honest_replicas),
            },
            "dynamics_log": result.dynamics_log,
        }
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=repr)
    # exit 0 exactly when the auditor's verdict matches the expectation: a
    # negative control (--expect-unsafe) that fails to break safety is a
    # failure too.
    return 0 if result.audit.safety_ok != args.expect_unsafe else 1


def adversary_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench adversary",
        description="Run catalog adversaries against an honest baseline, with audit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the attack catalog and named adversaries")

    run_parser = sub.add_parser(
        "run", help="run one named adversary and compare against the honest baseline"
    )
    run_parser.add_argument("name", help="adversary name (see 'adversary list')")
    run_parser.add_argument("--protocol", default="ladon-pbft")
    run_parser.add_argument("--n", type=int, default=4)
    run_parser.add_argument("--duration", type=float, default=30.0)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--batch-size", type=int, default=1024)
    run_parser.add_argument("--scenario", default=None,
                            help="base scenario to attack (default: paper WAN preset)")
    run_parser.add_argument("--runtime", choices=["des", "realtime"], default="des",
                            help="execution backend (default: des)")
    run_parser.add_argument("--timescale", type=float, default=1.0,
                            help="realtime only: wall seconds per simulated second")
    run_parser.add_argument("--no-baseline", action="store_true",
                            help="skip the honest comparison run")
    run_parser.add_argument("--expect-unsafe", action="store_true",
                            help="exit 0 even when the auditor reports violations "
                                 "(negative controls like equivocation-colluding)")
    run_parser.add_argument("--json", dest="json_path")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _adversary_list()
    return _adversary_run(args)


# ------------------------------------------------------------- scenario CLI
def _scenario_list() -> int:
    from repro.scenario.registry import available_scenarios, get_scenario

    for name in available_scenarios():
        spec = get_scenario(name)
        print(f"{name:16s} [{spec.environment}] {spec.description or spec.describe()}")
    return 0


def _scenario_run(args: argparse.Namespace) -> int:
    from repro.bench.runner import run_des_cell
    from repro.scenario.registry import get_scenario

    spec = get_scenario(args.name)  # fail fast on unknown names
    cell = ExperimentCell(
        protocol=args.protocol,
        n=args.n,
        environment=spec.environment,
        duration=args.duration,
        seed=args.seed,
        batch_size=args.batch_size,
        scenario=args.name,
        runtime=args.runtime,
        realtime_timescale=args.timescale,
    )
    result = run_des_cell(cell)
    row = result.metrics.as_dict()
    row["scenario"] = args.name
    row["environment"] = spec.environment
    print(format_table([row], columns=list(DEFAULT_COLUMNS) + ["scenario"],
                       title=f"scenario {args.name}: {spec.description or spec.describe()}"))
    if result.dynamics_log:
        print("timeline:")
        for time, kind, detail in result.dynamics_log:
            print(f"  t={time:7.3f}s  {kind:12s} {detail}")
    for line in _audit_lines(result):
        print(line)
    if args.json_path:
        payload = {
            "scenario": args.name,
            "metrics": row,
            "dynamics_log": result.dynamics_log,
            "throughput_series": result.throughput_series,
            "crash_log": result.crash_log,
        }
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=repr)
    return 0


def _scenario_sweep(args: argparse.Namespace) -> int:
    from repro.bench.sweep import expand_grid
    from repro.scenario.registry import available_scenarios, get_scenario

    names = (
        available_scenarios()
        if args.scenarios == "all"
        else [name.strip() for name in args.scenarios.split(",") if name.strip()]
    )
    for name in names:
        get_scenario(name)  # fail fast on unknown names
    protocols = [p.strip() for p in args.protocols.split(",") if p.strip()]
    cells = expand_grid(
        {"scenario": names, "protocol": protocols},
        defaults=dict(n=args.n, duration=args.duration, seed=args.seed,
                      batch_size=args.batch_size),
    )
    runner = SweepRunner(
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        progress=None if args.quiet else _progress_printer(sys.stderr),
    )
    rows = runner.run(cells)
    for cell, row in zip(cells, rows):
        row["scenario"] = cell.scenario
        row["environment"] = cell.effective_environment()
    print(format_table(
        rows,
        columns=["scenario"] + [c for c in DEFAULT_COLUMNS if c != "stragglers"],
        title=f"scenario sweep ({len(names)} scenarios x {len(protocols)} protocols)",
    ))
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(rows, fh, indent=2, default=repr)
    return 0


def scenario_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench scenario",
        description="Run named scenarios through the DES engine and sweep harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered scenarios")

    run_parser = sub.add_parser("run", help="run one scenario end-to-end")
    run_parser.add_argument("name", help="scenario name (see 'scenario list')")
    run_parser.add_argument("--protocol", default="ladon-pbft")
    run_parser.add_argument("--n", type=int, default=8)
    run_parser.add_argument("--duration", type=float, default=30.0)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--batch-size", type=int, default=1024)
    run_parser.add_argument("--runtime", choices=["des", "realtime"], default="des",
                            help="execution backend (default: des)")
    run_parser.add_argument("--timescale", type=float, default=1.0,
                            help="realtime only: wall seconds per simulated second")
    run_parser.add_argument("--json", dest="json_path")

    sweep_parser = sub.add_parser("sweep", help="grid of scenarios x protocols")
    sweep_parser.add_argument("--scenarios", default="all",
                              help="comma-separated names, or 'all' (default)")
    sweep_parser.add_argument("--protocols", default="ladon-pbft,iss-pbft")
    sweep_parser.add_argument("--n", type=int, default=8)
    sweep_parser.add_argument("--duration", type=float, default=30.0)
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument("--batch-size", type=int, default=1024)
    sweep_parser.add_argument("--workers", type=int, default=1)
    sweep_parser.add_argument("--cache-dir", default=".sweep-cache")
    sweep_parser.add_argument("--no-cache", action="store_true")
    sweep_parser.add_argument("--quiet", action="store_true")
    sweep_parser.add_argument("--json", dest="json_path")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _scenario_list()
    if args.command == "run":
        return _scenario_run(args)
    return _scenario_sweep(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "scenario":
        return scenario_main(argv[1:])
    if argv and argv[0] == "adversary":
        return adversary_main(argv[1:])
    if argv and argv[0] == "run":
        return run_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.bench.perf import perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.bench.fuzz_cli import fuzz_main

        return fuzz_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures via the sweep harness.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["list"])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for grid experiments (1 = sequential in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        help="directory for the on-disk result cache (default: .sweep-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="run every cell even if cached"
    )
    parser.add_argument("--json", dest="json_path", help="also dump the raw result as JSON")
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()[0]
            suffix = " (sweepable)" if name in SWEEPABLE else ""
            print(f"{name:12s} {doc}{suffix}")
        print("run          one cell on a chosen backend: 'run --runtime des|realtime'")
        print("scenario     named-scenario engine: 'scenario list|run|sweep' (sweepable)")
        print("adversary    Byzantine attack catalog: 'adversary list|run'")
        print("perf         hot-path harness: events/s + peak RSS, '--scaling', '--profile'")
        print("fuzz         schedule-space fuzzer: 'fuzz run|replay|shrink'")
        return 0

    fn = EXPERIMENTS[args.experiment]
    kwargs = {}
    if args.experiment in SWEEPABLE:
        kwargs["sweep"] = SweepRunner(
            workers=args.workers,
            cache_dir=None if args.no_cache else args.cache_dir,
            progress=None if args.quiet else _progress_printer(sys.stderr),
        )
    result = fn(**kwargs)

    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, default=repr)
    _print_result(args.experiment, result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
