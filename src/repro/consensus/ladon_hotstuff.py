"""Ladon-HotStuff: chained HotStuff with monotonic ranks (Algorithm 3).

Rank flow differs from Ladon-PBFT because HotStuff's vote traffic is
leader-centric: backups piggyback their highest known rank (and its QC) on
their votes (lines 25-26), the leader keeps the maximum (lines 38-42), and
each new proposal advertises the leader's ``curRank`` so backups can catch up
(lines 15-18).  The proposed node's rank is ``min(curRank + 1, maxRank(e))``
(line 6) and the leader stops proposing once it proposes ``maxRank(e)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.consensus.base import InstanceConfig, InstanceContext
from repro.consensus.hotstuff import ChainNode, HotStuffInstance
from repro.consensus.messages import HotStuffProposal, HotStuffVote
from repro.core.block import Block
from repro.core.rank import RankCertificate
from repro.crypto.hashing import digest_hex


class LadonHotStuffInstance(HotStuffInstance):
    """Algorithm 3 of the paper."""

    def __init__(
        self,
        config: InstanceConfig,
        context: InstanceContext,
        propose_timeout: Optional[float] = None,
        byzantine_rank_manipulation: bool = False,
    ) -> None:
        super().__init__(config, context, propose_timeout=propose_timeout)
        self.byzantine_rank_manipulation = byzantine_rank_manipulation
        self.stopped_for_epoch = False
        self._epoch_of_stop = -1
        # Ranks reported by voters for the next proposal (leader side).
        self._vote_ranks: dict = {}

    # -------------------------------------------------------------- proposing
    def ready_to_propose(self) -> bool:
        if self.stopped_for_epoch and self._epoch_of_stop == self.context.current_epoch():
            return False
        return super().ready_to_propose()

    def begin_epoch(self, epoch: int) -> None:
        if self._epoch_of_stop < epoch:
            self.stopped_for_epoch = False

    def _choose_rank(self) -> int:
        """Pick the rank for a new node from the leader's curRank.

        A Byzantine leader manipulating ranks ignores the highest vote-borne
        reports and falls back to the (lower) rank certified by its own chain,
        the HotStuff analogue of the lowest-2f+1 selection.
        """
        max_rank = self.context.max_rank()
        if self.byzantine_rank_manipulation and self._vote_ranks:
            ranks = sorted(self._vote_ranks.values())
            usable = ranks[: self.config.quorum] if len(ranks) > self.config.quorum else ranks
            base = max(usable) if usable else self.context.current_rank()
        else:
            base = self.context.current_rank()
        return min(base + 1, max_rank)

    def _build_proposal(self, round: int, batch, now: float) -> HotStuffProposal:
        epoch = self.context.current_epoch()
        max_rank = self.context.max_rank()
        rank = self._choose_rank()
        if rank >= max_rank:
            rank = max_rank
            self.stopped_for_epoch = True
            self._epoch_of_stop = epoch
        parent_round = round - 1
        parent = self.nodes.get(parent_round)
        current = self.context.current_rank()
        return HotStuffProposal(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=round,
            digest=digest_hex(self.instance_id, self.view, round, batch.tx_count),
            tx_count=batch.tx_count,
            txs=batch.txs,
            rank=rank,
            epoch=epoch,
            parent_round=parent_round,
            parent_digest=parent.digest if parent else "",
            justify_votes=self.config.quorum if round > 1 else 0,
            rank_m=current,
            rank_certificate=RankCertificate(rank=current, signer_count=self.config.quorum),
            proposed_at=now,
            batch_submitted_at=batch.mean_submitted_at(),
        )

    # ----------------------------------------------------------- rank updates
    def _observe_proposal_rank(self, message: HotStuffProposal) -> None:
        """Backups adopt the leader's advertised rank_m (lines 15-18)."""
        if message.rank_m > 0:
            self.context.observe_rank(message.rank_m, message.rank_certificate)

    def _build_vote(self, message: HotStuffProposal) -> HotStuffVote:
        current = self.context.current_rank()
        return HotStuffVote(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=message.round,
            digest=message.digest,
            rank=message.rank,
            rank_m=current,
            rank_certificate=RankCertificate(rank=current, signer_count=self.config.quorum),
        )

    def _observe_vote_rank(self, message: HotStuffVote) -> None:
        """Leader keeps the maximum rank reported by voters (lines 38-42)."""
        if message.rank_m > 0:
            self.context.observe_rank(message.rank_m, message.rank_certificate)
        self._vote_ranks[message.sender] = message.rank_m

    def _on_qc_formed(self, round: int) -> None:
        """A QC on a node certifies that node's rank (MR-Monotonicity within
        the instance: the next proposal must carry a strictly larger rank)."""
        node = self.nodes.get(round)
        if node is not None:
            self.context.observe_rank(
                node.rank, RankCertificate(rank=node.rank, signer_count=self.config.quorum)
            )

    def _on_committed(self, node: ChainNode, block: Block) -> None:
        """A committed node's rank is certified by its 3-chain of QCs."""
        self.context.observe_rank(
            node.rank, RankCertificate(rank=node.rank, signer_count=self.config.quorum)
        )
