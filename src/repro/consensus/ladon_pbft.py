"""Ladon-PBFT: PBFT with pipelined monotonic-rank collection (Algorithm 2).

Differences from vanilla PBFT:

* every proposal carries a monotonic ``rank`` computed from 2f+1 rank reports
  collected during the *previous* round's commit phase (pipelining, Sec. 4.1
  "Overhead analysis"), plus the winning report's certificate and the report
  set so backups can validate the rank calculation;
* when a round becomes prepared, a replica updates its global ``curRank``
  (shared across instances via the hosting replica) and sends a rank message
  to the instance's leader for the next round;
* a leader that proposes the epoch's ``maxRank`` stops proposing until the
  epoch advances;
* a Byzantine straggling leader may apply the lowest-2f+1 manipulation of
  Sec. 4.4 (Appendix B, case 3).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.consensus.base import InstanceConfig, InstanceContext
from repro.consensus.messages import PrePrepare, RankMessage
from repro.consensus.pbft import PBFTInstance, RoundEntry
from repro.core.block import Block
from repro.core.rank import RankCertificate, RankReport, choose_rank
from repro.crypto.hashing import digest_hex
from repro.workload.transactions import Batch


class LadonPBFTInstance(PBFTInstance):
    """Algorithm 2 of the paper."""

    def __init__(
        self,
        config: InstanceConfig,
        context: InstanceContext,
        propose_timeout: Optional[float] = None,
        byzantine_rank_manipulation: bool = False,
    ) -> None:
        super().__init__(config, context, propose_timeout=propose_timeout)
        self.byzantine_rank_manipulation = byzantine_rank_manipulation
        # Rank reports received as the leader, keyed by the round in which the
        # sender produced them (reports from round n-1 gate the proposal of n).
        # Pruned as the proposal cursor advances: reports for rounds the
        # leader has already proposed past can never gate anything again.
        self.rank_reports: Dict[int, Dict[int, RankReport]] = {}
        self._handlers[RankMessage] = self._on_rank_message
        # Set once the epoch's maxRank has been proposed; cleared on new epoch.
        self.stopped_for_epoch = False
        self._epoch_of_stop = -1

    # -------------------------------------------------------------- proposing
    def ready_to_propose(self) -> bool:
        if not super().ready_to_propose():
            return False
        if self.stopped_for_epoch and self._epoch_of_stop == self.context.current_epoch():
            return False
        if self.next_round == 1:
            return True
        reports = self.rank_reports.get(self.next_round - 1, {})
        if not reports and self.view > 0 and self.next_round == self.view_resume_round:
            # First proposal after a view change: the new leader has no stored
            # reports for a round it never led; it bootstraps from its own
            # certified curRank (as in round 1).
            return True
        return len(reports) >= self.config.quorum

    def begin_epoch(self, epoch: int) -> None:
        """Called by the hosting replica when the system advances to ``epoch``."""
        if self._epoch_of_stop < epoch:
            self.stopped_for_epoch = False

    def propose(self, batch: Batch, now: float):
        message = super().propose(batch, now)
        if message is not None and self.rank_reports:
            # Reports that gated this (or any earlier) round are dead.
            for round in [r for r in self.rank_reports if r < message.round]:
                del self.rank_reports[round]
        return message

    def _build_pre_prepare(self, round: int, batch: Batch, now: float) -> PrePrepare:
        epoch = self.context.current_epoch()
        max_rank = self.context.max_rank()
        bootstrap = round == 1 or (
            self.view > 0
            and round == self.view_resume_round
            and not self.rank_reports.get(round - 1)
        )
        if bootstrap:
            # Round 1 (or the first round a new leader proposes after a view
            # change) needs no collected reports: rankSet is the leader's own
            # current rank (Algorithm 2, note after line 11).
            own = RankReport(
                replica=self.replica_id,
                rank=self.context.current_rank(),
                view=self.view,
                round=0,
                instance=self.instance_id,
            )
            reports: Tuple[RankReport, ...] = (own,)
            rank = min(own.rank + 1, max_rank)
            winning = own
        else:
            collected = dict(self.rank_reports.get(round - 1, {}))
            # The leader contributes its own rank report.  An honest leader
            # reports its freshest curRank; a manipulating leader understates
            # its own rank (it can always certify the epoch minimum) so that
            # the lowest-2f+1 selection below lands as low as possible.
            own_rank = (
                self.context.min_rank()
                if self.byzantine_rank_manipulation
                else self.context.current_rank()
            )
            collected[self.replica_id] = RankReport(
                replica=self.replica_id,
                rank=own_rank,
                view=self.view,
                round=round - 1,
                instance=self.instance_id,
            )
            reports = tuple(collected.values())
            rank, winning = choose_rank(
                reports,
                quorum=self.config.quorum,
                max_rank=max_rank,
                byzantine_minimize=self.byzantine_rank_manipulation,
            )
            if self.byzantine_rank_manipulation:
                # The manipulating leader only reveals the lowest 2f+1 reports
                # so the (lower) chosen rank still validates.
                reports = tuple(sorted(reports, key=lambda r: r.rank)[: self.config.quorum])
        if rank >= max_rank:
            rank = max_rank
            self.stopped_for_epoch = True
            self._epoch_of_stop = epoch
        self.context.record_crypto("aggregate")
        return PrePrepare(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=round,
            digest=digest_hex(self.instance_id, self.view, round, batch.tx_count),
            tx_count=batch.tx_count,
            txs=batch.txs,
            rank=rank,
            epoch=epoch,
            rank_certificate=winning.certificate,
            rank_reports=reports,
            proposed_at=now,
            batch_submitted_at=batch.mean_submitted_at(),
        )

    # --------------------------------------------------------- rank validation
    def _validate_pre_prepare(self, sender: int, message: PrePrepare) -> bool:
        if not super()._validate_pre_prepare(sender, message):
            return False
        return self._validate_rank(message)

    def _validate_rank(self, message: PrePrepare) -> bool:
        """Backup-side checks of the leader's rank calculation (Sec. 5.2.2)."""
        if message.reproposal:
            # A new-view re-proposal carries the rank certified by the old
            # view's prepare quorum; verifying that certificate replaces the
            # fresh rank-report calculation.
            self.context.record_crypto("verify")
            return True
        max_rank = self.context.max_rank()
        reports = message.rank_reports
        bootstrap = message.round == 1 or (
            message.view > 0 and message.round == self.view_resume_round
        )
        if bootstrap:
            if len(reports) < 1:
                return False
        else:
            if len(reports) < self.config.quorum:
                return False
        if not reports:
            return False
        self.context.record_crypto("verify", count=len(reports))
        distinct = {report.replica for report in reports}
        if len(distinct) != len(reports):
            return False
        rank_m = max(report.rank for report in reports)
        expected = min(rank_m + 1, max_rank)
        return message.rank == expected

    # ------------------------------------------------------------- rank flow
    def _on_prepared(self, entry: RoundEntry) -> None:
        """Commit-phase rank bookkeeping (Algorithm 2, lines 23-28)."""
        quorum_cert = RankCertificate(rank=entry.rank, signer_count=self.config.quorum)
        self.context.observe_rank(entry.rank, quorum_cert)
        self.context.record_crypto("aggregate")
        report_rank = self.context.current_rank()
        rank_msg = RankMessage(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=entry.round,
            rank=report_rank,
            certificate=RankCertificate(rank=report_rank, signer_count=self.config.quorum),
        )
        self.context.record_crypto("sign")
        leader = self.config.leader_for_view(self.view)
        if leader == self.replica_id:
            self._store_rank_report(self.replica_id, rank_msg)
        else:
            self.context.send(leader, rank_msg, rank_msg.size_bytes)

    def on_message(self, sender: int, message: Any) -> None:
        # Rank messages bypass the ``stopped`` gate (curRank keeps advancing
        # from certified ranks even on a stopped instance), so they are
        # routed before the base table dispatch.
        if message.__class__ is RankMessage:
            self.context.record_crypto("verify")
            self._on_rank_message(sender, message)
            return
        super().on_message(sender, message)

    def _on_rank_message(self, sender: int, message: RankMessage) -> None:
        # (entry verification accounted at the dispatch site)
        # Any replica updates its curRank from a higher certified rank
        # (Algorithm 2, lines 37-41); only the leader stores the report.
        self.context.observe_rank(message.rank, message.certificate)
        if self.is_leader:
            self._store_rank_report(sender, message)

    def _store_rank_report(self, sender: int, message: RankMessage) -> None:
        if message.round < self.next_round - 1:
            # Reports for rounds the proposal cursor has moved past can never
            # gate a proposal again; storing them would regrow pruned state.
            return
        per_round = self.rank_reports.setdefault(message.round, {})
        existing = per_round.get(sender)
        if existing is None or message.rank > existing.rank:
            per_round[sender] = message.to_report()

    # ---------------------------------------------------------------- commits
    def _on_committed(self, entry: RoundEntry, block: Block) -> None:
        # A committed block's rank is certified by 2f+1 commit messages.
        self.context.observe_rank(
            entry.rank, RankCertificate(rank=entry.rank, signer_count=self.config.quorum)
        )
