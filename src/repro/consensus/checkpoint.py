"""Epoch checkpointing (paper Sec. 5.2.1 "Epoch advancement").

At the end of an epoch every replica broadcasts a checkpoint message; 2f+1
matching checkpoint messages form a *stable checkpoint*, after which the
replica may start processing the next epoch.  A replica that lags fetches the
missing log entries together with the stable checkpoint proving their
integrity (state transfer is modelled as a single bulk message).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.consensus.messages import CheckpointMessage
from repro.crypto.hashing import digest_hex


@dataclass
class CheckpointState:
    """Checkpoint votes for one epoch at one replica."""

    epoch: int
    votes: Set[int] = field(default_factory=set)
    stable: bool = False
    state_digest: str = ""


class CheckpointManager:
    """Tracks checkpoint votes and stable checkpoints per epoch."""

    def __init__(self, replica_id: int, quorum: int) -> None:
        self.replica_id = replica_id
        self.quorum = quorum
        self._states: Dict[int, CheckpointState] = {}
        #: epochs below this are pruned and treated as settled (stable)
        self._pruned_floor = 0

    def _state(self, epoch: int) -> CheckpointState:
        if epoch not in self._states:
            self._states[epoch] = CheckpointState(epoch=epoch)
        return self._states[epoch]

    def build_checkpoint(self, epoch: int, confirmed_count: int, view: int = 0) -> CheckpointMessage:
        """Build this replica's checkpoint message for ``epoch``."""
        state_digest = digest_hex("checkpoint", epoch, confirmed_count)
        self._state(epoch).state_digest = state_digest
        return CheckpointMessage(
            sender=self.replica_id,
            instance=-1,
            view=view,
            round=0,
            epoch=epoch,
            state_digest=state_digest,
        )

    def on_checkpoint(self, message: CheckpointMessage) -> bool:
        """Record a checkpoint vote; True exactly when the epoch became stable."""
        if message.epoch < self._pruned_floor:
            return False  # settled epoch: don't resurrect pruned vote state
        state = self._state(message.epoch)
        state.votes.add(message.sender)
        if not state.stable and len(state.votes) >= self.quorum:
            state.stable = True
            return True
        return False

    def is_stable(self, epoch: int) -> bool:
        if epoch < self._pruned_floor:
            return True  # settled: the cluster advanced well past it
        return self._state(epoch).stable

    def votes(self, epoch: int) -> int:
        if epoch < self._pruned_floor:
            return self.quorum
        return len(self._state(epoch).votes)

    def prune_below(self, floor: int) -> None:
        """Drop vote state for epochs below ``floor`` (bounded memory).

        Pruned epochs report as stable: the cluster has advanced at least
        two epochs past them, so their checkpoint quorums are settled
        history that can never gate progress again.
        """
        if floor <= self._pruned_floor:
            return
        self._pruned_floor = floor
        for epoch in [e for e in self._states if e < floor]:
            del self._states[epoch]

    def tracked_epochs(self) -> int:
        """Number of epochs currently holding vote state (diagnostics)."""
        return len(self._states)
