"""Protocol message types.

Message wire sizes follow the paper's configuration: 500-byte transactions,
64-byte signatures, 32-byte digests, small fixed headers.  Sizes feed the
bandwidth model and Table 1; they do not affect protocol logic.

Messages are *flyweights*: they are frozen, ``__slots__``-backed (via
``dataclass(slots=True)``), and their wire size is computed **once at
construction** and stored in the ``size_bytes`` field.  The old property
design re-summed ``rank_reports`` on every access, which on a multicast
meant one O(reports) scan per receiver — O(n²) per proposal.  Batches ride
along by reference (``txs`` is the same tuple object at every hop), so a
message fan-out never copies payload data.
"""

# staticcheck: hot-path
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.rank import RankCertificate, RankReport


SIGNATURE_BYTES = 64
DIGEST_BYTES = 32
HEADER_BYTES = 24  # type, view, round, instance, epoch, sender


def batch_size_bytes(tx_count: int, tx_payload_bytes: int = 500) -> int:
    """Wire size of a transaction batch."""
    return tx_count * tx_payload_bytes


@dataclass(frozen=True, slots=True)
class InstanceMessage:
    """Base class: every instance message names its view/round/instance.

    ``size_bytes`` is a cached field, filled from :meth:`_wire_size` in
    ``__post_init__``; subclasses override ``_wire_size`` (not the field).
    """

    sender: int
    instance: int
    view: int
    round: int
    #: wire size, computed once at construction (see module docstring)
    size_bytes: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "size_bytes", self._wire_size())

    def _wire_size(self) -> int:
        return HEADER_BYTES + SIGNATURE_BYTES


# --------------------------------------------------------------------- PBFT
@dataclass(frozen=True, slots=True)
class PrePrepare(InstanceMessage):
    """Leader's proposal.  Carries the batch, its digest, the assigned rank,
    the winning rank certificate (QC) and the rank report set proving the
    rank calculation (Algorithm 2, line 8).  For vanilla PBFT the rank fields
    are unused (rank equals the round, empty report set)."""

    digest: str = ""
    tx_count: int = 0
    txs: Tuple = ()
    rank: int = 0
    epoch: int = 0
    rank_certificate: Optional[RankCertificate] = None
    rank_reports: Tuple[RankReport, ...] = ()
    aggregated_rank_proof_bytes: int = 0
    proposed_at: float = 0.0
    batch_submitted_at: float = 0.0
    #: a new leader re-proposing a round that was prepared (but not
    #: committed) in the previous view; digest and rank are carried over
    #: from the old view's prepared certificate instead of being recomputed
    reproposal: bool = False

    def _wire_size(self) -> int:
        base = HEADER_BYTES + SIGNATURE_BYTES + DIGEST_BYTES + batch_size_bytes(self.tx_count)
        if self.aggregated_rank_proof_bytes:
            rank_bytes = self.aggregated_rank_proof_bytes
        else:
            rank_bytes = sum(report.size_bytes for report in self.rank_reports)
        cert_bytes = self.rank_certificate.size_bytes if self.rank_certificate else 0
        return base + rank_bytes + cert_bytes


@dataclass(frozen=True, slots=True)
class Prepare(InstanceMessage):
    digest: str = ""
    rank: int = 0

    def _wire_size(self) -> int:
        return HEADER_BYTES + SIGNATURE_BYTES + DIGEST_BYTES


@dataclass(frozen=True, slots=True)
class Commit(InstanceMessage):
    digest: str = ""
    rank: int = 0

    def _wire_size(self) -> int:
        return HEADER_BYTES + SIGNATURE_BYTES + DIGEST_BYTES


@dataclass(frozen=True, slots=True)
class RankMessage(InstanceMessage):
    """A backup's report of its current highest certified rank to the leader
    (Algorithm 2, lines 27-28).  ``key_index`` is only used by Ladon-opt,
    where the rank difference is encoded in the signing key."""

    rank: int = 0
    certificate: Optional[RankCertificate] = None
    key_index: Optional[int] = None

    def _wire_size(self) -> int:
        cert = self.certificate.size_bytes if self.certificate else 0
        return HEADER_BYTES + SIGNATURE_BYTES + 8 + cert

    def to_report(self) -> RankReport:
        return RankReport(
            replica=self.sender,
            rank=self.rank,
            view=self.view,
            round=self.round,
            instance=self.instance,
            certificate=self.certificate or RankCertificate(rank=self.rank),
        )


# -------------------------------------------------------------- view change
@dataclass(frozen=True, slots=True)
class ViewChange(InstanceMessage):
    """Sent to the prospective leader of view ``view`` when a timer expires."""

    last_committed_round: int = 0
    highest_rank: int = 0

    def _wire_size(self) -> int:
        return HEADER_BYTES + SIGNATURE_BYTES + 16


@dataclass(frozen=True, slots=True)
class NewView(InstanceMessage):
    """New leader's announcement, justified by 2f+1 view-change messages."""

    view_change_count: int = 0
    resume_round: int = 1

    def _wire_size(self) -> int:
        return HEADER_BYTES + SIGNATURE_BYTES + 16 + self.view_change_count * 32


# --------------------------------------------------------------- checkpoint
@dataclass(frozen=True, slots=True)
class CheckpointMessage(InstanceMessage):
    """Broadcast at the end of an epoch; 2f+1 form a stable checkpoint."""

    epoch: int = 0
    state_digest: str = ""

    def _wire_size(self) -> int:
        return HEADER_BYTES + SIGNATURE_BYTES + DIGEST_BYTES


# ----------------------------------------------------------------- HotStuff
@dataclass(frozen=True, slots=True)
class HotStuffProposal(InstanceMessage):
    """A chained-HotStuff generic message: a new node extending ``parent_round``
    justified by a QC, plus (in Ladon-HotStuff) the leader's highest rank and
    its certificate."""

    digest: str = ""
    tx_count: int = 0
    txs: Tuple = ()
    rank: int = 0
    epoch: int = 0
    parent_round: int = 0
    parent_digest: str = ""
    justify_votes: int = 0
    rank_m: int = 0
    rank_certificate: Optional[RankCertificate] = None
    proposed_at: float = 0.0
    batch_submitted_at: float = 0.0

    def _wire_size(self) -> int:
        cert = self.rank_certificate.size_bytes if self.rank_certificate else 0
        return (
            HEADER_BYTES
            + SIGNATURE_BYTES
            + 2 * DIGEST_BYTES
            + batch_size_bytes(self.tx_count)
            + 96  # parent QC (aggregate)
            + cert
        )


@dataclass(frozen=True, slots=True)
class HotStuffVote(InstanceMessage):
    digest: str = ""
    rank: int = 0
    rank_m: int = 0
    rank_certificate: Optional[RankCertificate] = None

    def _wire_size(self) -> int:
        cert = self.rank_certificate.size_bytes if self.rank_certificate else 0
        return HEADER_BYTES + SIGNATURE_BYTES + DIGEST_BYTES + cert


@dataclass(frozen=True, slots=True)
class HotStuffNewView(InstanceMessage):
    """Carries the sender's highest generic QC to the next leader."""

    highest_qc_round: int = 0

    def _wire_size(self) -> int:
        return HEADER_BYTES + SIGNATURE_BYTES + 96
