"""Sequenced Broadcast (SB) abstraction (paper Sec. 3.2).

SB is the abstraction ISS (and Ladon) use for each consensus instance: for a
round set ``R`` and message set ``M`` only the designated sender may broadcast
``(msg, r)``; honest replicas deliver exactly one message per round, possibly
the special nil value ``⊥`` when the sender is suspected quiet.

The PBFT / HotStuff instances in this package *implement* SB (their delivered
blocks are the ``(msg, r)`` pairs); :class:`InMemorySequencedBroadcast` is a
reference implementation used to state and test the SB properties directly
and to back lightweight protocol tests that do not need full BFT machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

NIL = object()  # the special ⊥ value


class SequencedBroadcast:
    """Interface of an SB instance ``SB(p, R, M, D)``."""

    def broadcast(self, message: Any, round: int) -> None:
        """Called by the designated sender to broadcast ``(message, round)``."""
        raise NotImplementedError

    def delivered(self) -> Dict[int, Any]:
        """Messages delivered so far, keyed by round."""
        raise NotImplementedError


@dataclass
class InMemorySequencedBroadcast(SequencedBroadcast):
    """A single-process reference SB implementation.

    It enforces the SB properties locally:

    * **SB-Integrity** — only the designated ``sender`` may broadcast, and
      only messages in ``allowed_messages`` (when given);
    * **SB-Agreement** — at most one message is delivered per round;
    * **SB-Termination** — :meth:`suspect` delivers ``⊥`` for every
      outstanding round in ``rounds``, modelling the failure detector D.
    """

    sender: int
    rounds: Tuple[int, ...]
    allowed_messages: Optional[Sequence[Any]] = None
    on_deliver: Optional[Callable[[Any, int], None]] = None
    _delivered: Dict[int, Any] = field(default_factory=dict)

    def broadcast(self, message: Any, round: int, by: Optional[int] = None) -> None:
        actual_sender = self.sender if by is None else by
        if actual_sender != self.sender:
            raise PermissionError(f"replica {actual_sender} is not the designated sender")
        if round not in self.rounds:
            raise ValueError(f"round {round} is not in the allowed round set")
        if self.allowed_messages is not None and message not in self.allowed_messages:
            raise ValueError("message not in the allowed message set")
        self._deliver(message, round)

    def suspect(self) -> None:
        """Failure-detector path: deliver ⊥ for every round not yet delivered."""
        for round in self.rounds:
            if round not in self._delivered:
                self._deliver(NIL, round)

    def _deliver(self, message: Any, round: int) -> None:
        if round in self._delivered:
            existing = self._delivered[round]
            if existing is not message and existing != message:
                raise AssertionError(
                    f"SB-Agreement violated: round {round} already delivered {existing!r}"
                )
            return
        self._delivered[round] = message
        if self.on_deliver is not None:
            self.on_deliver(message, round)

    def delivered(self) -> Dict[int, Any]:
        return dict(self._delivered)

    def is_complete(self) -> bool:
        """SB-Termination check: every round has a delivery."""
        return all(round in self._delivered for round in self.rounds)
