"""Ladon-opt: the aggregate-signature rank refinement (paper Sec. 5.3).

Functionally the protocol commits the same blocks with the same ranks as
Ladon-PBFT; what changes is *how the rank information travels*:

* a backup encodes the difference between its highest known rank and the
  current round's rank in the index of the private key it signs the rank
  message with (:mod:`repro.crypto.multikey`), so every backup signs the
  *same* message and the leader can aggregate the 2f+1 signatures into one;
* the pre-prepare then carries a single aggregate (O(1)) instead of 2f+1
  individual rank reports (O(n)), reducing the pre-prepare phase's message
  complexity from O(n^2) to O(n) and the backups' verification from O(n)
  signatures to O(1).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.consensus.base import InstanceConfig, InstanceContext
from repro.consensus.ladon_pbft import LadonPBFTInstance
from repro.consensus.messages import PrePrepare, RankMessage
from repro.consensus.pbft import RoundEntry
from repro.core.rank import RankCertificate
from repro.crypto.multikey import DEFAULT_KEY_COUNT


#: modelled wire size of the aggregated rank proof: one 96-byte aggregate
#: point plus a one-byte key index per signer.
def _aggregate_proof_bytes(quorum: int) -> int:
    return 96 + quorum


class LadonOptInstance(LadonPBFTInstance):
    """Ladon-PBFT with the aggregate-signature rank message optimisation."""

    def __init__(
        self,
        config: InstanceConfig,
        context: InstanceContext,
        propose_timeout: Optional[float] = None,
        byzantine_rank_manipulation: bool = False,
        key_count: int = DEFAULT_KEY_COUNT,
    ) -> None:
        super().__init__(
            config,
            context,
            propose_timeout=propose_timeout,
            byzantine_rank_manipulation=byzantine_rank_manipulation,
        )
        self.key_count = key_count

    # -------------------------------------------------------------- proposing
    def _build_pre_prepare(self, round: int, batch, now: float) -> PrePrepare:
        base = super()._build_pre_prepare(round, batch, now)
        # Same rank and certificate, but the report set is replaced by a single
        # aggregate signature whose size is O(1) in n.
        return PrePrepare(
            sender=base.sender,
            instance=base.instance,
            view=base.view,
            round=base.round,
            digest=base.digest,
            tx_count=base.tx_count,
            txs=base.txs,
            rank=base.rank,
            epoch=base.epoch,
            rank_certificate=base.rank_certificate,
            rank_reports=(),
            aggregated_rank_proof_bytes=_aggregate_proof_bytes(self.config.quorum),
            proposed_at=base.proposed_at,
            batch_submitted_at=base.batch_submitted_at,
        )

    # --------------------------------------------------------- rank validation
    def _validate_rank(self, message: PrePrepare) -> bool:
        """Verify the single aggregate instead of 2f+1 individual reports."""
        if message.reproposal:
            # New-view re-proposal: the old view's prepared certificate
            # stands in for the aggregate rank proof.
            self.context.record_crypto("verify")
            return True
        if message.aggregated_rank_proof_bytes <= 0 and message.round != 1:
            return False
        self.context.record_crypto("verify_aggregate")
        max_rank = self.context.max_rank()
        if message.rank > max_rank:
            return False
        return message.rank >= 0

    # ------------------------------------------------------------- rank flow
    def _on_prepared(self, entry: RoundEntry) -> None:
        """Send the rank message signed with the key encoding the difference."""
        quorum_cert = RankCertificate(rank=entry.rank, signer_count=self.config.quorum)
        self.context.observe_rank(entry.rank, quorum_cert)
        self.context.record_crypto("aggregate")
        current = self.context.current_rank()
        difference = max(0, current - entry.rank)
        key_index = min(difference, self.key_count - 1)
        rank_msg = RankMessage(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=entry.round,
            rank=entry.rank,
            key_index=key_index,
            certificate=RankCertificate(rank=current, signer_count=self.config.quorum),
        )
        self.context.record_crypto("sign")
        leader = self.config.leader_for_view(self.view)
        if leader == self.replica_id:
            self._store_rank_report(self.replica_id, rank_msg)
        else:
            self.context.send(leader, rank_msg, rank_msg.size_bytes)

    def _store_rank_report(self, sender: int, message: RankMessage) -> None:
        """Decode the reported rank from the key index before storing it."""
        if message.key_index is not None:
            decoded_rank = message.rank + message.key_index
            message = RankMessage(
                sender=message.sender,
                instance=message.instance,
                view=message.view,
                round=message.round,
                rank=decoded_rank,
                certificate=message.certificate,
                key_index=message.key_index,
            )
        super()._store_rank_report(sender, message)
