"""Chained HotStuff consensus instance (vanilla).

Used by the HotStuff-instantiated baselines (ISS-HotStuff).  The instance
runs with a stable leader (one leader per instance per epoch, as in the
Multi-BFT deployment): the leader proposes node ``r`` justified by a QC of
2f+1 votes on node ``r-1``; a node commits when it is the tail of a direct
3-chain, i.e. node ``r-3`` commits while processing the proposal of node
``r`` (Appendix D commit rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.block import Block
from repro.consensus.base import ConsensusInstance, InstanceConfig, InstanceContext
from repro.consensus.messages import HotStuffNewView, HotStuffProposal, HotStuffVote
from repro.consensus.quorum import QuorumTracker
from repro.crypto.hashing import digest_hex
from repro.workload.transactions import Batch


@dataclass(slots=True)
class ChainNode:
    """A node of the instance's chain at one replica."""

    round: int
    digest: str
    txs: Tuple = ()
    tx_count: int = 0
    batch_submitted_at: float = 0.0
    rank: int = 0
    epoch: int = 0
    proposer: int = -1
    proposed_at: float = 0.0
    parent_round: int = 0
    committed: bool = False


class HotStuffInstance(ConsensusInstance):
    """One chained-HotStuff instance."""

    #: see PBFTInstance.SELF_ACCOUNTING
    SELF_ACCOUNTING: frozenset = frozenset()

    def __init__(
        self,
        config: InstanceConfig,
        context: InstanceContext,
        propose_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(config, context)
        self.next_round = 1
        self.nodes: Dict[int, ChainNode] = {}
        self.vote_tracker = QuorumTracker(config.quorum)
        self.high_qc_round = 0  # highest round with a formed QC (leader side)
        self.last_committed_round = 0
        self.propose_timeout = propose_timeout
        self.view_change_votes = QuorumTracker(config.quorum)
        self.view_change_in_progress = False
        #: full Block history of this instance's commits; only appended when
        #: ``retain_blocks`` (the bounded-memory system mode clears it off
        #: the observer replica) — the compact ``commit_log`` always grows
        self.delivered_blocks: list = []
        self.commit_log: list = []
        self.retain_blocks = True
        # Committed rounds fold into a contiguous watermark; chain nodes
        # behind the watermark are pruned (their batches are released) and
        # vote state for QC'd rounds is dropped, keeping memory O(window).
        self._stable_round = 0
        self._committed_above: set = set()
        self._qc_stable = 0
        self._qc_above: set = set()
        self._handlers = {
            HotStuffProposal: self._on_proposal,
            HotStuffVote: self._on_vote,
            HotStuffNewView: self._on_new_view,
        }

    # ----------------------------------------------------------------- hooks
    def start(self) -> None:
        self._arm_propose_timer()

    # -------------------------------------------------------------- proposing
    def ready_to_propose(self) -> bool:
        """The leader proposes round r once it holds a QC on round r-1."""
        if not self.is_leader or self.stopped or self.view_change_in_progress:
            return False
        return self.next_round == 1 or self.high_qc_round >= self.next_round - 1

    def propose(self, batch: Batch, now: float) -> Optional[HotStuffProposal]:
        if not self.ready_to_propose():
            return None
        round = self.next_round
        self.next_round += 1
        message = self._build_proposal(round, batch, now)
        self.context.record_crypto("sign")
        self.context.multicast(message, message.size_bytes)
        return message

    def _build_proposal(self, round: int, batch: Batch, now: float) -> HotStuffProposal:
        parent_round = round - 1
        parent = self.nodes.get(parent_round)
        return HotStuffProposal(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=round,
            digest=digest_hex(self.instance_id, self.view, round, batch.tx_count),
            tx_count=batch.tx_count,
            txs=batch.txs,
            rank=round,  # vanilla HotStuff: round stands in for the rank
            epoch=self.context.current_epoch(),
            parent_round=parent_round,
            parent_digest=parent.digest if parent else "",
            justify_votes=self.config.quorum if round > 1 else 0,
            proposed_at=now,
            batch_submitted_at=batch.mean_submitted_at(),
        )

    # -------------------------------------------------------------- messages
    def on_message(self, sender: int, message: Any) -> None:
        if self.stopped:
            return
        cls = message.__class__
        handler = self._handlers.get(cls)
        if handler is not None:
            # Entry signature verification, accounted at the dispatch site
            # (see PBFTInstance.on_message).
            if cls not in self.SELF_ACCOUNTING:
                self.context.record_crypto("verify")
            handler(sender, message)

    # --------------------------------------------------------------- proposal
    def _validate_proposal(self, sender: int, message: HotStuffProposal) -> bool:
        if message.view != self.view:
            return False
        if sender != self.config.leader_for_view(message.view):
            return False
        if message.round > 1 and message.justify_votes < self.config.quorum:
            return False
        existing = self.nodes.get(message.round)
        if existing is not None and existing.digest != message.digest:
            return False
        return True

    def _on_proposal(self, sender: int, message: HotStuffProposal) -> None:
        if not self._validate_proposal(sender, message):
            return
        if message.round in self.nodes or message.round < self._stable_round:
            return  # in flight already, or committed and pruned (duplicate)
        node = ChainNode(
            round=message.round,
            digest=message.digest,
            txs=message.txs,
            tx_count=message.tx_count,
            batch_submitted_at=message.batch_submitted_at,
            rank=message.rank,
            epoch=message.epoch,
            proposer=sender,
            proposed_at=message.proposed_at,
            parent_round=message.parent_round,
        )
        self.nodes[message.round] = node
        self._observe_proposal_rank(message)
        self._try_commit_three_chain(message.round)
        self._arm_propose_timer()

        vote = self._build_vote(message)
        self.context.record_crypto("sign")
        leader = self.config.leader_for_view(self.view)
        if leader == self.replica_id:
            # Direct self-delivery bypasses on_message: account its entry
            # verification here.
            self.context.record_crypto("verify")
            self._on_vote(self.replica_id, vote)
        else:
            self.context.send(leader, vote, vote.size_bytes)

    def _observe_proposal_rank(self, message: HotStuffProposal) -> None:
        """Hook: Ladon-HotStuff adopts the leader's advertised rank_m."""

    def _build_vote(self, message: HotStuffProposal) -> HotStuffVote:
        return HotStuffVote(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=message.round,
            digest=message.digest,
            rank=message.rank,
        )

    def _try_commit_three_chain(self, new_round: int) -> None:
        """Commit node ``new_round - 3`` when the chain back from it is direct."""
        target_round = new_round - 3
        if target_round < 1:
            return
        chain = [self.nodes.get(target_round + offset) for offset in range(4)]
        if any(node is None for node in chain):
            return
        for child, parent in zip(chain[1:], chain[:-1]):
            if child.parent_round != parent.round:
                return
        target = chain[0]
        if target.committed:
            return
        target.committed = True
        self.last_committed_round = max(self.last_committed_round, target.round)
        now = self.context.now()
        block = Block(
            instance=self.instance_id,
            round=target.round,
            rank=target.rank,
            txs=target.txs,
            epoch=target.epoch,
            proposer=target.proposer,
            proposed_at=target.proposed_at,
            committed_at=now,
            # Consensus digest for the safety auditor (see PBFT commit path).
            payload_digest=target.digest,
            tx_count_hint=target.tx_count,
            batch_submitted_at=target.batch_submitted_at,
        )
        self.commit_log.append((target.round, target.digest, now))
        if self.retain_blocks:
            self.delivered_blocks.append(block)
        self.context.deliver(block)
        self._on_committed(target, block)
        self._gc_committed(target.round)

    def _gc_committed(self, round: int) -> None:
        """Prune chain nodes behind the contiguous committed watermark.

        The commit rule only ever looks at ``[target, target + 3]`` and the
        proposer only at ``round - 1``, both strictly above any committed
        round, so nodes *below* the watermark (and their batch references)
        are unreachable.  The node at the watermark itself is kept as the
        duplicate-delivery sentinel for in-flight retransmissions.
        """
        above = self._committed_above
        above.add(round)
        stable = self._stable_round
        nodes = self.nodes
        while stable + 1 in above:
            stable += 1
            above.discard(stable)
            nodes.pop(stable - 1, None)
        self._stable_round = stable
        # A committed round certifies its whole 3-chain, so QC bookkeeping
        # below the committed watermark is settled: fold it forward.  This
        # bounds _qc_above even when a view change leaves a gap of rounds
        # that will never form a QC (their re-proposals are absorbed by the
        # existing chain nodes) — commits advance through such gaps via the
        # surviving parent links and drag the QC watermark along.
        if stable > self._qc_stable:
            self._qc_stable = stable
            qc_above = self._qc_above
            if qc_above:
                self._qc_above = {r for r in qc_above if r > stable}

    def _on_committed(self, node: ChainNode, block: Block) -> None:
        """Hook for Ladon-HotStuff rank bookkeeping."""

    # ------------------------------------------------------------------ votes
    def _on_vote(self, sender: int, message: HotStuffVote) -> None:
        if message.view != self.view:
            return
        self._observe_vote_rank(message)
        round = message.round
        if round <= self._qc_stable or round in self._qc_above:
            # QC already formed and its vote state released: stale vote.
            # (The explicit _qc_above check keeps the gate alive even when a
            # view change leaves a never-QC'd gap below later QC'd rounds —
            # a cleared key must never re-fire its quorum action.)
            return
        key = (message.view, round, message.digest)
        if not self.vote_tracker.add_vote(key, sender):
            return
        self.context.record_crypto("aggregate")
        if round > self.high_qc_round:
            self.high_qc_round = round
        # The QC is formed; trailing votes for this round are dead weight.
        self.vote_tracker.clear(key)
        above = self._qc_above
        above.add(round)
        stable = self._qc_stable
        while stable + 1 in above:
            stable += 1
            above.discard(stable)
        self._qc_stable = stable
        self._on_qc_formed(round)

    def _on_qc_formed(self, round: int) -> None:
        """Hook: called at the leader when a QC forms on ``round``."""

    def _observe_vote_rank(self, message: HotStuffVote) -> None:
        """Hook: Ladon-HotStuff updates curRank from vote rank reports."""

    # ------------------------------------------------------------ view change
    def _arm_propose_timer(self) -> None:
        if self.propose_timeout is None:
            return
        self.context.set_timer(
            f"hotstuff-propose:{self.instance_id}",
            self.propose_timeout,
            self._on_propose_timeout,
        )

    def _on_propose_timeout(self) -> None:
        if self.stopped or self.is_leader:
            return
        self._start_view_change()

    def _start_view_change(self) -> None:
        if self.view_change_in_progress:
            return
        self.view_change_in_progress = True
        new_view = self.view + 1
        message = HotStuffNewView(
            sender=self.replica_id,
            instance=self.instance_id,
            view=new_view,
            round=self.last_committed_round,
            highest_qc_round=self.high_qc_round,
        )
        self.context.record_crypto("sign")
        new_leader = self.config.leader_for_view(new_view)
        if new_leader == self.replica_id:
            self.context.record_crypto("verify")
            self._on_new_view(self.replica_id, message)
        else:
            self.context.send(new_leader, message, message.size_bytes)

    def _on_new_view(self, sender: int, message: HotStuffNewView) -> None:
        if message.view <= self.view:
            return
        if self.config.leader_for_view(message.view) != self.replica_id:
            # Backups adopt the new view on the first new-view quorum signal
            # relayed by the new leader through its next proposal; the simple
            # stable-leader deployment only needs the leader-side transition.
            return
        key = ("hs-view-change", message.view)
        if not self.view_change_votes.add_vote(key, sender):
            return
        self.view = message.view
        self.view_change_in_progress = False
        self.next_round = max(self.next_round, self.last_committed_round + 1)
        # Rounds above the committed prefix may be re-proposed (and re-voted)
        # in the new view, so the QC watermark restarts from the committed
        # prefix; committed rounds stay final in every view.
        self._qc_stable = self.last_committed_round
        self._qc_above.clear()
        self.view_change_votes.clear(key)
        self.on_view_installed(self.view)

    def on_view_installed(self, view: int) -> None:
        """Hook for the hosting replica."""
