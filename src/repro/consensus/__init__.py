"""BFT consensus-instance substrates.

Each consensus *instance* is a network-agnostic state machine: it receives
messages through :meth:`on_message`, emits messages through an
:class:`InstanceContext` supplied by the hosting replica, and reports
partially committed blocks through ``context.deliver``.  The protocol systems
in :mod:`repro.protocols` host ``m`` instances per replica and route their
messages over the simulated network.

Implementations:

* :mod:`repro.consensus.pbft` — vanilla PBFT (used by ISS / Mir / RCC / DQBFT);
* :mod:`repro.consensus.ladon_pbft` — Algorithm 2, PBFT with pipelined
  monotonic-rank collection;
* :mod:`repro.consensus.ladon_opt` — Sec. 5.3, the aggregate-signature rank
  message optimisation;
* :mod:`repro.consensus.hotstuff` — vanilla chained HotStuff;
* :mod:`repro.consensus.ladon_hotstuff` — Algorithm 3.
"""

from repro.consensus.base import InstanceConfig, InstanceContext, ConsensusInstance
from repro.consensus.messages import (
    PrePrepare,
    Prepare,
    Commit,
    RankMessage,
    ViewChange,
    NewView,
    CheckpointMessage,
    HotStuffProposal,
    HotStuffVote,
    HotStuffNewView,
)
from repro.consensus.quorum import QuorumTracker
from repro.consensus.sb import SequencedBroadcast, InMemorySequencedBroadcast
from repro.consensus.pbft import PBFTInstance
from repro.consensus.ladon_pbft import LadonPBFTInstance
from repro.consensus.ladon_opt import LadonOptInstance
from repro.consensus.hotstuff import HotStuffInstance
from repro.consensus.ladon_hotstuff import LadonHotStuffInstance

__all__ = [
    "InstanceConfig",
    "InstanceContext",
    "ConsensusInstance",
    "PrePrepare",
    "Prepare",
    "Commit",
    "RankMessage",
    "ViewChange",
    "NewView",
    "CheckpointMessage",
    "HotStuffProposal",
    "HotStuffVote",
    "HotStuffNewView",
    "QuorumTracker",
    "SequencedBroadcast",
    "InMemorySequencedBroadcast",
    "PBFTInstance",
    "LadonPBFTInstance",
    "LadonOptInstance",
    "HotStuffInstance",
    "LadonHotStuffInstance",
]
