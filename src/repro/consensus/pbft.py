"""Vanilla PBFT consensus instance.

Used as the instance protocol of the baseline Multi-BFT systems (ISS, Mir,
RCC, DQBFT).  The implementation follows Castro & Liskov's normal case —
pre-prepare, prepare, commit with 2f+1 quorums — plus the view-change
mechanism summarised in the paper (Sec. 5.2.2 "View-change mechanism"): a
replica that times out waiting for progress sends a view-change message to
the next leader, which installs the new view after collecting 2f+1 of them.

Hot-path / memory notes:

* messages dispatch through a per-instance ``type -> handler`` table (one
  dict lookup instead of an isinstance chain);
* prepare/commit votes are keyed ``(view, round, digest_id)`` where
  ``digest_id`` is a small interned int — the hot vote keys never hash a
  digest string — and the :class:`QuorumTracker` counts voters in bitmasks;
* the round log is **O(active window)**: when the contiguous committed
  prefix advances, the entries (with their batch references) are pruned and
  their quorum vote state is released (``_stable_round`` is the watermark;
  stale messages for pruned rounds are dropped at handler entry).  The
  compact ``commit_log`` keeps (round, digest, committed_at) fingerprints
  for the safety auditor; full :class:`Block` objects are retained in
  ``delivered_blocks`` only when ``retain_blocks`` is set (the default —
  the bounded-memory system mode disables it off the observer replica).
"""

# staticcheck: hot-path
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.block import Block
from repro.consensus.base import ConsensusInstance, InstanceConfig, InstanceContext
from repro.consensus.messages import Commit, NewView, PrePrepare, Prepare, ViewChange
from repro.consensus.quorum import QuorumTracker
from repro.crypto.hashing import digest_hex
from repro.workload.transactions import Batch


@dataclass(slots=True)
class RoundEntry:
    """Per-round log entry at one replica."""

    round: int
    view: int
    digest: str = ""
    txs: Tuple = ()
    tx_count: int = 0
    batch_submitted_at: float = 0.0
    rank: int = 0
    epoch: int = 0
    proposer: int = -1
    proposed_at: float = 0.0
    pre_prepared: bool = False
    prepare_quorum: bool = False
    commit_quorum: bool = False
    sent_prepare: bool = False
    sent_commit: bool = False
    committed: bool = False


class PBFTInstance(ConsensusInstance):
    """One PBFT instance (vanilla: no monotonic ranks)."""

    #: timer used to detect a stalled in-flight round
    ROUND_TIMER = "pbft-round"

    #: message classes whose handlers account their own entry verification
    #: (instead of the dispatch site doing it) — subclasses that must record
    #: extra crypto *before* the entry verify (e.g. Mir's per-batch request
    #: re-verification) list those classes here to keep the accounting order
    #: bit-exact with the historical per-handler recording
    SELF_ACCOUNTING: frozenset = frozenset()

    def __init__(
        self,
        config: InstanceConfig,
        context: InstanceContext,
        propose_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(config, context)
        self.next_round = 1
        self.last_committed_round = 0
        self.log: Dict[int, RoundEntry] = {}
        self.prepare_votes = QuorumTracker(config.quorum)
        self.commit_votes = QuorumTracker(config.quorum)
        self.view_change_votes = QuorumTracker(config.quorum)
        self.propose_timeout = propose_timeout
        self.view_change_in_progress = False
        #: full Block history of this instance's partial commits; only
        #: appended when ``retain_blocks`` (see module docstring)
        self.delivered_blocks: list = []
        #: compact (round, digest, committed_at) history for the auditor
        self.commit_log: List[Tuple[int, str, float]] = []
        self.retain_blocks = True
        #: first round of the current view after a view change (0 = no view change yet)
        self.view_resume_round = 0
        #: highest last-committed round reported by any collected view-change
        #: vote, per (view-change, view) key — the new-view resume point
        self._view_change_high: Dict[Tuple, int] = {}
        # ----- hot-path vote keys: digest -> small interned int -----
        self._digest_ids: Dict[str, int] = {}
        self._digest_seq = 0
        #: digests first seen (interned) per round, so a round's GC can
        #: release vote state for *every* digest voted at that round —
        #: including forged digests an equivocating adversary floods that
        #: never reach quorum
        self._round_digests: Dict[int, List[str]] = {}
        # ----- bounded log: rounds <= _stable_round are committed & pruned -----
        self._stable_round = 0
        self._committed_above: set = set()
        #: rounds committed via the others' commit quorum whose own commit
        #: send is still pending on a late prepare quorum (lossy links);
        #: exempt from the stale-round drop so the late quorum can fire
        self._deferred_sends: set = set()
        self._handlers = {
            PrePrepare: self._on_pre_prepare,
            Prepare: self._on_prepare,
            Commit: self._on_commit,
            ViewChange: self._on_view_change,
            NewView: self._on_new_view,
        }

    # ----------------------------------------------------------------- hooks
    def start(self) -> None:
        """Arm the liveness timer that expects the first proposal (if enabled)."""
        self._arm_propose_timer()

    # -------------------------------------------------------------- proposing
    def _skip_reproposed_rounds(self) -> None:
        """Advance the proposal cursor past rounds already in flight.

        After a view change the new leader re-proposes every round that was
        prepared in the old view; those entries already exist in its log, so
        the fresh-proposal cursor must not land on them (it would offer a
        conflicting batch for an in-flight round)."""
        while True:
            entry = self.log.get(self.next_round)
            if entry is None or not entry.pre_prepared:
                return
            self.next_round += 1

    def ready_to_propose(self) -> bool:
        """The leader proposes one round at a time: round r needs r-1 committed."""
        if not self.is_leader or self.stopped or self.view_change_in_progress:
            return False
        self._skip_reproposed_rounds()
        return self.next_round == 1 or self.last_committed_round >= self.next_round - 1

    def propose(self, batch: Batch, now: float) -> Optional[PrePrepare]:
        if not self.ready_to_propose():
            return None
        round = self.next_round
        self.next_round += 1
        message = self._build_pre_prepare(round, batch, now)
        self.context.record_crypto("sign")
        self.context.multicast(message, message.size_bytes)
        return message

    def _build_pre_prepare(self, round: int, batch: Batch, now: float) -> PrePrepare:
        return PrePrepare(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=round,
            digest=digest_hex(self.instance_id, self.view, round, batch.tx_count),
            tx_count=batch.tx_count,
            txs=batch.txs,
            rank=round,  # vanilla PBFT: no meaningful rank, round stands in
            epoch=self.context.current_epoch(),
            proposed_at=now,
            batch_submitted_at=batch.mean_submitted_at(),
        )

    # -------------------------------------------------------------- messages
    def on_message(self, sender: int, message: Any) -> None:
        if self.stopped:
            return
        cls = message.__class__
        handler = self._handlers.get(cls)
        if handler is not None:
            # Every protocol message costs one signature verification on
            # receipt; it is accounted here (the single dispatch site) so the
            # handlers — and the replica-level fast path that calls them
            # directly — stay free of the per-message accounting frame.
            if cls not in self.SELF_ACCOUNTING:
                self.context.record_crypto("verify")
            handler(sender, message)

    # -------------------------------------------------------------- vote keys
    def _vote_key(self, view: int, round: int, digest: str) -> Tuple[int, int, int]:
        """The interned, int-only quorum key for (view, round, digest)."""
        ids = self._digest_ids
        digest_id = ids.get(digest)
        if digest_id is None:
            digest_id = self._digest_seq = self._digest_seq + 1
            ids[digest] = digest_id
            self._round_digests.setdefault(round, []).append(digest)
        return (view, round, digest_id)

    # ------------------------------------------------------------ pre-prepare
    def _validate_pre_prepare(self, sender: int, message: PrePrepare) -> bool:
        if message.view != self.view:
            return False
        if sender != self.config.leader_for_view(message.view):
            return False
        entry = self.log.get(message.round)
        if entry is not None and entry.pre_prepared and entry.digest != message.digest:
            return False
        return True

    def _on_pre_prepare(self, sender: int, message: PrePrepare) -> None:
        if not self._validate_pre_prepare(sender, message):
            return
        if message.round <= self._stable_round:
            return  # round already committed and pruned: duplicate delivery
        entry = self._entry(message.round)
        if entry.pre_prepared:
            return
        entry.pre_prepared = True
        entry.view = message.view
        entry.digest = message.digest
        entry.txs = message.txs
        entry.tx_count = message.tx_count
        entry.batch_submitted_at = message.batch_submitted_at
        entry.rank = message.rank
        entry.epoch = message.epoch
        entry.proposer = sender
        entry.proposed_at = message.proposed_at
        self._arm_round_timer(message.round)

        if not entry.sent_prepare:
            entry.sent_prepare = True
            prepare = Prepare(
                sender=self.replica_id,
                instance=self.instance_id,
                view=self.view,
                round=message.round,
                digest=message.digest,
                rank=message.rank,
            )
            self.context.record_crypto("sign")
            self.context.multicast(prepare, prepare.size_bytes)

        # Quorums may have formed before the pre-prepare reached this replica.
        self._maybe_send_commit(entry)
        self._maybe_commit(entry)

    # ---------------------------------------------------------------- prepare
    def _on_prepare(self, sender: int, message: Prepare) -> None:
        if message.view != self.view:
            return
        round = message.round
        if round <= self._stable_round and round not in self._deferred_sends:
            return  # round already committed and pruned: stale vote
        # _vote_key, inlined: this runs once per prepare vote per replica.
        ids = self._digest_ids
        digest_id = ids.get(message.digest)
        if digest_id is None:
            digest_id = self._digest_seq = self._digest_seq + 1
            ids[message.digest] = digest_id
            self._round_digests.setdefault(round, []).append(message.digest)
        if not self.prepare_votes.add_vote((message.view, round, digest_id), sender):
            return
        entry = self._entry(round)
        entry.prepare_quorum = True
        self._maybe_send_commit(entry)

    def _maybe_send_commit(self, entry: RoundEntry) -> None:
        if not entry.pre_prepared or not entry.prepare_quorum or entry.sent_commit:
            return
        entry.sent_commit = True
        self._on_prepared(entry)
        commit = Commit(
            sender=self.replica_id,
            instance=self.instance_id,
            view=entry.view,
            round=entry.round,
            digest=entry.digest,
            rank=entry.rank,
        )
        self.context.record_crypto("sign")
        self.context.multicast(commit, commit.size_bytes)
        if entry.committed:
            # The round had already committed through the others' commit
            # quorum while this replica's own prepare quorum was still
            # incomplete (lossy links); with the late commit now sent, the
            # round is final and its deferred GC can complete.
            self._finalize_deferred_send(entry)

    def _on_prepared(self, entry: RoundEntry) -> None:
        """Hook for subclasses (Ladon) that act when a round becomes prepared."""

    # ----------------------------------------------------------------- commit
    def _on_commit(self, sender: int, message: Commit) -> None:
        if message.view != self.view:
            return
        round = message.round
        if round <= self._stable_round:
            return  # round already committed and pruned: stale vote
        # _vote_key, inlined (once per commit vote per replica).
        ids = self._digest_ids
        digest_id = ids.get(message.digest)
        if digest_id is None:
            digest_id = self._digest_seq = self._digest_seq + 1
            ids[message.digest] = digest_id
            self._round_digests.setdefault(round, []).append(message.digest)
        if not self.commit_votes.add_vote((message.view, round, digest_id), sender):
            return
        entry = self._entry(round)
        entry.commit_quorum = True
        self._maybe_commit(entry)

    def _maybe_commit(self, entry: RoundEntry) -> None:
        if not entry.pre_prepared or not entry.commit_quorum or entry.committed:
            return
        entry.committed = True
        if entry.round > self.last_committed_round:
            self.last_committed_round = entry.round
        self.context.cancel_timer(self._round_timer_name(entry.round))
        now = self.context.now()
        block = Block(
            instance=self.instance_id,
            round=entry.round,
            rank=entry.rank,
            txs=entry.txs,
            epoch=entry.epoch,
            proposer=entry.proposer,
            proposed_at=entry.proposed_at,
            committed_at=now,
            # Thread the consensus digest through so the safety auditor can
            # compare *what* was committed, not just where (an equivocating
            # leader commits different digests at the same instance/round).
            payload_digest=entry.digest,
            tx_count_hint=entry.tx_count,
            batch_submitted_at=entry.batch_submitted_at,
        )
        self.commit_log.append((entry.round, entry.digest, now))
        if self.retain_blocks:
            self.delivered_blocks.append(block)
        self.context.deliver(block)
        self._on_committed(entry, block)
        self._gc_committed(entry)
        self._arm_propose_timer()

    def _on_committed(self, entry: RoundEntry, block: Block) -> None:
        """Hook for subclasses (Ladon) that act when a round commits."""

    # ----------------------------------------------------------- log pruning
    def _gc_committed(self, entry: RoundEntry) -> None:
        """Release a committed round's quorum votes and prune the stable prefix.

        Vote state for the committed key is dropped immediately, and —
        via ``_round_digests`` — so is the vote state of every *other*
        digest voted at that round (forged digests from an equivocating
        vote flood never reach quorum, so nothing else would release
        them).  The log entry itself (holding the batch reference) is
        pruned once the *contiguous* committed prefix reaches it, which
        keeps ``_stable_round`` a true watermark: every round at or below
        it is committed, so stale messages for those rounds can be dropped
        at handler entry without consulting the (now pruned) log.

        A round committed through the others' commit quorum while this
        replica's own prepare quorum is still incomplete (lossy links) is
        marked in ``_deferred_sends`` instead of blocking the watermark:
        its entry and prepare votes stay alive (the late quorum must still
        fire the commit send, pre-GC behaviour), the stale-round drop
        exempts it, and :meth:`_maybe_send_commit` finishes its GC when
        the quorum lands (or :meth:`_on_new_view` does, once a view change
        makes the missing prepares undeliverable).
        """
        key = self._vote_key(entry.view, entry.round, entry.digest)
        self.commit_votes.clear(key)
        if not entry.sent_commit:
            self._deferred_sends.add(entry.round)
        else:
            self.prepare_votes.clear(key)
        above = self._committed_above
        above.add(entry.round)
        stable = self._stable_round
        deferred = self._deferred_sends
        log = self.log
        while stable + 1 in above:
            stable += 1
            above.discard(stable)
            if stable in deferred:
                continue  # entry + prepare votes stay until the send fires
            gone = log.pop(stable, None)
            self._release_round_votes(stable, gone.view if gone else entry.view)
        self._stable_round = stable

    def _release_round_votes(self, round: int, view: int) -> None:
        """Drop interned digests and vote state for every digest of ``round``."""
        digest_ids = self._digest_ids
        prepare_votes = self.prepare_votes
        commit_votes = self.commit_votes
        for digest in self._round_digests.pop(round, ()):
            digest_id = digest_ids.pop(digest, None)
            if digest_id is not None:
                key = (view, round, digest_id)
                prepare_votes.clear(key)
                commit_votes.clear(key)

    def _finalize_deferred_send(self, entry: RoundEntry) -> None:
        """Complete the GC of a round whose commit send was deferred."""
        self._deferred_sends.discard(entry.round)
        if entry.round <= self._stable_round:
            # The watermark already passed it: prune now.
            self.log.pop(entry.round, None)
            self._release_round_votes(entry.round, entry.view)
        else:
            key = self._vote_key(entry.view, entry.round, entry.digest)
            self.prepare_votes.clear(key)

    # ------------------------------------------------------------ view change
    def _round_timer_name(self, round: int) -> str:
        # staticcheck: ignore[HOT-002] -- per-round timer arming, not per-message; ~1 format per proposal
        return f"{self.ROUND_TIMER}:{self.instance_id}:{round}"

    def _arm_round_timer(self, round: int) -> None:
        """Expect the round to commit within the view-change timeout."""
        timeout = self.config.view_change_timeout
        self.context.set_timer(
            self._round_timer_name(round), timeout, lambda: self._on_timeout(round)
        )

    def _arm_propose_timer(self) -> None:
        """Optionally expect the next proposal within ``propose_timeout``.

        Disabled by default (honest stragglers must not trigger view changes,
        Sec. 6.1); the crash-fault experiment (Fig. 8) enables it.
        """
        if self.propose_timeout is None:
            return
        self.context.set_timer(
            # staticcheck: ignore[HOT-002] -- fires once per proposal window, only in the Fig. 8 crash experiment
            f"pbft-propose:{self.instance_id}",
            self.propose_timeout,
            self._on_propose_timeout,
        )

    def _on_propose_timeout(self) -> None:
        if self.stopped or self.is_leader:
            return
        self._start_view_change()

    def _on_timeout(self, round: int) -> None:
        if round <= self._stable_round:
            return  # committed (and pruned) before the timer fired
        entry = self.log.get(round)
        if entry is not None and entry.committed:
            return
        self._start_view_change()

    def _start_view_change(self) -> None:
        if self.view_change_in_progress:
            return
        self.view_change_in_progress = True
        new_view = self.view + 1
        message = ViewChange(
            sender=self.replica_id,
            instance=self.instance_id,
            view=new_view,
            round=self.last_committed_round,
            last_committed_round=self.last_committed_round,
            highest_rank=self.context.current_rank(),
        )
        self.context.record_crypto("sign")
        new_leader = self.config.leader_for_view(new_view)
        if new_leader == self.replica_id:
            # Direct self-delivery bypasses on_message: account the entry
            # verification the dispatch site would have recorded.
            self.context.record_crypto("verify")
            self._on_view_change(self.replica_id, message)
        else:
            self.context.send(new_leader, message, message.size_bytes)

    def _on_view_change(self, sender: int, message: ViewChange) -> None:
        if message.view <= self.view:
            return
        if self.config.leader_for_view(message.view) != self.replica_id:
            return
        key = ("view-change", message.view)
        high = max(
            self._view_change_high.get(key, self.last_committed_round),
            message.last_committed_round,
        )
        self._view_change_high[key] = high
        if not self.view_change_votes.add_vote(key, sender):
            return
        resume_round = max(high, self.last_committed_round) + 1
        new_view_msg = NewView(
            sender=self.replica_id,
            instance=self.instance_id,
            view=message.view,
            round=resume_round,
            view_change_count=self.view_change_votes.count(key),
            resume_round=resume_round,
        )
        self.context.record_crypto("sign")
        self.context.multicast(new_view_msg, new_view_msg.size_bytes)

    def _on_new_view(self, sender: int, message: NewView) -> None:
        if message.view <= self.view:
            return
        if sender != self.config.leader_for_view(message.view):
            return
        self.view = message.view
        self.view_change_in_progress = False
        # Reset (not max) the proposal cursor: rounds at and beyond the
        # resume point are dropped below and must be re-proposed, so a new
        # leader whose cursor had advanced past them would otherwise wait
        # forever for commits of rounds nobody can propose any more.
        if "wedged-view-cursor" not in self.config.compat_flags:
            self.next_round = max(self.last_committed_round + 1, message.resume_round)
        # else: regression-corpus reproduction of the wedged-proposal-cursor
        # bug — the new leader keeps its stale cursor and proposes rounds the
        # followers already garbage-collected, stalling the instance.  Kept
        # behind an opt-in compat flag as the fuzzer's canonical target.
        self.view_resume_round = message.resume_round
        is_new_leader = self.config.leader_for_view(message.view) == self.replica_id
        # Drop uncommitted in-flight rounds; the new leader re-proposes them.
        # Rounds that reached a prepare quorum in the old view are re-proposed
        # with their ORIGINAL digest/batch (PBFT's new-view rule): a replica
        # that already committed one of them must see the same content again,
        # never a fresh batch at the same round.  (Full PBFT sources these
        # from prepared certificates inside the view-change messages; we use
        # the new leader's own log, which holds them in all but pathological
        # message-loss interleavings.)
        stashed: Dict[int, RoundEntry] = {}
        for round, entry in list(self.log.items()):
            if not entry.committed and round >= message.resume_round:
                if is_new_leader and entry.pre_prepared and entry.prepare_quorum:
                    stashed[round] = entry
                del self.log[round]
                self.context.cancel_timer(self._round_timer_name(round))
        # View-change bookkeeping for installed (and older) views is dead.
        for vc_key in [k for k in self._view_change_high if k[1] <= message.view]:
            del self._view_change_high[vc_key]
            self.view_change_votes.clear(vc_key)
        # Deferred commit sends can never complete now (their missing
        # prepares belong to an older view and the view gate makes them
        # undeliverable): finalize their GC so they don't pin log entries
        # forever.  Deferred rounds always retain their log entry, created
        # in a view older than the one just installed.
        for round in list(self._deferred_sends):
            entry = self.log.pop(round)
            self._deferred_sends.discard(round)
            self._release_round_votes(round, entry.view)
        self._arm_propose_timer()
        self.on_view_installed(message.view)
        # Every prepared round is re-proposed (a prepared round may have
        # committed at some replica, so it must reappear with the same
        # content); holes between them are filled by the pacing loop, whose
        # cursor skips rounds already re-proposed in this view.
        for round in sorted(stashed):
            self._repropose(stashed[round])

    def _repropose(self, entry: RoundEntry) -> None:
        """Re-propose a round prepared in a previous view, content unchanged."""
        message = PrePrepare(
            sender=self.replica_id,
            instance=self.instance_id,
            view=self.view,
            round=entry.round,
            digest=entry.digest,
            tx_count=entry.tx_count,
            txs=entry.txs,
            rank=entry.rank,
            epoch=entry.epoch,
            reproposal=True,
            proposed_at=entry.proposed_at,
            batch_submitted_at=entry.batch_submitted_at,
        )
        self.context.record_crypto("sign")
        self.context.multicast(message, message.size_bytes)

    def on_view_installed(self, view: int) -> None:
        """Hook for the hosting replica (e.g. to log view-change completion)."""

    # -------------------------------------------------------------- internals
    def _entry(self, round: int) -> RoundEntry:
        entry = self.log.get(round)
        if entry is None:
            entry = self.log[round] = RoundEntry(round=round, view=self.view)
        return entry
