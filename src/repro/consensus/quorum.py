"""Quorum vote tracking."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Set, Tuple


@dataclass
class QuorumTracker:
    """Counts distinct voters per key and fires exactly once per quorum.

    Keys are arbitrary hashable tuples, typically ``(view, round, digest)``.
    The tracker remembers which keys already reached quorum so a late vote
    cannot re-trigger the quorum action.
    """

    threshold: int
    _votes: Dict[Hashable, Set[int]] = field(default_factory=dict)
    _reached: Set[Hashable] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("quorum threshold must be positive")

    def add_vote(self, key: Hashable, voter: int) -> bool:
        """Record a vote.  Returns True exactly when the key first reaches quorum."""
        if key in self._reached:
            self._votes.setdefault(key, set()).add(voter)
            return False
        voters = self._votes.setdefault(key, set())
        voters.add(voter)
        if len(voters) >= self.threshold:
            self._reached.add(key)
            return True
        return False

    def voters(self, key: Hashable) -> Tuple[int, ...]:
        return tuple(sorted(self._votes.get(key, set())))

    def count(self, key: Hashable) -> int:
        return len(self._votes.get(key, set()))

    def has_quorum(self, key: Hashable) -> bool:
        return key in self._reached

    def clear(self, key: Hashable) -> None:
        self._votes.pop(key, None)
        self._reached.discard(key)
