"""Quorum vote tracking.

The tracker stores, per key, a **voter bitmask** (one bit per replica id)
instead of a ``set`` of ids: recording a vote is a bit-or, the quorum check
is a popcount (``int.bit_count``), and there is no per-vote set allocation.
Reached-quorum state is folded into the same dict entry (the mask is stored
bit-inverted, i.e. negative, once the key reached quorum), so the hot path
costs exactly one dict lookup and one store per vote.  This sits on the
consensus hot path — one ``add_vote`` per prepare/commit vote per replica —
so the constant factor matters at n=128.

Two memory guarantees back the bounded-memory mode of the protocol layer:

* :meth:`clear` releases a key's state (the instances call it when a round
  commits, so vote state is O(active rounds), not O(history));
* votes arriving *after* a key reached quorum are dropped by default — the
  old behaviour of accumulating them (for a key nobody reads again) let an
  adversarial vote flood grow memory without bound.  Pass
  ``track_post_quorum=True`` to opt back in (diagnostics).
"""

# staticcheck: hot-path
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Tuple


@dataclass
class QuorumTracker:
    """Counts distinct voters per key and fires exactly once per quorum.

    Keys are arbitrary hashable values, typically ``(view, round, digest)``
    tuples (the consensus instances intern digests to small ints so the hot
    keys are int-only tuples).  The tracker remembers which keys already
    reached quorum so a late vote cannot re-trigger the quorum action.
    """

    threshold: int
    #: keep counting voters after quorum (off by default: a post-quorum vote
    #: flood would otherwise grow memory for state nobody reads)
    track_post_quorum: bool = False
    #: voter bitmask per key; stored as ``~mask`` (negative) once the key
    #: reached quorum, so one dict entry carries both facts
    _votes: Dict[Hashable, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("quorum threshold must be positive")

    def add_vote(self, key: Hashable, voter: int) -> bool:
        """Record a vote.  Returns True exactly when the key first reaches quorum."""
        votes = self._votes
        mask = votes.get(key, 0)
        if mask < 0:  # quorum already reached
            if self.track_post_quorum:
                votes[key] = ~(~mask | (1 << voter))
            return False
        mask |= 1 << voter
        if mask.bit_count() >= self.threshold:
            votes[key] = ~mask
            return True
        votes[key] = mask
        return False

    @staticmethod
    def _mask_of(value: int) -> int:
        return ~value if value < 0 else value

    def voters(self, key: Hashable) -> Tuple[int, ...]:
        mask = self._mask_of(self._votes.get(key, 0))
        out = []
        voter = 0
        while mask:
            if mask & 1:
                out.append(voter)
            mask >>= 1
            voter += 1
        return tuple(out)

    def count(self, key: Hashable) -> int:
        return self._mask_of(self._votes.get(key, 0)).bit_count()

    def has_quorum(self, key: Hashable) -> bool:
        return self._votes.get(key, 0) < 0

    def clear(self, key: Hashable) -> None:
        """Release all state held for ``key`` (committed/garbage rounds)."""
        self._votes.pop(key, None)

    # ------------------------------------------------------------- inspection
    def tracked_keys(self) -> int:
        """Number of keys currently holding state (memory diagnostics)."""
        return len(self._votes)
