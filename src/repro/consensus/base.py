"""Consensus instance base class and host context.

A :class:`ConsensusInstance` never touches the network directly; the hosting
replica supplies an :class:`InstanceContext` whose callbacks route messages,
deliver partially committed blocks, manage timers and account crypto
operations.  This keeps the instance state machines unit-testable without a
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.block import Block
from repro.crypto.aggregate import fault_threshold, quorum_threshold


@dataclass
class InstanceConfig:
    """Static configuration of one consensus instance at one replica."""

    instance_id: int
    replica_id: int
    n: int
    batch_size: int = 4096
    epoch_length: int = 64
    view_change_timeout: float = 10.0
    tx_payload_bytes: int = 500
    #: opt-in reproductions of historical bugs, kept alive for the fuzzing
    #: regression corpus (e.g. ``"wedged-view-cursor"``); empty = faithful.
    compat_flags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ValueError("a BFT system needs at least n = 4 replicas")
        if self.instance_id < 0 or self.replica_id < 0:
            raise ValueError("ids must be non-negative")

    @property
    def f(self) -> int:
        return fault_threshold(self.n)

    @property
    def quorum(self) -> int:
        return quorum_threshold(self.n)

    def leader_for_view(self, view: int) -> int:
        """Round-robin leader schedule within the instance.

        View 0's leader is the replica whose id equals the instance id (the
        paper deploys one instance per replica, each replica leading its own
        instance), and subsequent views rotate.
        """
        return (self.instance_id + view) % self.n


class InstanceContext:
    """Host callbacks an instance uses to interact with the outside world."""

    def now(self) -> float:
        raise NotImplementedError

    def send(self, dest: int, message: Any, size_bytes: int) -> None:
        raise NotImplementedError

    def multicast(self, message: Any, size_bytes: int) -> None:
        """Send to every replica, including this one (self-delivery is local)."""
        raise NotImplementedError

    def deliver(self, block: Block) -> None:
        """Report a partially committed block to the global ordering layer."""
        raise NotImplementedError

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        raise NotImplementedError

    def cancel_timer(self, name: str) -> None:
        raise NotImplementedError

    def record_crypto(self, operation: str, count: int = 1) -> None:
        """Account a cryptographic operation (sign/verify/aggregate)."""

    def current_rank(self) -> int:
        """The replica's global curRank (shared across instances)."""
        return 0

    def observe_rank(self, rank: int, certificate: Any = None) -> None:
        """Update the replica's global curRank if ``rank`` is higher."""

    def max_rank(self) -> int:
        """maxRank of the replica's current epoch."""
        return 2**62

    def min_rank(self) -> int:
        """minRank of the replica's current epoch."""
        return 0

    def current_epoch(self) -> int:
        return 0


@dataclass
class CollectingContext(InstanceContext):
    """An in-memory context for unit tests: records everything it is told."""

    time: float = 0.0
    sent: List[Tuple[int, Any, int]] = field(default_factory=list)
    multicasts: List[Tuple[Any, int]] = field(default_factory=list)
    delivered: List[Block] = field(default_factory=list)
    crypto_ops: Dict[str, int] = field(default_factory=dict)
    timers: Dict[str, Tuple[float, Callable[[], None]]] = field(default_factory=dict)
    rank: int = 0
    epoch: int = 0
    epoch_length: int = 64

    def now(self) -> float:
        return self.time

    def send(self, dest: int, message: Any, size_bytes: int) -> None:
        self.sent.append((dest, message, size_bytes))

    def multicast(self, message: Any, size_bytes: int) -> None:
        self.multicasts.append((message, size_bytes))

    def deliver(self, block: Block) -> None:
        self.delivered.append(block)

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        self.timers[name] = (self.time + delay, callback)

    def cancel_timer(self, name: str) -> None:
        self.timers.pop(name, None)

    def record_crypto(self, operation: str, count: int = 1) -> None:
        self.crypto_ops[operation] = self.crypto_ops.get(operation, 0) + count

    def current_rank(self) -> int:
        return self.rank

    def observe_rank(self, rank: int, certificate: Any = None) -> None:
        if rank > self.rank:
            self.rank = rank

    def max_rank(self) -> int:
        return (self.epoch + 1) * self.epoch_length - 1

    def min_rank(self) -> int:
        return self.epoch * self.epoch_length

    def current_epoch(self) -> int:
        return self.epoch

    def fire_timer(self, name: str) -> None:
        """Test helper: fire a pending timer immediately."""
        deadline, callback = self.timers.pop(name)
        self.time = max(self.time, deadline)
        callback()


class ConsensusInstance:
    """Common scaffolding for all instance implementations."""

    def __init__(self, config: InstanceConfig, context: InstanceContext) -> None:
        self.config = config
        self.context = context
        self.view = 0
        self.stopped = False

    # ------------------------------------------------------------ properties
    @property
    def instance_id(self) -> int:
        return self.config.instance_id

    @property
    def replica_id(self) -> int:
        return self.config.replica_id

    @property
    def leader(self) -> int:
        return self.config.leader_for_view(self.view)

    @property
    def is_leader(self) -> bool:
        return self.replica_id == self.leader

    # --------------------------------------------------------------- protocol
    def on_message(self, sender: int, message: Any) -> None:
        raise NotImplementedError

    def propose(self, txs: Tuple, now: float) -> Optional[Any]:
        """Leader-only: propose a batch.  Returns the proposal or None."""
        raise NotImplementedError

    def ready_to_propose(self) -> bool:
        """Whether the leader may propose its next block right now."""
        raise NotImplementedError

    def stop(self) -> None:
        self.stopped = True
