"""Pluggable execution backends behind one sans-I/O seam.

Protocol code (nodes, consensus state machines, the Multi-BFT systems)
imports *only* from this package — never from ``repro.sim.simulator`` or
``repro.sim.network`` — and therefore runs unchanged on every backend:

========== ============================================ ====================
backend    class                                        time
========== ============================================ ====================
``des``    :class:`~repro.runtime.des.DESRuntime`       virtual (simulated)
``realtime`` :class:`~repro.runtime.realtime.RealtimeRuntime` wall clock
``sharded`` :class:`~repro.runtime.sharded.ShardedDESRuntime` virtual, parallel
========== ============================================ ====================

Use :func:`build_runtime` to construct a backend by name.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.runtime.base import Runtime, RUNTIME_KINDS
from repro.runtime.des import DESRuntime
from repro.runtime.realtime import RealtimeRuntime
from repro.sim.latency import LatencyModel
from repro.sim.network import NetworkConfig, NetworkStats
from repro.sim.trace import TraceRecorder

__all__ = [
    "Runtime",
    "RUNTIME_KINDS",
    "DESRuntime",
    "RealtimeRuntime",
    "NetworkConfig",
    "NetworkStats",
    "build_runtime",
]


def build_runtime(
    kind: str,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    network_config: Optional[NetworkConfig] = None,
    trace: Optional[TraceRecorder] = None,
    time_scale: float = 1.0,
    system_config: Optional[Any] = None,
) -> Runtime:
    """Construct the execution backend named ``kind``.

    ``time_scale`` only applies to the realtime backend (wall seconds per
    virtual second; e.g. ``0.1`` runs a 10 s scenario in ~1 s of wall time).
    ``system_config`` is required by (and only by) the sharded backend: the
    hub partitions replicas and derives its lookahead from the full
    :class:`~repro.protocols.base.SystemConfig`, not just a latency model.
    """
    if kind == "des":
        return DESRuntime(seed=seed, latency=latency, config=network_config, trace=trace)
    if kind == "realtime":
        return RealtimeRuntime(
            seed=seed,
            latency=latency,
            config=network_config,
            trace=trace,
            time_scale=time_scale,
        )
    if kind == "sharded":
        if system_config is None:
            raise ValueError(
                "the sharded runtime is system-scoped: pass "
                "system_config=<SystemConfig> (or build the whole system via "
                "repro.protocols.registry.build_system)"
            )
        from repro.runtime.sharded import ShardedDESRuntime

        return ShardedDESRuntime(system_config)
    raise ValueError(f"unknown runtime {kind!r}; expected one of {RUNTIME_KINDS}")
