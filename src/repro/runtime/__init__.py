"""Pluggable execution backends behind one sans-I/O seam.

Protocol code (nodes, consensus state machines, the Multi-BFT systems)
imports *only* from this package — never from ``repro.sim.simulator`` or
``repro.sim.network`` — and therefore runs unchanged on every backend:

========== ============================================ ====================
backend    class                                        time
========== ============================================ ====================
``des``    :class:`~repro.runtime.des.DESRuntime`       virtual (simulated)
``realtime`` :class:`~repro.runtime.realtime.RealtimeRuntime` wall clock
========== ============================================ ====================

Use :func:`build_runtime` to construct a backend by name.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.base import Runtime, RUNTIME_KINDS
from repro.runtime.des import DESRuntime
from repro.runtime.realtime import RealtimeRuntime
from repro.sim.latency import LatencyModel
from repro.sim.network import NetworkConfig, NetworkStats
from repro.sim.trace import TraceRecorder

__all__ = [
    "Runtime",
    "RUNTIME_KINDS",
    "DESRuntime",
    "RealtimeRuntime",
    "NetworkConfig",
    "NetworkStats",
    "build_runtime",
]


def build_runtime(
    kind: str,
    seed: int = 0,
    latency: Optional[LatencyModel] = None,
    network_config: Optional[NetworkConfig] = None,
    trace: Optional[TraceRecorder] = None,
    time_scale: float = 1.0,
) -> Runtime:
    """Construct the execution backend named ``kind``.

    ``time_scale`` only applies to the realtime backend (wall seconds per
    virtual second; e.g. ``0.1`` runs a 10 s scenario in ~1 s of wall time).
    """
    if kind == "des":
        return DESRuntime(seed=seed, latency=latency, config=network_config, trace=trace)
    if kind == "realtime":
        return RealtimeRuntime(
            seed=seed,
            latency=latency,
            config=network_config,
            trace=trace,
            time_scale=time_scale,
        )
    raise ValueError(f"unknown runtime {kind!r}; expected one of {RUNTIME_KINDS}")
