"""Sharded multi-core DES: conservative-parallel simulation workers.

The single-process DES executes one global event heap; past ~10⁵ events/s
it is CPU-bound on one core.  This backend partitions the replica set
across N worker processes (:mod:`repro.shard.partition`), runs the
*unchanged* single-process engine inside each worker over its shard, and
synchronizes the workers conservatively:

**Safety argument.**  Every cross-shard message sent at time ``t`` arrives
at ``>= t + L``, where ``L`` is the lookahead derived from the scenario's
minimum cross-shard delay (:mod:`repro.shard.lookahead`).  The hub
therefore advances all shards in epoch-barrier windows of width ``<= L``:
a window ``[T_prev, T)`` with ``T - t_min <= L`` (``t_min`` = the earliest
pending event or in-flight arrival anywhere) can only *produce* cross-shard
arrivals ``>= t_min + L >= T`` — i.e. strictly beyond the window — so
exchanging outboxes at the barrier delivers every remote message before
any shard could need it.  No shard ever executes past the minimum bound of
its incoming channels; :meth:`~repro.shard.transport.ShardNetwork.
enqueue_remote` re-checks the invariant at delivery and raises
:class:`~repro.shard.ipc.ShardSyncError` on violation.

Windows are *exclusive* of their right endpoint (workers run to
``nextafter(T, 0)``) so a message sent exactly at a barrier time still
lands in the next window; only the final window (and its drain rounds) is
inclusive, matching the single-process ``run(until=duration)`` semantics.
When every shard is idle until some future timer, the hub skips ahead:
``target = min(duration, t_min + L)`` — WAN scenarios with ~40 ms
lookahead take a few hundred barriers for a 30 s run, not millions.

**Topology.**  Hub-and-spoke: workers pre-pickle per-destination outbox
batches (:mod:`repro.shard.ipc`) and the hub routes them as opaque bytes —
no double (un)pickling, no worker-to-worker mesh.  Workers are
``daemon=True`` children (fork where available) and all protocol state
lives inside them; the hub holds only the plan, the lookahead, and merged
statistics.  There is **no cross-process shared mutable state** (enforced
by the SHARD-001 staticcheck rule): the pipes carry finished, immutable
delivery entries.

Determinism: the partition plan is a pure function of the config, each
worker's simulator is seeded by :func:`~repro.shard.ipc.derive_shard_seed`,
frames are routed and merged in source-shard order, and the hub's merge
iterates shards and replicas in ascending order — the same (seed, shards)
pair reproduces bit-identically.  Relative to the single-process DES,
per-shard RNG streams make *timestamps* differ, but the confirmed
sequence's (instance, round, rank, digest) identity and the safety-audit
verdict are equivalence-checked in ``tests/test_sharded.py``.
"""

from __future__ import annotations

import multiprocessing
import resource
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.runtime.base import Runtime
from repro.runtime.des import DESRuntime
from repro.shard.ipc import decode_frame, encode_frame
from repro.shard.lookahead import Lookahead, derive_lookahead
from repro.shard.partition import ShardPlan, plan_shards
from repro.shard.transport import ShardNetwork
from repro.sim.latency import LatencyModel
from repro.sim.network import NetworkConfig, NetworkStats
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocols.base import SystemConfig, SystemResult
    from repro.shard.worker import ShardResult

_INFINITY = float("inf")

#: dynamics-log kinds armed identically on every shard (time-driven network
#: dynamics + the install-time rank-manipulation marker): the merge takes
#: them from shard 0 to avoid N-fold duplication
_GLOBAL_EVENT_KINDS = frozenset(
    {
        "partition",
        "heal",
        "degrade",
        "degrade-end",
        "loss-burst",
        "loss-burst-end",
        "attack:rank-manipulation",
    }
)

#: hard cap on post-final drain rounds; the lookahead bound terminates the
#: drain in <= 3 rounds, so hitting this means the barrier math regressed
_MAX_DRAIN_ROUNDS = 64


class ShardWorkerRuntime(DESRuntime):
    """The runtime one shard worker hands its partial system.

    Identical to :class:`~repro.runtime.des.DESRuntime` except the
    transport is a :class:`~repro.shard.transport.ShardNetwork`, which
    splits fan-out into local heap pushes and per-shard outboxes.
    """

    kind = "sharded"

    def __init__(
        self,
        seed: int,
        latency: Optional[LatencyModel],
        config: Optional[NetworkConfig],
        *,
        plan: ShardPlan,
        shard_id: int,
    ) -> None:
        simulator = Simulator(seed=seed)
        network = ShardNetwork(
            simulator, latency=latency, config=config, plan=plan, shard_id=shard_id
        )
        super().__init__(simulator=simulator, network=network)
        self.plan = plan
        self.shard_id = shard_id


@dataclass
class ShardSyncStats:
    """Hub-side synchronization diagnostics for one sharded run."""

    #: barrier rounds driven (including drain rounds)
    rounds: int = 0
    #: post-final drain rounds (in-flight frames delivered after ``duration``)
    drain_rounds: int = 0
    #: cross-shard frames routed hub -> workers
    frames_routed: int = 0
    #: smallest observed (arrival - horizon) across all remote deliveries;
    #: ``inf`` if no cross-shard message was ever received
    min_margin: float = _INFINITY


class ShardedDESRuntime(Runtime):
    """The hub of the conservative-parallel DES.

    Protocol code never runs here — replicas live inside the workers on
    :class:`ShardWorkerRuntime` instances — so the transport/scheduling
    surface of the :class:`~repro.runtime.base.Runtime` seam is
    intentionally left unimplemented.  The hub drives the barrier protocol
    (:meth:`run`), routes cross-shard frames, and aggregates statistics.
    """

    kind = "sharded"

    def __init__(self, config: "SystemConfig") -> None:
        if config.runtime != "sharded":
            raise ValueError(
                f"ShardedDESRuntime needs runtime='sharded', got {config.runtime!r}"
            )
        self.config = config
        self.latency = config.latency_model()
        self.plan = plan_shards(
            config.n, config.shards, self.latency, config.shard_strategy
        )
        self.effective_faults = config.effective_faults()
        self.lookahead: Lookahead = derive_lookahead(
            self.plan,
            self.latency,
            network_config=config.network_config(),
            faults=self.effective_faults,
        )
        self.trace = TraceRecorder(enabled=False)
        #: merged transport statistics (populated by :meth:`collect_results`)
        self.stats = NetworkStats()
        self.sync = ShardSyncStats()
        self._workers: List[Tuple[Any, Any]] = []  # (pipe, process) per shard
        self._events_by_shard: List[int] = [0] * self.plan.shards
        self._results: Optional[List["ShardResult"]] = None
        self._finished = False

    # ------------------------------------------------------------- lifecycle
    def _spawn(self) -> None:
        """Fork one daemon worker per shard (spawn where fork is absent)."""
        if self._workers:
            return
        # Lazy import breaks the cycle: the worker module imports
        # ShardWorkerRuntime from here at its own top level.
        from repro.shard.worker import worker_entry

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        for shard_id in range(self.plan.shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=worker_entry,
                args=(child_conn, self.config, self.plan, shard_id),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((parent_conn, process))

    def close(self) -> None:
        """Stop and reap every worker (idempotent; safe after errors)."""
        for conn, _process in self._workers:
            try:
                conn.send_bytes(encode_frame(("stop",)))
            except (BrokenPipeError, OSError):
                pass
        for conn, process in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - hung-worker safety net
                process.terminate()
                process.join(timeout=1.0)
            conn.close()
        self._workers = []

    def _recv(self, shard_id: int) -> Tuple[Any, ...]:
        """Receive one frame from a worker, surfacing worker death/errors."""
        conn, process = self._workers[shard_id]
        while not conn.poll(0.2):
            if not process.is_alive():
                raise RuntimeError(
                    f"shard worker {shard_id} died unexpectedly "
                    f"(exit code {process.exitcode})"
                )
        frame = decode_frame(conn.recv_bytes())
        if frame[0] == "error":
            raise RuntimeError(f"shard worker {shard_id} failed:\n{frame[1]}")
        return frame

    # ----------------------------------------------------------- barrier loop
    def _round(
        self, target: float, inclusive: bool, inboxes: List[List[bytes]]
    ) -> Tuple[List[List[bytes]], float, float]:
        """Drive one synchronized window on every shard.

        Sends the routed frames plus the window bound, then gathers each
        worker's flush.  Returns the next round's inboxes, the minimum
        arrival among the frames just routed, and the minimum local
        next-event time across shards (both ``inf`` when empty).
        """
        shards = self.plan.shards
        for shard_id in range(shards):
            conn, _process = self._workers[shard_id]
            conn.send_bytes(
                encode_frame(("run", target, inclusive, inboxes[shard_id]))
            )
        next_inboxes: List[List[bytes]] = [[] for _ in range(shards)]
        pending_min = _INFINITY
        next_min = _INFINITY
        for shard_id in range(shards):
            frame = self._recv(shard_id)
            _kind, out_frames, min_outgoing, next_event, events = frame
            for dest_shard, data in out_frames:
                next_inboxes[dest_shard].append(data)
                self.sync.frames_routed += 1
            if min_outgoing < pending_min:
                pending_min = min_outgoing
            if next_event < next_min:
                next_min = next_event
            self._events_by_shard[shard_id] = events
        self.sync.rounds += 1
        return next_inboxes, pending_min, next_min

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drive all shards to ``until`` through epoch-barrier windows."""
        if max_events is not None:
            raise ValueError("the sharded runtime cannot bound max_events globally")
        duration = until if until is not None else self.config.duration
        if self._finished:
            raise RuntimeError("a sharded runtime drives exactly one run")
        self._spawn()
        window = self.lookahead.seconds
        try:
            shards = self.plan.shards
            inboxes: List[List[bytes]] = [[] for _ in range(shards)]
            t_min = 0.0
            while True:
                target = min(duration, t_min + window)
                final = target >= duration
                inboxes, pending_min, next_min = self._round(target, final, inboxes)
                if final:
                    break
                t_min = min(next_min, pending_min)
                if t_min == _INFINITY:
                    t_min = duration  # all shards idle: jump to the end
                elif t_min < target:
                    t_min = target  # conservative floor; cannot move backwards
            # Drain in-flight frames produced by the final inclusive window.
            # The lookahead bound terminates this in <= ~3 rounds: entries a
            # drain round delivers were sent at t >= duration - L, so their
            # own sends arrive > duration and the outboxes run dry.
            drains = 0
            while any(inboxes):
                inboxes, _pending, _next = self._round(duration, True, inboxes)
                self.sync.drain_rounds += 1
                drains += 1
                if drains > _MAX_DRAIN_ROUNDS:  # pragma: no cover - regression guard
                    raise RuntimeError(
                        "sharded drain did not converge: in-flight frames kept "
                        "arriving <= duration after the final window — the "
                        "lookahead bound is broken"
                    )
        except BaseException:
            self.close()
            raise
        self._finished = True
        return duration

    # ------------------------------------------------------------ collection
    def collect_results(self) -> List["ShardResult"]:
        """Gather every worker's :class:`ShardResult`, then stop the fleet."""
        if self._results is None:
            if not self._finished:
                raise RuntimeError("collect_results() requires a finished run()")
            try:
                for conn, _process in self._workers:
                    conn.send_bytes(encode_frame(("collect",)))
                results = []
                for shard_id in range(self.plan.shards):
                    frame = self._recv(shard_id)
                    results.append(frame[1])
            finally:
                self.close()
            self._results = results
            for result in results:
                _merge_network_stats(self.stats, result.net_stats)
                if result.min_margin < self.sync.min_margin:
                    self.sync.min_margin = result.min_margin
                self._events_by_shard[result.shard_id] = result.events_processed
        return self._results

    @property
    def events_processed(self) -> int:
        return sum(self._events_by_shard)

    @property
    def worker_peak_rss_bytes(self) -> List[int]:
        """Each worker's self-reported peak RSS (empty before collection)."""
        if self._results is None:
            return []
        return [result.peak_rss_bytes for result in self._results]

    def total_peak_rss_bytes(self) -> int:
        """Peak RSS across the whole process tree, summed.

        Workers self-report ``getrusage(RUSAGE_SELF)`` at collection time
        (they are still alive then), the hub adds its own — this is exact
        and psutil-free.  Note that ``getrusage(RUSAGE_CHILDREN)`` would
        *not* work here: it reports the **max over terminated children**,
        not their sum, so an N-worker fleet would be under-counted N-fold.
        Peaks in different processes need not coincide in time, so the sum
        is an upper bound on true simultaneous footprint — the honest
        direction for a memory budget.
        """
        own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform != "darwin":  # ru_maxrss is KiB on Linux
            own *= 1024
        return own + sum(self.worker_peak_rss_bytes)

    def stop(self) -> None:
        self.close()


def _merge_network_stats(total: NetworkStats, part: NetworkStats) -> None:
    """Fold one shard's transport stats into the merged view.

    Sends are accounted on the sending shard and deliveries on the
    receiving shard, each exactly once, so every field is a plain sum;
    per-sender maps are disjoint across shards (each sender lives on one
    shard) and merge in shard order.
    """
    total.messages_sent += part.messages_sent
    total.messages_delivered += part.messages_delivered
    total.messages_dropped += part.messages_dropped
    total.messages_duplicated += part.messages_duplicated
    total.bytes_sent += part.bytes_sent
    for cause, count in sorted(part.drops_by_cause.items()):
        total.drops_by_cause[cause] = total.drops_by_cause.get(cause, 0) + count
    for node, count in part.bytes_per_node.items():
        total.bytes_per_node[node] = total.bytes_per_node.get(node, 0) + count
    for node, count in part.messages_per_node.items():
        total.messages_per_node[node] = total.messages_per_node.get(node, 0) + count


class ShardedSystem:
    """Hub-side facade with the ``MultiBFTSystem`` result surface.

    ``run()`` drives the barrier protocol and merges the workers'
    :class:`~repro.shard.worker.ShardResult` payloads into the same
    :class:`~repro.protocols.base.SystemResult` a single-process run
    produces, including the safety/liveness audit over the union of every
    shard's honest commit logs.
    """

    def __init__(self, config: "SystemConfig") -> None:
        from repro.metrics.resources import ResourceModel
        from repro.runtime import build_runtime

        self.config = config
        self.effective_faults = config.effective_faults()
        self.runtime: ShardedDESRuntime = build_runtime(
            "sharded", system_config=config
        )
        self.resources = ResourceModel()

    @property
    def plan(self) -> ShardPlan:
        return self.runtime.plan

    @property
    def lookahead(self) -> Lookahead:
        return self.runtime.lookahead

    @property
    def simulator(self):
        """No global simulator exists; per-shard ones live in the workers."""
        return None

    def run(self) -> "SystemResult":
        self.runtime.run(until=self.config.duration)
        results = self.runtime.collect_results()
        return self._merge(results)

    # ---------------------------------------------------------------- merge
    def _merge(self, results: Sequence["ShardResult"]) -> "SystemResult":
        from repro.metrics.auditor import audit_logs
        from repro.protocols.base import SystemResult

        config = self.config
        faults = self.effective_faults

        # -------- resources: ascending replica id fixes the float-sum order
        usage_rows: Dict[int, Any] = {}
        for result in results:
            usage_rows.update(result.resources)
        self.resources.absorb(
            {replica: usage_rows[replica] for replica in sorted(usage_rows)}
        )
        stats = self.runtime.stats
        for replica, byte_count in stats.bytes_per_node.items():
            usage = self.resources.usage(replica)
            usage.bytes_sent = max(usage.bytes_sent, byte_count)

        # -------- observer: exactly one shard hosts it
        observers = [r.observer for r in results if r.observer is not None]
        if len(observers) != 1:  # pragma: no cover - structural invariant
            raise RuntimeError(
                f"expected exactly one shard to host the observer, got "
                f"{len(observers)}"
            )
        observer = observers[0]
        metrics = observer.collector.summarise(
            protocol=config.protocol,
            n=config.n,
            stragglers=faults.straggler_count(),
            duration=config.duration,
            resources=self.resources,
            warmup=config.warmup,
        )

        # -------- audit over the union of per-shard honest logs
        adversarial = faults.adversarial_replicas()
        crashed = {spec.replica for spec in faults.crashes}
        partial_by_replica: Dict[int, Dict[int, list]] = {}
        confirmed_by_replica: Dict[int, list] = {}
        for result in results:
            for replica in sorted(result.commit_logs):
                if replica in adversarial:
                    continue
                partial_by_replica[replica] = result.commit_logs[replica]
                confirmed_by_replica[replica] = result.confirmed_fps[replica]
        # Same stall-window formula as audit_system (which needs live
        # replica objects and therefore cannot run on the hub).
        max_slowdown = max(
            [spec.slowdown for spec in faults.straggler_map().values()], default=1.0
        )
        stall_window = max(
            2.0 * config.view_change_timeout,
            3.0 * config.proposal_interval * max_slowdown,
        )
        audit = audit_logs(
            partial_by_replica,
            confirmed_by_replica,
            duration=config.duration,
            stall_window=stall_window,
            live_replicas=[r for r in sorted(partial_by_replica) if r not in crashed],
            liveness_instances=range(config.m),
        )
        audit.adversarial_replicas = tuple(sorted(adversarial))
        metrics.extra["safety_violations"] = float(len(audit.violations))
        metrics.extra["stalled_instances"] = float(len(audit.stalled_instances))

        # -------- adversary counters: plain sums across shards
        adversary_totals: Dict[str, int] = {}
        for result in results:
            if result.adversary_stats:
                for key, value in result.adversary_stats.items():
                    adversary_totals[key] = adversary_totals.get(key, 0) + value
        for key, value in sorted(adversary_totals.items()):
            metrics.extra[f"adversary_{key}"] = float(value)

        # -------- sharded-runtime diagnostics ride the metrics row
        metrics.extra["shards"] = float(self.plan.shards)
        metrics.extra["sync_rounds"] = float(self.runtime.sync.rounds)
        metrics.extra["lookahead_ms"] = self.lookahead.seconds * 1e3
        if self.runtime.sync.min_margin != _INFINITY:
            metrics.extra["sync_min_margin_ms"] = (
                self.runtime.sync.min_margin * 1e3
            )

        view_changes: List[Tuple[float, int, int]] = []
        crash_log: List[Tuple[float, int, str]] = []
        for result in results:
            view_changes.extend(result.view_change_log)
            crash_log.extend(result.crash_log)

        return SystemResult(
            metrics=metrics,
            confirmed=observer.confirmed,
            network_stats=stats,
            resources=self.resources,
            throughput_series=observer.collector.throughput.series(
                until=config.duration
            ),
            view_change_times=sorted(view_changes),
            epoch_advancements=observer.epoch_log,
            crash_log=sorted(crash_log),
            dynamics_log=_merge_dynamics_logs([r.event_log for r in results]),
            audit=audit,
        )


def _merge_dynamics_logs(
    logs: Sequence[List[Tuple[float, str, str]]]
) -> List[Tuple[float, str, str]]:
    """One chronological dynamics timeline from per-shard event logs.

    Time-driven network dynamics arm identically on every shard, so those
    kinds come from shard 0 only; crash/recover entries are owned by the
    hosting shard and concatenate; attack-window entries concatenate with
    exact-duplicate suppression (identical "on" markers from shards sharing
    a conspiracy collapse, per-shard "-end" stats entries all survive).
    """
    merged: List[Tuple[float, str, str]] = []
    seen: set = set()
    for shard_id, log in enumerate(logs):
        for entry in log:
            kind = entry[1]
            if kind in _GLOBAL_EVENT_KINDS:
                if shard_id != 0:
                    continue
            elif entry in seen:
                continue
            seen.add(entry)
            merged.append(entry)
    merged.sort(key=lambda entry: entry[0])
    return merged
