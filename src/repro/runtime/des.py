"""Discrete-event runtime: the virtual-time backend.

:class:`DESRuntime` implements the :class:`~repro.runtime.base.Runtime`
interface by composing the existing simulator core
(:class:`~repro.sim.simulator.Simulator`) with the transport model
(:class:`~repro.sim.network.Network`).  Hot-path methods are *bound through*
in ``__init__`` (instance attributes referencing the underlying bound
methods) so the seam adds zero per-event indirection: ``runtime.send`` *is*
``network.send``.
"""

# staticcheck: hot-path
from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.runtime.base import Runtime
from repro.sim.latency import LatencyModel
from repro.sim.network import Network, NetworkConfig
from repro.sim.simulator import Simulator
from repro.sim.trace import TraceRecorder


class DESRuntime(Runtime):
    """Virtual-time execution on the discrete-event simulator."""

    kind = "des"

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        config: Optional[NetworkConfig] = None,
        trace: Optional[TraceRecorder] = None,
        *,
        simulator: Optional[Simulator] = None,
        network: Optional[Network] = None,
    ) -> None:
        self.simulator = simulator if simulator is not None else Simulator(seed=seed, trace=trace)
        self.network = (
            network
            if network is not None
            else Network(self.simulator, latency=latency, config=config)
        )
        self.rng = self.simulator.rng
        self.trace = self.simulator.trace
        self.stats = self.network.stats
        # Zero-cost seam: expose the backend's bound methods directly.
        self.now = self.simulator.now
        self.schedule_at = self.simulator.schedule_at
        self.schedule_after = self.simulator.schedule_after
        self.schedule_call = self.simulator.schedule_call
        self.cancel = self.simulator.cancel
        self.stop = self.simulator.stop
        self.send = self.network.send
        self.multicast = self.network.multicast
        self.register = self.network.register
        self.unregister = self.network.unregister
        self.registered_nodes = self.network.registered_nodes
        self.set_partition = self.network.set_partition
        self.heal_partition = self.network.heal_partition
        self.set_latency_scale = self.network.set_latency_scale
        self.set_drop_probability = self.network.set_drop_probability
        self.set_link_filter = self.network.set_link_filter
        self.set_delivery_perturbation = self.network.set_delivery_perturbation

    @classmethod
    def wrap(cls, simulator: Simulator, network: Network) -> "DESRuntime":
        """Adapt an existing (simulator, network) pair — the legacy wiring."""
        return cls(simulator=simulator, network=network)

    # ------------------------------------------------------------- run loop
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        return self.simulator.run(until=until, max_events=max_events)

    def step(self) -> bool:
        return self.simulator.step()

    @property
    def partitioned(self) -> bool:
        return self.network.partitioned

    @property
    def drop_probability(self) -> float:
        return self.network.drop_probability

    @property
    def events_processed(self) -> int:
        return self.simulator.events_processed
