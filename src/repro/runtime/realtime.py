"""Real-clock runtime: the asyncio wall-clock backend.

:class:`RealtimeRuntime` runs the same sans-I/O replicas in wall-clock time:
timers become real sleeps, and message passing goes through in-process
queues with *optional artificial latency* drawn from the same
:class:`~repro.sim.latency.LatencyModel` the DES backend uses (so a
``TopologySpec`` means the same thing on both backends).

Design notes:

* The transport reuses :class:`~repro.sim.network.Network` verbatim — the
  network only needs ``now()``, ``schedule_call()`` and a seeded ``rng``
  from its scheduler, which this runtime provides.  Drop/duplicate/partition
  semantics, uplink serialisation, and byte accounting are therefore
  *identical* on both backends by construction.
* Ordering: rather than handing every callback to ``loop.call_at`` (whose
  same-deadline tie-break is unspecified), the runtime keeps its own
  ``(time, seq)`` heap — the exact ordering contract of the DES event queue
  — and arms a single asyncio timer for the earliest deadline.  Callbacks
  that are due fire in ``(time, seq)`` order, which is what makes a
  zero-latency realtime run confirm the same block sequence as a DES run.
* ``time_scale`` maps virtual seconds onto wall seconds (``0.1`` runs a
  10-second scenario in one wall second) so tests can exercise the backend
  quickly.  All timestamps exposed to protocol code stay in virtual seconds.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import random
from typing import Any, Callable, List, Optional, Tuple

from repro.runtime.base import Runtime
from repro.sim.latency import LatencyModel
from repro.sim.network import Network, NetworkConfig
from repro.sim.trace import TraceRecorder


class ScheduledCall:
    """A cancellable entry in the realtime scheduler's heap."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: Tuple) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class RealtimeRuntime(Runtime):
    """Wall-clock execution on an asyncio event loop."""

    kind = "realtime"

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        config: Optional[NetworkConfig] = None,
        trace: Optional[TraceRecorder] = None,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.rng = random.Random(seed)
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        self.time_scale = time_scale
        self.network = Network(self, latency=latency, config=config)
        self.stats = self.network.stats
        self.send = self.network.send
        self.multicast = self.network.multicast
        self.register = self.network.register
        self.unregister = self.network.unregister
        self.registered_nodes = self.network.registered_nodes
        self.set_partition = self.network.set_partition
        self.heal_partition = self.network.heal_partition
        self.set_latency_scale = self.network.set_latency_scale
        self.set_drop_probability = self.network.set_drop_probability
        self.set_link_filter = self.network.set_link_filter
        self.set_delivery_perturbation = self.network.set_delivery_perturbation
        self._heap: List[Tuple[float, int, ScheduledCall]] = []
        self._seq = itertools.count()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._start: float = 0.0
        self._armed: Optional[asyncio.TimerHandle] = None
        self._armed_for: Optional[float] = None
        self._finished: Optional[asyncio.Event] = None
        self._until: Optional[float] = None
        self._error: Optional[BaseException] = None
        self._events_processed = 0
        self._final_now = 0.0

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        if self._loop is None:
            return self._final_now
        return (self._loop.time() - self._start) / self.time_scale

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> ScheduledCall:
        if time < 0:
            raise ValueError(f"cannot schedule before the run starts ({time} < 0)")
        return self._push(time, callback, ())

    def schedule_after(self, delay: float, callback: Callable[[], None], label: str = "") -> ScheduledCall:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self._push(self.now() + delay, callback, ())

    def schedule_call(self, time: float, fn: Callable[..., None], a: Any, b: Any, c: Any) -> None:
        self._push(time, fn, (a, b, c))

    def _push(self, time: float, fn: Callable[..., None], args: Tuple) -> ScheduledCall:
        item = ScheduledCall(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, item.seq, item))
        if self._loop is not None and (self._armed_for is None or time < self._armed_for):
            self._arm()
        return item

    # ------------------------------------------------------------- internals
    def _arm(self) -> None:
        """(Re-)arm the single asyncio timer for the earliest heap deadline."""
        if self._armed is not None:
            self._armed.cancel()
            self._armed = None
            self._armed_for = None
        if self._loop is None or not self._heap:
            return
        head_time = self._heap[0][0]
        deadline = self._start + head_time * self.time_scale
        loop_now = self._loop.time()
        self._armed_for = head_time
        self._armed = self._loop.call_at(max(deadline, loop_now), self._drain_due)

    def _drain_due(self) -> None:
        """Fire every due entry in deterministic ``(time, seq)`` order."""
        self._armed = None
        self._armed_for = None
        heap = self._heap
        while heap and self._loop is not None:
            virtual_now = (self._loop.time() - self._start) / self.time_scale
            if heap[0][0] > virtual_now:
                break
            item = heapq.heappop(heap)[2]
            if item.cancelled:
                continue
            self._events_processed += 1
            try:
                item.fn(*item.args)
            except BaseException as exc:  # noqa: BLE001 - re-raised from run()
                # asyncio would swallow the exception into its logger and the
                # disarmed scheduler would idle to the horizon; instead end
                # the run and propagate from run(), like the DES backend.
                self._error = exc
                self._finish()
                return
        if self._loop is not None:
            if not heap and self._until is None:
                self._finish()  # open-ended run: stop once the work drains
            else:
                self._arm()

    # -------------------------------------------------------------- run loop
    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop for ``until`` virtual seconds of wall time.

        A callback exception ends the run and re-raises here, matching the
        DES backend's behaviour.
        """
        self._error = None
        loop = asyncio.new_event_loop()
        try:
            loop.run_until_complete(self._main(loop, until))
        finally:
            self._loop = None
            if self._armed is not None:
                self._armed.cancel()
                self._armed = None
                self._armed_for = None
            loop.close()
        if self._error is not None:
            error, self._error = self._error, None
            raise error
        return self._final_now

    async def _main(self, loop: asyncio.AbstractEventLoop, until: Optional[float]) -> None:
        self._loop = loop
        self._start = loop.time()
        self._finished = asyncio.Event()
        self._until = until
        self._arm()
        if until is not None:
            loop.call_at(self._start + until * self.time_scale, self._finish)
        elif not self._heap:
            self._finish()
        await self._finished.wait()
        elapsed = (loop.time() - self._start) / self.time_scale
        # Clamp to the horizon: the loop may overshoot by scheduling jitter,
        # but like the DES backend the run ends exactly at ``until``.
        self._final_now = elapsed if until is None else min(elapsed, until)

    def _finish(self) -> None:
        if self._finished is not None:
            self._finished.set()

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon(self._finish)

    @property
    def partitioned(self) -> bool:
        return self.network.partitioned

    @property
    def drop_probability(self) -> float:
        return self.network.drop_probability

    @property
    def events_processed(self) -> int:
        return self._events_processed
