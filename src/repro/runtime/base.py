"""The sans-I/O execution seam.

A :class:`Runtime` is everything protocol code may touch about the outside
world: a clock, a scheduler, and a message transport.  Nodes
(:class:`repro.sim.node.Node`), the Multi-BFT systems
(:mod:`repro.protocols`), fault injection (:mod:`repro.sim.faults`), and the
adversary subsystem all program against this interface and never against a
concrete backend, so the same replica state machines run unchanged on:

* :class:`~repro.runtime.des.DESRuntime` — the discrete-event simulator
  (virtual time, deterministic, fast);
* :class:`~repro.runtime.realtime.RealtimeRuntime` — an asyncio wall-clock
  backend (real sleeps, in-process queues, optional artificial latency);
* :class:`~repro.runtime.sharded.ShardedDESRuntime` — conservative-parallel
  DES across worker processes; protocol code runs inside the workers on
  per-shard :class:`~repro.runtime.sharded.ShardWorkerRuntime` instances;
* future backends (sockets, distributed) implementing the same surface.

The interface is deliberately small and callback-shaped — *sans-I/O*: the
protocol layer produces and consumes messages/timers and never blocks, so a
backend may drive it from a virtual-time loop, an event loop, or a thread.

Scheduling handles returned by :meth:`Runtime.schedule_at` /
:meth:`Runtime.schedule_after` expose ``cancel()`` and a ``cancelled``
attribute (the :class:`~repro.sim.events.Event` contract); backends supply
their own handle type.
"""

from __future__ import annotations

import random
from typing import Any, Callable, List, Optional, Sequence

from repro.sim.trace import TraceRecorder

#: the selectable execution backends (``SystemConfig.runtime`` values)
RUNTIME_KINDS = ("des", "realtime", "sharded")


class Runtime:
    """Abstract execution backend: clock + scheduler + transport.

    Concrete backends must provide the attributes ``rng`` (a seeded
    :class:`random.Random`), ``trace`` (a
    :class:`~repro.sim.trace.TraceRecorder`), and ``stats`` (a
    :class:`~repro.sim.network.NetworkStats`), plus every method below.
    """

    kind: str = "abstract"
    rng: random.Random
    trace: TraceRecorder

    # ------------------------------------------------------------------ time
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock since run start)."""
        raise NotImplementedError

    # ------------------------------------------------------------ scheduling
    def schedule_at(self, time: float, callback: Callable[[], None], label: str = "") -> Any:
        """Schedule ``callback`` at absolute time ``time``; returns a handle."""
        raise NotImplementedError

    def schedule_after(self, delay: float, callback: Callable[[], None], label: str = "") -> Any:
        """Schedule ``callback`` ``delay`` seconds from now; returns a handle."""
        raise NotImplementedError

    def schedule_call(self, time: float, fn: Callable[..., None], a: Any, b: Any, c: Any) -> None:
        """Hot path: schedule ``fn(a, b, c)`` with no cancellation handle."""
        raise NotImplementedError

    def spawn(self, callback: Callable[[], None], label: str = "") -> Any:
        """Run ``callback`` as soon as possible (next scheduler slot)."""
        return self.schedule_after(0.0, callback, label)

    def cancel(self, handle: Any) -> None:
        """Cancel a handle returned by ``schedule_at``/``schedule_after``."""
        handle.cancel()

    # ------------------------------------------------------------- transport
    def register(self, node_id: int, handler: Callable[[int, Any], None]) -> None:
        """Register the inbound-message handler for ``node_id``."""
        raise NotImplementedError

    def unregister(self, node_id: int) -> None:
        raise NotImplementedError

    def send(self, sender: int, receiver: int, message: Any, size_bytes: int = 0) -> None:
        """Send one message from ``sender`` to ``receiver``."""
        raise NotImplementedError

    def multicast(
        self, sender: int, receivers: Sequence[int], message: Any, size_bytes: int = 0
    ) -> None:
        """Send ``message`` to every receiver (one fused fan-out)."""
        raise NotImplementedError

    def registered_nodes(self) -> List[int]:
        """Registered node ids, ascending.  Callers must not mutate."""
        raise NotImplementedError

    # ------------------------------------------------------ network dynamics
    # The fault injector drives partitions / degradation / loss bursts through
    # the runtime so dynamics timelines arm identically on every backend.
    def set_partition(self, groups: Sequence[Sequence[int]]) -> None:
        raise NotImplementedError

    def heal_partition(self) -> None:
        raise NotImplementedError

    @property
    def partitioned(self) -> bool:
        raise NotImplementedError

    def set_latency_scale(self, factor: float) -> None:
        raise NotImplementedError

    def set_drop_probability(self, probability: float) -> None:
        raise NotImplementedError

    @property
    def drop_probability(self) -> float:
        raise NotImplementedError

    def set_link_filter(self, predicate: Optional[Callable[[int, int], bool]]) -> None:
        raise NotImplementedError

    # -------------------------------------------------------------- run loop
    def run(self, until: Optional[float] = None) -> float:
        """Drive the backend until ``until`` (seconds); returns the end time."""
        raise NotImplementedError

    def stop(self) -> None:
        """Request the run loop to stop after the current callback."""
        raise NotImplementedError

    @property
    def events_processed(self) -> int:
        raise NotImplementedError
