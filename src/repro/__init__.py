"""Reproduction of *Ladon: High-Performance Multi-BFT Consensus via Dynamic
Global Ordering* (EuroSys 2025).

Top-level convenience exports cover the most common entry points:

* :class:`repro.protocols.SystemConfig` / :func:`repro.protocols.build_system`
  — configure and run a Multi-BFT deployment on the simulator;
* :class:`repro.core.DynamicOrderer` and friends — the dynamic global
  ordering algorithm itself;
* :mod:`repro.bench` — the experiment harness regenerating every table and
  figure of the paper's evaluation.
"""

from repro.adversary import (
    AdversarySpec,
    DelayedVotes,
    Equivocation,
    RankManipulation,
    Silence,
)
from repro.core import (
    Block,
    DynamicOrderer,
    PredeterminedOrderer,
    DQBFTOrderer,
    causal_strength,
)
from repro.metrics import SafetyAuditReport, audit_system
from repro.protocols import SystemConfig, build_system, available_protocols
from repro.sim.faults import FaultConfig, StragglerSpec, CrashSpec

__version__ = "1.0.0"

__all__ = [
    "AdversarySpec",
    "Block",
    "DelayedVotes",
    "DynamicOrderer",
    "Equivocation",
    "RankManipulation",
    "SafetyAuditReport",
    "Silence",
    "audit_system",
    "PredeterminedOrderer",
    "DQBFTOrderer",
    "causal_strength",
    "SystemConfig",
    "build_system",
    "available_protocols",
    "FaultConfig",
    "StragglerSpec",
    "CrashSpec",
    "__version__",
]
