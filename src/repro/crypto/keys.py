"""Simulated public-key infrastructure.

Each replica owns a :class:`KeyPair`.  Private keys are random 32-byte
secrets; the "public key" is a digest of the secret plus the owner id.  A
signature over a message is ``HMAC(secret, message)``.  Verification requires
the verifier to know the *public* key only: the :class:`KeyStore` (our PKI)
maps public keys back to the secret internally, modelling the fact that in a
real deployment verification succeeds exactly when the signature was produced
with the matching private key.  Code outside this package never touches the
secret of another replica.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.crypto.hashing import digest_hex


@dataclass(frozen=True)
class PublicKey:
    """Public half of a key pair; safe to share with every replica."""

    owner: int
    fingerprint: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"pk({self.owner}:{self.fingerprint[:8]})"


@dataclass(frozen=True)
class PrivateKey:
    """Private half of a key pair; held only by its owner."""

    owner: int
    secret: bytes

    def public_key(self) -> PublicKey:
        return PublicKey(owner=self.owner, fingerprint=digest_hex(self.owner, self.secret))

    def hmac(self, payload: bytes) -> bytes:
        return hmac.new(self.secret, payload, hashlib.sha256).digest()


@dataclass(frozen=True)
class KeyPair:
    """A replica's signing key pair."""

    private: PrivateKey
    public: PublicKey

    @property
    def owner(self) -> int:
        return self.public.owner


def generate_keypair(owner: int, seed: Optional[bytes] = None) -> KeyPair:
    """Deterministically derive a key pair for ``owner``.

    ``seed`` lets a test fix the key material; by default the secret is
    derived from the owner id so that repeated runs are reproducible.
    """
    material = seed if seed is not None else f"ladon-repro-key-{owner}".encode()
    secret = hashlib.sha256(material).digest()
    private = PrivateKey(owner=owner, secret=secret)
    return KeyPair(private=private, public=private.public_key())


@dataclass
class KeyStore:
    """The system PKI: knows every replica's public key.

    The key store also retains the secrets so that :func:`repro.crypto.
    signatures.verify` can recompute the HMAC.  This mirrors the trust model
    of a signature scheme (verification needs only public information); the
    secrets are an implementation detail of the simulation and are never
    consulted by protocol code.
    """

    _pairs: Dict[int, KeyPair] = field(default_factory=dict)

    @classmethod
    def for_replicas(cls, n: int) -> "KeyStore":
        """Create a PKI with key pairs for replicas ``0..n-1``."""
        store = cls()
        for owner in range(n):
            store.register(generate_keypair(owner))
        return store

    def register(self, pair: KeyPair) -> None:
        if pair.owner in self._pairs:
            raise ValueError(f"replica {pair.owner} already registered")
        self._pairs[pair.owner] = pair

    def keypair(self, owner: int) -> KeyPair:
        return self._pairs[owner]

    def private_key(self, owner: int) -> PrivateKey:
        return self._pairs[owner].private

    def public_key(self, owner: int) -> PublicKey:
        return self._pairs[owner].public

    def owners(self) -> Iterable[int]:
        return self._pairs.keys()

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, owner: int) -> bool:
        return owner in self._pairs
