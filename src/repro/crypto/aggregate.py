"""Aggregate signatures and quorum certificates.

The paper (Sec. 3.2) uses Boneh–Gentry–Lynn–Shacham aggregate signatures: a
set of signatures, each possibly over a *different* message, is combined into
one short signature from which the verifier can check every (signer, message)
pair.  We model this with an :class:`AggregateSignature` that carries the
signer→message-digest mapping plus a binding MAC chain; verification re-checks
each constituent signature.  The wire size is modelled as a constant (one BLS
point) plus a small per-signer bitmap, matching the paper's claim that a rank
certificate adds <1% to a 2 MB block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Sequence, Tuple

from repro.crypto.hashing import digest
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import Signature, verify


@dataclass(frozen=True)
class AggregateSignature:
    """An aggregate of individual signatures, possibly over distinct messages.

    ``entries`` maps each signer id to the payload digest it signed;
    ``binding`` is the digest chaining all constituent MACs so that the
    aggregate cannot be re-assembled from a different signature set.
    """

    entries: Tuple[Tuple[int, bytes], ...]
    binding: bytes
    _macs: Tuple[Tuple[int, bytes], ...] = field(repr=False, default=())

    @property
    def signers(self) -> Tuple[int, ...]:
        return tuple(signer for signer, _ in self.entries)

    @property
    def size_bytes(self) -> int:
        """Modelled wire size: one 96-byte BLS point + 4-byte signer bitmap word."""
        return 96 + 4 * ((len(self.entries) + 31) // 32)

    def digest_for(self, signer: int) -> bytes:
        for owner, payload_digest in self.entries:
            if owner == signer:
                return payload_digest
        raise KeyError(f"signer {signer} not part of this aggregate")

    def __len__(self) -> int:
        return len(self.entries)


def aggregate(signatures: Sequence[Signature]) -> AggregateSignature:
    """Aggregate individual signatures into one :class:`AggregateSignature`.

    Mirrors ``agg({sigma_r}) -> sigma`` from the paper.  Signers must be
    distinct; each may have signed a different message.
    """
    if not signatures:
        raise ValueError("cannot aggregate an empty signature set")
    seen = set()
    entries = []
    macs = []
    for sig in sorted(signatures, key=lambda s: s.signer):
        if sig.signer in seen:
            raise ValueError(f"duplicate signer {sig.signer} in aggregate")
        seen.add(sig.signer)
        entries.append((sig.signer, sig.payload_digest))
        macs.append((sig.signer, sig.mac))
    binding = digest(tuple((signer, mac) for signer, mac in macs))
    return AggregateSignature(entries=tuple(entries), binding=binding, _macs=tuple(macs))


def verify_aggregate(
    keystore: KeyStore,
    agg_sig: AggregateSignature,
    payloads: Mapping[int, Sequence[Any]],
) -> bool:
    """Verify an aggregate signature.

    ``payloads`` maps each expected signer to the payload it is claimed to
    have signed (``verifyAgg((pk_r, m_r), sigma)`` in the paper).  Returns
    ``False`` if any signer is missing, any payload mismatches, or any
    constituent MAC fails.
    """
    if set(payloads.keys()) != set(agg_sig.signers):
        return False
    mac_map: Dict[int, bytes] = dict(agg_sig._macs)
    recomputed = []
    for signer in sorted(payloads.keys()):
        expected_digest = digest(*payloads[signer])
        try:
            claimed_digest = agg_sig.digest_for(signer)
        except KeyError:
            return False
        if claimed_digest != expected_digest:
            return False
        mac = mac_map.get(signer)
        if mac is None:
            return False
        sig = Signature(signer=signer, payload_digest=claimed_digest, mac=mac)
        if not verify(keystore, sig, *payloads[signer]):
            return False
        recomputed.append((signer, mac))
    return digest(tuple(recomputed)) == agg_sig.binding


@dataclass(frozen=True)
class QuorumCertificate:
    """A certificate that 2f+1 replicas vouched for a value.

    In Ladon-PBFT a QC over a rank is an aggregate of 2f+1 prepare-message
    signatures carrying that rank (Algorithm 2, line 25).  ``value`` records
    what was certified (e.g. the rank integer or a block digest); ``view``,
    ``round`` and ``instance`` locate it in the protocol.
    """

    value: Any
    view: int
    round: int
    instance: int
    aggregate_signature: AggregateSignature

    @property
    def signers(self) -> Tuple[int, ...]:
        return self.aggregate_signature.signers

    @property
    def size_bytes(self) -> int:
        return self.aggregate_signature.size_bytes + 16

    def quorum_size(self) -> int:
        return len(self.aggregate_signature)


def make_quorum_certificate(
    value: Any,
    view: int,
    round: int,
    instance: int,
    signatures: Sequence[Signature],
) -> QuorumCertificate:
    """Convenience constructor aggregating ``signatures`` into a QC."""
    return QuorumCertificate(
        value=value,
        view=view,
        round=round,
        instance=instance,
        aggregate_signature=aggregate(signatures),
    )


def quorum_threshold(n: int) -> int:
    """Return 2f+1 for an ``n = 3f+1`` system (rounded up for other n)."""
    if n <= 0:
        raise ValueError("n must be positive")
    f = (n - 1) // 3
    return 2 * f + 1


def fault_threshold(n: int) -> int:
    """Return f, the maximum number of Byzantine replicas tolerated."""
    if n <= 0:
        raise ValueError("n must be positive")
    return (n - 1) // 3
