"""Plain (non-aggregate) signatures used on every protocol message."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import digest
from repro.crypto.keys import KeyStore, PrivateKey


@dataclass(frozen=True)
class Signature:
    """A signature by ``signer`` over a canonical payload digest."""

    signer: int
    payload_digest: bytes
    mac: bytes

    def __post_init__(self) -> None:
        if len(self.payload_digest) != 32:
            raise ValueError("payload digest must be 32 bytes")

    @property
    def size_bytes(self) -> int:
        """Wire size used by the bandwidth model (≈ Ed25519 signature)."""
        return 64


def sign(private: PrivateKey, *payload: Any) -> Signature:
    """Sign the canonical encoding of ``payload`` with ``private``."""
    payload_digest = digest(*payload)
    return Signature(
        signer=private.owner,
        payload_digest=payload_digest,
        mac=private.hmac(payload_digest),
    )


def verify(keystore: KeyStore, signature: Signature, *payload: Any) -> bool:
    """Check that ``signature`` was produced by its claimed signer over payload."""
    if signature.signer not in keystore:
        return False
    expected_digest = digest(*payload)
    if expected_digest != signature.payload_digest:
        return False
    private = keystore.private_key(signature.signer)
    return private.hmac(expected_digest) == signature.mac


@dataclass(frozen=True)
class SignedMessage:
    """A message body paired with its sender's signature.

    ``body`` must be hashable/canonically-encodable (the message dataclasses
    in :mod:`repro.consensus.messages` expose a ``signing_payload`` tuple).
    """

    body: Any
    signature: Signature

    @property
    def signer(self) -> int:
        return self.signature.signer
