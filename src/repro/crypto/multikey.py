"""The K-private-key rank-difference encoding used by Ladon-opt (Sec. 5.3).

Standard multi-signatures require every signer to sign the *same* message,
but in Ladon each replica reports a potentially different highest rank.  The
paper's trick: give each replica K private keys; a replica whose highest rank
exceeds the current round's rank by ``k`` signs the (identical) rank message
with its ``k``-th key.  The leader recovers each replica's rank as
``rank + k`` from which key verified, and can aggregate the signatures because
the signed message is now identical across replicas.  Differences ≥ K are
clamped to the K-th key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Sequence, Tuple

from repro.crypto.aggregate import AggregateSignature, aggregate, verify_aggregate
from repro.crypto.keys import KeyPair, KeyStore, PrivateKey, generate_keypair
from repro.crypto.signatures import Signature, sign


DEFAULT_KEY_COUNT = 16


@dataclass
class MultiKeyPair:
    """K key pairs owned by one replica, indexed 0..K-1."""

    owner: int
    pairs: Tuple[KeyPair, ...]

    @property
    def key_count(self) -> int:
        return len(self.pairs)

    def key_for_difference(self, difference: int) -> KeyPair:
        """Select the key index for a rank difference, clamped to K-1."""
        if difference < 0:
            raise ValueError("rank difference must be non-negative")
        index = min(difference, self.key_count - 1)
        return self.pairs[index]


@dataclass(frozen=True)
class RankEncodedSignature:
    """A signature whose key index encodes the signer's rank difference."""

    signer: int
    key_index: int
    clamped: bool
    signature: Signature

    def decoded_rank(self, base_rank: int) -> int:
        """Recover the signer's reported rank from ``base_rank`` + key index.

        If ``clamped`` the true difference may be larger; callers treat the
        decoded value as a lower bound (the paper sizes K so this is rare).
        """
        return base_rank + self.key_index


class MultiKeyStore:
    """PKI for the multi-key scheme: K key pairs per replica.

    Internally backed by one :class:`KeyStore` per key index so that the
    existing sign/verify/aggregate machinery is reused unchanged.
    """

    def __init__(self, n: int, key_count: int = DEFAULT_KEY_COUNT) -> None:
        if key_count < 1:
            raise ValueError("key_count must be >= 1")
        self._key_count = key_count
        self._stores: Tuple[KeyStore, ...] = tuple(KeyStore() for _ in range(key_count))
        self._multi: Dict[int, MultiKeyPair] = {}
        for owner in range(n):
            pairs = []
            for k in range(key_count):
                pair = generate_keypair(owner, seed=f"ladon-opt-{owner}-{k}".encode())
                self._stores[k].register(pair)
                pairs.append(pair)
            self._multi[owner] = MultiKeyPair(owner=owner, pairs=tuple(pairs))

    @property
    def key_count(self) -> int:
        return self._key_count

    def multikey(self, owner: int) -> MultiKeyPair:
        return self._multi[owner]

    def store_for_index(self, key_index: int) -> KeyStore:
        return self._stores[key_index]

    def sign_rank(
        self,
        owner: int,
        base_rank: int,
        reported_rank: int,
        *payload: Any,
    ) -> RankEncodedSignature:
        """Sign ``payload`` with the key whose index encodes reported-base."""
        if reported_rank < base_rank:
            raise ValueError("reported rank cannot be below the base rank")
        difference = reported_rank - base_rank
        clamped = difference >= self._key_count
        pair = self._multi[owner].key_for_difference(difference)
        key_index = min(difference, self._key_count - 1)
        return RankEncodedSignature(
            signer=owner,
            key_index=key_index,
            clamped=clamped,
            signature=sign(pair.private, *payload),
        )

    def verify_rank(self, encoded: RankEncodedSignature, *payload: Any) -> bool:
        """Verify a rank-encoded signature against the key index it claims."""
        store = self._stores[encoded.key_index]
        from repro.crypto.signatures import verify as _verify

        return _verify(store, encoded.signature, *payload)

    def aggregate_rank_signatures(
        self, encoded: Sequence[RankEncodedSignature]
    ) -> "RankAggregate":
        """Aggregate rank-encoded signatures into one certificate.

        All constituent signatures are over the same payload (the point of
        the scheme), but may use different key indices; we keep the per-signer
        key index alongside a single aggregate per index group.
        """
        if not encoded:
            raise ValueError("cannot aggregate an empty set")
        by_index: Dict[int, list] = {}
        for item in encoded:
            by_index.setdefault(item.key_index, []).append(item.signature)
        aggregates = {index: aggregate(sigs) for index, sigs in by_index.items()}
        key_indices = {item.signer: item.key_index for item in encoded}
        return RankAggregate(key_indices=key_indices, aggregates=aggregates)

    def verify_rank_aggregate(
        self, rank_agg: "RankAggregate", payloads: Mapping[int, Sequence[Any]]
    ) -> bool:
        """Verify every constituent of a :class:`RankAggregate`."""
        if set(payloads.keys()) != set(rank_agg.key_indices.keys()):
            return False
        for index, agg_sig in rank_agg.aggregates.items():
            expected = {
                signer: payloads[signer]
                for signer, key_index in rank_agg.key_indices.items()
                if key_index == index
            }
            if set(expected.keys()) != set(agg_sig.signers):
                return False
            if not verify_aggregate(self._stores[index], agg_sig, expected):
                return False
        return True


@dataclass
class RankAggregate:
    """Aggregated rank-encoded signatures plus each signer's key index."""

    key_indices: Dict[int, int]
    aggregates: Dict[int, AggregateSignature] = field(default_factory=dict)

    @property
    def signers(self) -> Tuple[int, ...]:
        return tuple(sorted(self.key_indices.keys()))

    @property
    def size_bytes(self) -> int:
        """One aggregate point plus a per-signer key-index byte."""
        return 96 + len(self.key_indices)

    def max_key_index(self) -> int:
        return max(self.key_indices.values())

    def decoded_ranks(self, base_rank: int) -> Dict[int, int]:
        return {signer: base_rank + k for signer, k in self.key_indices.items()}
