"""Hashing helpers shared by the crypto and consensus layers."""

from __future__ import annotations

import hashlib
from typing import Any, Iterable


def _to_bytes(value: Any) -> bytes:
    """Canonically encode ``value`` into bytes for hashing.

    Supports the small set of types that flow through the protocols: bytes,
    strings, integers, None, and (nested) tuples/lists of those.  The encoding
    is unambiguous (length-prefixed, type-tagged) so that distinct structures
    never collide by construction.
    """
    if isinstance(value, bytes):
        return b"b" + len(value).to_bytes(4, "big") + value
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"s" + len(raw).to_bytes(4, "big") + raw
    if isinstance(value, bool):
        return b"B" + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        raw = str(value).encode("ascii")
        return b"i" + len(raw).to_bytes(4, "big") + raw
    if value is None:
        return b"n"
    if isinstance(value, (tuple, list)):
        parts = b"".join(_to_bytes(item) for item in value)
        return b"t" + len(parts).to_bytes(4, "big") + parts
    raise TypeError(f"cannot canonically encode {type(value)!r} for hashing")


def digest(*values: Any) -> bytes:
    """Return a 32-byte SHA-256 digest over the canonical encoding of values."""
    hasher = hashlib.sha256()
    for value in values:
        hasher.update(_to_bytes(value))
    return hasher.digest()


def digest_hex(*values: Any) -> str:
    """Return the hex form of :func:`digest` (handy for logs and block ids)."""
    return digest(*values).hex()


def merkle_root(leaves: Iterable[bytes]) -> bytes:
    """Compute a Merkle root over ``leaves``.

    Used to summarise a batch of transactions into a single digest, mirroring
    how real BFT implementations commit to a batch.  An empty batch hashes to
    the digest of the empty tuple.
    """
    level = [digest(leaf) for leaf in leaves]
    if not level:
        return digest(())
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level), 2):
            left = level[i]
            right = level[i + 1] if i + 1 < len(level) else left
            nxt.append(digest(left, right))
        level = nxt
    return level[0]
