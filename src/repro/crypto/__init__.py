"""Simulated cryptography substrate for the Ladon reproduction.

The Ladon paper uses Ed25519-style signatures for messages and BLS aggregate
signatures for rank certificates.  This package provides drop-in simulated
equivalents built on HMAC-SHA256: they offer the same *interfaces* and the
same security-relevant checks (only the owner of a private key can produce a
signature that verifies under the matching public key; aggregate signatures
bind a set of (signer, message) pairs), without bilinear pairings.  The cost
of each operation is modelled separately by :mod:`repro.metrics.resources`.
"""

from repro.crypto.hashing import digest, digest_hex
from repro.crypto.keys import KeyPair, KeyStore, PublicKey, PrivateKey
from repro.crypto.signatures import Signature, sign, verify, SignedMessage
from repro.crypto.aggregate import (
    AggregateSignature,
    aggregate,
    verify_aggregate,
    QuorumCertificate,
)
from repro.crypto.multikey import MultiKeyPair, MultiKeyStore, RankEncodedSignature

__all__ = [
    "digest",
    "digest_hex",
    "KeyPair",
    "KeyStore",
    "PublicKey",
    "PrivateKey",
    "Signature",
    "sign",
    "verify",
    "SignedMessage",
    "AggregateSignature",
    "aggregate",
    "verify_aggregate",
    "QuorumCertificate",
    "MultiKeyPair",
    "MultiKeyStore",
    "RankEncodedSignature",
]
