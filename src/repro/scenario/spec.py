"""The declarative scenario specification.

A :class:`ScenarioSpec` composes the three scenario layers:

* **topology** — where replicas run and what the links look like
  (:class:`~repro.scenario.topology.TopologySpec`);
* **dynamics** — what happens to the network and the nodes over time
  (:mod:`repro.scenario.dynamics` events, lowered onto the
  :class:`~repro.sim.faults.FaultInjector` timeline);
* **traffic** — how client load arrives and where the clients sit
  (:class:`TrafficSpec`, built on :mod:`repro.workload.generator` profiles).

``ScenarioSpec.preset("wan")`` / ``("lan")`` reproduce the paper's two fixed
environments byte-for-byte; everything else is open for composition.  Specs
are frozen dataclasses of hashable fields, so they serialise deterministically
into sweep cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, TYPE_CHECKING

from repro.adversary.spec import AdversarySpec
from repro.scenario.dynamics import DynamicsEvent, resolve_dynamics
from repro.scenario.topology import TopologySpec
from repro.sim.faults import FaultConfig
from repro.sim.latency import LatencyModel
from repro.sim.network import NetworkConfig
from repro.workload.generator import (
    SaturatedTraffic,
    TrafficProfile,
    TrafficStream,
    zipf_weights,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocols.base import SystemConfig


@dataclass(frozen=True)
class TrafficSpec:
    """Client traffic: arrival profile, instance skew, client placement.

    ``instance_zipf_s`` skews the aggregate arrival stream across consensus
    instances (0 = uniform split); ``client_placement`` is a weighted list of
    client regions — transactions submitted from a region take that region's
    one-way delay to reach each instance's leader, shifting their effective
    submission times (and hence measured end-to-end latency) accordingly.
    """

    profile: TrafficProfile = field(default_factory=SaturatedTraffic)
    instance_zipf_s: float = 0.0
    client_placement: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.instance_zipf_s < 0:
            raise ValueError("zipf exponent must be non-negative")
        for region, weight in self.client_placement:
            if weight <= 0:
                raise ValueError(f"client weight for region {region!r} must be positive")

    @property
    def is_default(self) -> bool:
        return (
            isinstance(self.profile, SaturatedTraffic)
            and self.instance_zipf_s == 0.0
            and not self.client_placement
        )

    def build_stream(
        self, num_instances: int, n: int, topology: TopologySpec
    ) -> Optional[TrafficStream]:
        """Build the per-run traffic stream; None = legacy saturated path."""
        if self.is_default:
            return None
        weights = (
            zipf_weights(num_instances, self.instance_zipf_s)
            if self.instance_zipf_s > 0
            else None
        )
        submit_delay = None
        if self.client_placement:
            assignment = topology.assignment(n)
            total_weight = sum(weight for _, weight in self.client_placement)
            submit_delay = []
            for instance_id in range(num_instances):
                # The initial leader of instance i is replica i mod n.
                leader_region = assignment[instance_id % n]
                mean = sum(
                    weight * topology.delay_between(region, leader_region)
                    for region, weight in self.client_placement
                ) / total_weight
                submit_delay.append(mean)
        return TrafficStream(
            self.profile, num_instances, weights=weights, submit_delay=submit_delay
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declaratively-configured experiment environment."""

    name: str
    description: str = ""
    topology: TopologySpec = field(default_factory=TopologySpec.wan)
    dynamics: Tuple[DynamicsEvent, ...] = ()
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    #: Byzantine behaviour active in this scenario (None = all honest)
    adversary: Optional[AdversarySpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenarios must be named")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ValueError("duplicate probability must be in [0, 1)")

    # -------------------------------------------------------------- presets
    @classmethod
    def preset(cls, environment: str) -> "ScenarioSpec":
        """The paper's fixed environments as thin scenario presets."""
        if environment == "wan":
            return cls(name="wan", description="paper 4-region WAN, saturated load")
        if environment == "lan":
            return cls(
                name="lan",
                description="paper single-datacenter LAN, saturated load",
                topology=TopologySpec.lan(),
            )
        raise ValueError("preset environment must be 'wan' or 'lan'")

    # ------------------------------------------------------------- builders
    @property
    def environment(self) -> str:
        """The legacy environment string this scenario maps onto."""
        return "lan" if self.topology.kind == "lan" else "wan"

    def build_latency(self, n: int) -> LatencyModel:
        return self.topology.build_latency(n)

    def network_config(self, n: int) -> NetworkConfig:
        return NetworkConfig(
            drop_probability=self.drop_probability,
            duplicate_probability=self.duplicate_probability,
            node_bandwidth=self.topology.node_bandwidth(n),
        )

    def fault_config(self, base: FaultConfig, n: int) -> FaultConfig:
        """Merge the dynamics timeline and adversary into ``base``."""
        config = base
        if self.dynamics:
            config = resolve_dynamics(self.dynamics, config, self.topology, n)
        if self.adversary is not None:
            self.adversary.validate_for(n)
            merged = (
                config.adversary.merge(self.adversary)
                if config.adversary is not None
                else self.adversary
            )
            config = replace(config, adversary=merged)
        return config

    def build_traffic_stream(self, num_instances: int, n: int) -> Optional[TrafficStream]:
        return self.traffic.build_stream(num_instances, n, self.topology)

    def system_config(self, **overrides) -> "SystemConfig":
        """Convenience: a :class:`SystemConfig` running this scenario."""
        from repro.protocols.base import SystemConfig

        overrides.setdefault("environment", self.environment)
        return SystemConfig(scenario=self, **overrides)

    def describe(self) -> str:
        parts = [self.topology.describe(), self.traffic.profile.describe()]
        if self.dynamics:
            parts.append(f"{len(self.dynamics)} timeline events")
        if self.drop_probability:
            parts.append(f"loss {self.drop_probability:.1%}")
        if self.duplicate_probability:
            parts.append(f"dup {self.duplicate_probability:.1%}")
        if self.adversary is not None:
            parts.append(f"adversary: {self.adversary.describe()}")
        return "; ".join(parts)

    def with_traffic(self, profile: TrafficProfile) -> "ScenarioSpec":
        """A copy of this scenario under a different arrival profile."""
        return replace(self, traffic=replace(self.traffic, profile=profile))
