"""Named scenario registry.

Built-in scenarios cover the axes the paper's evaluation leaves fixed:
partitions, regional outages, flash crowds, asymmetric links, lossy
transports, rolling churn, and diurnal load.  ``wan`` and ``lan`` are the
paper's two environments as thin presets.  Register custom scenarios with
:func:`register_scenario`; every named scenario runs through
``python -m repro.bench scenario run|sweep`` and the :class:`~repro.bench.
sweep.SweepRunner` grid machinery unchanged.
"""

from __future__ import annotations

from typing import Dict, List

from repro.adversary.registry import get_adversary
from repro.scenario.dynamics import (
    Churn,
    LinkDegradation,
    LossBurst,
    Partition,
    RegionOutage,
)
from repro.scenario.spec import ScenarioSpec, TrafficSpec
from repro.scenario.topology import TopologySpec
from repro.workload.generator import BurstyTraffic, DiurnalTraffic, RampTraffic

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry under ``spec.name``."""
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(available_scenarios())}"
        ) from None


def available_scenarios() -> List[str]:
    return sorted(_REGISTRY)


# ------------------------------------------------------------------ built-ins
register_scenario(ScenarioSpec.preset("wan"))
register_scenario(ScenarioSpec.preset("lan"))

register_scenario(
    ScenarioSpec(
        name="wan-partition",
        description=(
            "4-region WAN; the two Asia-Pacific regions are cut off from "
            "Europe/America at t=8s and the partition heals at t=16s"
        ),
        dynamics=(
            Partition(
                at=8.0,
                groups=(
                    ("eu-west-3", "us-east-1"),
                    ("ap-southeast-2", "ap-northeast-1"),
                ),
                heal_at=16.0,
            ),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="regional-outage",
        description=(
            "4-region WAN; every replica in Tokyo crashes at t=6s and "
            "recovers at t=14s, followed by a 2x congestion window while "
            "the region catches up"
        ),
        dynamics=(
            RegionOutage(region="ap-northeast-1", at=6.0, recover_at=14.0),
            LinkDegradation(at=14.0, until=20.0, factor=2.0),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="flash-crowd",
        description=(
            "4-region WAN; load spikes 20x in periodic bursts, arrivals are "
            "Zipf-skewed across instances, and the crowd submits from Europe"
        ),
        traffic=TrafficSpec(
            profile=BurstyTraffic(
                base_tps=10_000.0, burst_tps=200_000.0, period=10.0, burst_fraction=0.25
            ),
            instance_zipf_s=0.8,
            client_placement=(("eu-west-3", 3.0), ("us-east-1", 1.0)),
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="asymmetric-wan",
        description=(
            "3-region custom WAN with asymmetric link delays (a congested "
            "return path out of the edge region) and a bandwidth-starved "
            "edge uplink"
        ),
        topology=TopologySpec(
            kind="custom",
            regions=("core-eu", "core-us", "edge-sat"),
            links=(
                ("core-eu", "core-us", 0.040),
                ("core-us", "core-eu", 0.040),
                ("core-eu", "edge-sat", 0.120),
                ("edge-sat", "core-eu", 0.280),
                ("core-us", "edge-sat", 0.150),
                ("edge-sat", "core-us", 0.310),
            ),
            symmetric=False,
            bandwidth_by_region=(("edge-sat", 12_500_000.0),),  # 100 Mbps uplink
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="lossy-lan",
        description=(
            "single-datacenter LAN with 1% steady message loss, 2% duplicate "
            "delivery, and a 15% loss burst between t=5s and t=8s"
        ),
        topology=TopologySpec.lan(),
        drop_probability=0.01,
        duplicate_probability=0.02,
        dynamics=(LossBurst(at=5.0, until=8.0, drop_probability=0.15),),
    )
)

register_scenario(
    ScenarioSpec(
        name="churn",
        description=(
            "4-region WAN with rolling node churn: one replica down at a "
            "time, a new crash every 5s from t=4s"
        ),
        dynamics=(Churn(start=4.0, period=5.0, downtime=2.5, cycles=4),),
    )
)

register_scenario(
    ScenarioSpec(
        name="diurnal-wan",
        description=(
            "4-region WAN under a sinusoidal day/night load cycle (one "
            "60s 'day', +/-80% around the mean)"
        ),
        traffic=TrafficSpec(
            profile=DiurnalTraffic(mean_tps=60_000.0, amplitude=0.8, period=60.0)
        ),
    )
)

register_scenario(
    ScenarioSpec(
        name="ramp-up",
        description="4-region WAN; load ramps linearly from 1k to 120k tps over 20s",
        traffic=TrafficSpec(
            profile=RampTraffic(start_tps=1_000.0, end_tps=120_000.0, ramp_duration=20.0)
        ),
    )
)

# ----------------------------------------------------------- adversarial
# One scenario per catalog attack (see ``python -m repro.bench adversary
# list``), so sweeps can attribute metric shifts to a single behaviour.
# All of them keep the paper's 4-region WAN topology and saturated load;
# the only change versus the honest ``wan`` baseline is the adversary.
register_scenario(
    ScenarioSpec(
        name="byz-equivocation",
        description=(
            "4-region WAN; replica 3 equivocates on its instance: honest "
            "odd-id replicas receive a conflicting fork, stall on instance "
            "3, and the even-side quorum loses all slack (latency rises); "
            "safety holds (f < n/3) and the auditor confirms it"
        ),
        adversary=get_adversary("equivocation"),
    )
)

register_scenario(
    ScenarioSpec(
        name="byz-silence",
        description=(
            "4-region WAN; from t=4s replica 3 censors its proposals "
            "towards replica 0: the observer's instance-3 partial commits "
            "stop, its confirmed log wedges at the confirmation bar, and "
            "observed throughput collapses"
        ),
        adversary=get_adversary("silence-observer"),
    )
)

register_scenario(
    ScenarioSpec(
        name="byz-delayed-votes",
        description=(
            "4-region WAN; replica 3 holds every proposal and vote for 3s "
            "— just under the view-change timeout — so its instance crawls "
            "without a single view change firing"
        ),
        adversary=get_adversary("delayed-votes"),
    )
)

register_scenario(
    ScenarioSpec(
        name="byz-rank",
        description=(
            "4-region WAN; replica 3 is the paper's Byzantine straggler "
            "(Fig. 7): 1/10 rate, empty blocks, lowest-2f+1 rank reports"
        ),
        adversary=get_adversary("rank-manipulation"),
    )
)
