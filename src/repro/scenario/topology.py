"""Declarative deployment topologies.

A :class:`TopologySpec` replaces the hardcoded ``environment="wan"|"lan"``
string: it names the region set, the (possibly asymmetric) per-link one-way
delay matrix, the replica-to-region placement, and optional per-region uplink
bandwidth.  ``kind="wan"`` and ``kind="lan"`` reproduce the paper's two
environments exactly (they build the original :class:`~repro.sim.latency.
WanLatency` / :class:`~repro.sim.latency.LanLatency` models); ``kind=
"custom"`` builds a :class:`~repro.sim.latency.TopologyLatency` from the
spec's own matrix.

Specs are frozen, tuple-field dataclasses so they hash, compare, and repr
deterministically — sweep cache keys include them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.latency import (
    DEFAULT_WAN_REGIONS,
    INTRA_REGION_DELAY,
    LanLatency,
    LatencyModel,
    TopologyLatency,
    WanLatency,
    _WAN_ONE_WAY_DELAY,
)


@dataclass(frozen=True)
class TopologySpec:
    """A region/topology description.

    ``links`` holds one-way delays as ``(src_region, dst_region, seconds)``
    triples; with ``symmetric=True`` each triple also registers the reverse
    direction unless overridden by an explicit reverse triple.  ``placement``
    assigns replicas to regions explicitly (cycled when shorter than ``n``);
    when empty, replicas are placed round-robin across ``regions`` exactly as
    the paper distributes them.
    """

    kind: str = "wan"  # "wan" | "lan" | "custom"
    regions: Tuple[str, ...] = ()
    links: Tuple[Tuple[str, str, float], ...] = ()
    jitter: float = 0.005
    symmetric: bool = True
    placement: Tuple[str, ...] = ()
    default_delay: Optional[float] = None
    #: per-region uplink bandwidth overrides, bytes/second
    bandwidth_by_region: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("wan", "lan", "custom"):
            raise ValueError("topology kind must be 'wan', 'lan' or 'custom'")
        if self.kind == "custom" and not self.regions:
            raise ValueError("custom topologies must name their regions")
        if self.kind != "custom" and self.regions:
            # The presets keep their canonical region sets; a different set
            # would silently desynchronise placement from the preset delay
            # matrix and latency model.
            raise ValueError(
                f"kind={self.kind!r} uses its fixed region set; "
                "use kind='custom' for custom regions"
            )
        known = set(self.region_names())
        for src, dst, delay in self.links:
            if src not in known or dst not in known:
                raise ValueError(f"link {src!r}->{dst!r} references unknown region")
            if delay < 0:
                raise ValueError(f"negative delay on link {src!r}->{dst!r}")
        for region in self.placement:
            if region not in known:
                raise ValueError(f"placement references unknown region {region!r}")
        for region, bandwidth in self.bandwidth_by_region:
            if region not in known:
                raise ValueError(f"bandwidth override for unknown region {region!r}")
            if bandwidth <= 0:
                raise ValueError(f"bandwidth for region {region!r} must be positive")

    # -------------------------------------------------------------- presets
    @classmethod
    def wan(cls, jitter: float = 0.005) -> "TopologySpec":
        """The paper's four-region WAN."""
        return cls(kind="wan", jitter=jitter)

    @classmethod
    def lan(cls) -> "TopologySpec":
        """The paper's single-datacenter LAN."""
        return cls(kind="lan")

    # ------------------------------------------------------------- geometry
    def region_names(self) -> Tuple[str, ...]:
        if self.regions:
            return self.regions
        if self.kind == "lan":
            return ("lan",)
        return tuple(region.name for region in DEFAULT_WAN_REGIONS)

    def assignment(self, n: int) -> Tuple[str, ...]:
        """Region of each replica ``0..n-1``."""
        if n <= 0:
            raise ValueError("n must be positive")
        pool = self.placement if self.placement else self.region_names()
        return tuple(pool[i % len(pool)] for i in range(n))

    def delay_matrix(self) -> Dict[Tuple[str, str], float]:
        """The one-way delay matrix this spec describes (regions as keys)."""
        if self.kind == "lan":
            return {("lan", "lan"): INTRA_REGION_DELAY}
        if self.kind == "wan" and not self.links:
            return dict(_WAN_ONE_WAY_DELAY)
        matrix: Dict[Tuple[str, str], float] = {}
        for src, dst, delay in self.links:
            matrix[(src, dst)] = delay
            if self.symmetric:
                matrix.setdefault((dst, src), delay)
        for region in self.region_names():
            matrix.setdefault((region, region), INTRA_REGION_DELAY)
        return matrix

    def delay_between(self, region_a: str, region_b: str) -> float:
        """Base one-way delay ``region_a -> region_b`` (no jitter)."""
        matrix = self.delay_matrix()
        if (region_a, region_b) in matrix:
            return matrix[(region_a, region_b)]
        if self.symmetric and (region_b, region_a) in matrix:
            return matrix[(region_b, region_a)]
        if self.default_delay is not None:
            return self.default_delay
        raise KeyError(f"no delay registered for {region_a!r} -> {region_b!r}")

    # ------------------------------------------------------------- builders
    def build_latency(self, n: int) -> LatencyModel:
        if self.kind == "lan":
            return LanLatency()
        if self.kind == "wan" and not self.links and not self.placement:
            # Exactly the paper's model (preset equivalence relies on this).
            return WanLatency(n, jitter=self.jitter)
        return TopologyLatency(
            assignment=self.assignment(n),
            delays=self.delay_matrix(),
            jitter=self.jitter,
            symmetric=self.symmetric,
            default_delay=self.default_delay,
        )

    def node_bandwidth(self, n: int) -> Optional[Dict[int, float]]:
        """Per-replica uplink bandwidth overrides, or None when homogeneous."""
        if not self.bandwidth_by_region:
            return None
        by_region = dict(self.bandwidth_by_region)
        assignment = self.assignment(n)
        overrides = {
            replica: by_region[region]
            for replica, region in enumerate(assignment)
            if region in by_region
        }
        return overrides or None

    def replicas_in_region(self, region: str, n: int) -> Tuple[int, ...]:
        return tuple(
            replica for replica, name in enumerate(self.assignment(n)) if name == region
        )

    def describe(self) -> str:
        names = self.region_names()
        return f"{self.kind}[{', '.join(names)}]"
