"""Scenario engine: declarative topologies, network dynamics, and traffic.

The public surface:

* :class:`~repro.scenario.spec.ScenarioSpec` — one declaratively-configured
  experiment environment (topology + dynamics timeline + traffic);
* :class:`~repro.scenario.topology.TopologySpec` — region sets, delay
  matrices, placement, and per-region bandwidth;
* the dynamics events (:class:`Partition`, :class:`RegionOutage`,
  :class:`LinkDegradation`, :class:`LossBurst`, :class:`Churn`);
* the named-scenario registry (:func:`get_scenario`,
  :func:`register_scenario`, :func:`available_scenarios`).
"""

from repro.scenario.dynamics import (
    Churn,
    DynamicsEvent,
    LinkDegradation,
    LossBurst,
    Partition,
    RegionOutage,
    resolve_dynamics,
)
from repro.scenario.registry import (
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.scenario.spec import ScenarioSpec, TrafficSpec
from repro.scenario.topology import TopologySpec

__all__ = [
    "Churn",
    "DynamicsEvent",
    "LinkDegradation",
    "LossBurst",
    "Partition",
    "RegionOutage",
    "ScenarioSpec",
    "TopologySpec",
    "TrafficSpec",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "resolve_dynamics",
]
