"""Declarative network-dynamics timeline events.

These are the scenario-level (region-aware) counterparts of the concrete
specs in :mod:`repro.sim.faults`: a :class:`Partition` may group replicas by
region name, a :class:`RegionOutage` crashes every replica placed in a
region, and :class:`Churn` unrolls into a rolling crash/recover schedule.
:func:`resolve_dynamics` lowers a timeline into a concrete
:class:`~repro.sim.faults.FaultConfig` for a given deployment size and
placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.scenario.topology import TopologySpec
from repro.sim.faults import (
    CrashSpec,
    DegradationSpec,
    FaultConfig,
    LossBurstSpec,
    PartitionSpec,
)

#: a partition group member: a replica id or a region name
GroupMember = Union[int, str]


@dataclass(frozen=True)
class Partition:
    """Split the network at ``at``; heal at ``heal_at`` (None = permanent).

    Group members may be replica ids or region names; a region name expands
    to every replica placed there.  Replicas in no group are isolated.
    """

    at: float
    groups: Tuple[Tuple[GroupMember, ...], ...]
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("partition needs at least one group")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError("heal must come after the split")


@dataclass(frozen=True)
class RegionOutage:
    """Crash every replica in ``region`` at ``at``; recover them later."""

    region: str
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recovery must come after the outage")


@dataclass(frozen=True)
class LinkDegradation:
    """Scale all propagation delays by ``factor`` during ``[at, until)``."""

    at: float
    until: float
    factor: float = 4.0


@dataclass(frozen=True)
class LossBurst:
    """Raise the uniform loss probability to ``drop_probability`` during
    ``[at, until)``."""

    at: float
    until: float
    drop_probability: float = 0.2


@dataclass(frozen=True)
class Churn:
    """Rolling node churn: one replica down at a time.

    Cycle ``k`` crashes ``replicas[k % len(replicas)]`` at
    ``start + k * period`` and recovers it ``downtime`` seconds later.
    ``downtime < period`` keeps at most one replica down at once, so quorum
    is preserved for any ``n >= 4``.  ``replicas`` defaults to every replica
    except 0 (which stays up as a stable observer).
    """

    start: float = 2.0
    period: float = 5.0
    downtime: float = 2.5
    cycles: int = 4
    replicas: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.period <= 0 or self.downtime <= 0:
            raise ValueError("period and downtime must be positive")
        if self.downtime >= self.period:
            raise ValueError("downtime must be shorter than the churn period")
        if self.cycles <= 0:
            raise ValueError("need at least one churn cycle")


DynamicsEvent = Union[Partition, RegionOutage, LinkDegradation, LossBurst, Churn]


def _resolve_group(
    group: Tuple[GroupMember, ...], topology: TopologySpec, n: int
) -> Tuple[int, ...]:
    members: List[int] = []
    for member in group:
        if isinstance(member, str):
            replicas = topology.replicas_in_region(member, n)
            if not replicas:
                raise ValueError(f"partition group region {member!r} holds no replicas")
            members.extend(replicas)
        else:
            if not 0 <= member < n:
                raise ValueError(f"partition group replica {member} out of range")
            members.append(member)
    return tuple(sorted(set(members)))


def resolve_dynamics(
    events: Tuple[DynamicsEvent, ...],
    base: FaultConfig,
    topology: TopologySpec,
    n: int,
) -> FaultConfig:
    """Lower a declarative timeline onto ``base`` for an ``n``-replica run."""
    crashes: List[CrashSpec] = list(base.crashes)
    partitions: List[PartitionSpec] = list(base.partitions)
    degradations: List[DegradationSpec] = list(base.degradations)
    loss_bursts: List[LossBurstSpec] = list(base.loss_bursts)

    for event in events:
        if isinstance(event, Partition):
            groups = tuple(_resolve_group(group, topology, n) for group in event.groups)
            partitions.append(
                PartitionSpec(at=event.at, groups=groups, heal_at=event.heal_at)
            )
        elif isinstance(event, RegionOutage):
            replicas = topology.replicas_in_region(event.region, n)
            if not replicas:
                raise ValueError(f"outage region {event.region!r} holds no replicas")
            crashes.extend(
                CrashSpec(replica=replica, at=event.at, recover_at=event.recover_at)
                for replica in replicas
            )
        elif isinstance(event, LinkDegradation):
            degradations.append(
                DegradationSpec(at=event.at, until=event.until, factor=event.factor)
            )
        elif isinstance(event, LossBurst):
            loss_bursts.append(
                LossBurstSpec(
                    at=event.at, until=event.until, drop_probability=event.drop_probability
                )
            )
        elif isinstance(event, Churn):
            pool = event.replicas or tuple(range(1, n)) or (0,)
            for replica in pool:
                if not 0 <= replica < n:
                    raise ValueError(f"churn replica {replica} out of range")
            for cycle in range(event.cycles):
                replica = pool[cycle % len(pool)]
                at = event.start + cycle * event.period
                crashes.append(
                    CrashSpec(replica=replica, at=at, recover_at=at + event.downtime)
                )
        else:
            raise TypeError(f"unknown dynamics event {event!r}")

    return FaultConfig(
        stragglers=base.stragglers,
        crashes=tuple(crashes),
        partitions=tuple(partitions),
        degradations=tuple(degradations),
        loss_bursts=tuple(loss_bursts),
        adversary=base.adversary,
    )
