"""Ladon systems: Ladon-PBFT, Ladon-opt and Ladon-HotStuff.

All three use the dynamic global orderer (Algorithm 1) and the epoch
pacemaker; they differ only in the consensus-instance state machine.  A
replica configured as a *Byzantine* straggler additionally applies the
lowest-2f+1 rank manipulation in the instance it leads (Sec. 4.4).
"""

from __future__ import annotations

from typing import Any, Type

from repro.consensus.base import InstanceConfig
from repro.consensus.ladon_hotstuff import LadonHotStuffInstance
from repro.consensus.ladon_opt import LadonOptInstance
from repro.consensus.ladon_pbft import LadonPBFTInstance
from repro.core.ordering import DynamicOrderer, GlobalOrderer
from repro.protocols.base import MultiBFTReplica, MultiBFTSystem, ReplicaInstanceContext


class LadonReplica(MultiBFTReplica):
    """A replica running Ladon (dynamic ordering + epochs)."""

    uses_epochs = True
    instance_cls: Type = LadonPBFTInstance

    def build_orderer(self) -> GlobalOrderer:
        return DynamicOrderer(
            num_instances=self.config.m, retain_blocks=self.retain_history
        )

    def instance_class(self) -> Type:
        return self.instance_cls

    def build_instance(self, instance_id: int) -> Any:
        inst_config = InstanceConfig(
            instance_id=instance_id,
            replica_id=self.node_id,
            n=self.config.n,
            batch_size=self.config.batch_size,
            epoch_length=self.config.epoch_length,
            view_change_timeout=self.config.view_change_timeout,
            tx_payload_bytes=self.config.payload_bytes,
            compat_flags=self.config.compat_flags,
        )
        context = ReplicaInstanceContext(self, instance_id)
        # Only the instance this replica leads can be driven Byzantine; the
        # manipulation is a leader-side strategy.
        byzantine = (
            self.config.faults.is_byzantine(self.node_id)
            and inst_config.leader_for_view(0) == self.node_id
        )
        return self.instance_class()(
            inst_config,
            context,
            propose_timeout=self.config.propose_timeout,
            byzantine_rank_manipulation=byzantine,
        )


class LadonPBFTReplica(LadonReplica):
    instance_cls = LadonPBFTInstance


class LadonOptReplica(LadonReplica):
    instance_cls = LadonOptInstance


class LadonHotStuffReplica(LadonReplica):
    instance_cls = LadonHotStuffInstance


class LadonPBFTSystem(MultiBFTSystem):
    replica_class = LadonPBFTReplica


class LadonOptSystem(MultiBFTSystem):
    replica_class = LadonOptReplica


class LadonHotStuffSystem(MultiBFTSystem):
    replica_class = LadonHotStuffReplica
