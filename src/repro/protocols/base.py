"""Common scaffolding for the Multi-BFT systems.

A :class:`MultiBFTSystem` builds one :class:`MultiBFTReplica` per replica on
a shared execution :class:`~repro.runtime.base.Runtime` (selected by
``SystemConfig.runtime``: the discrete-event backend or the asyncio
wall-clock backend).  Each replica hosts ``m`` consensus-instance state
machines and one global orderer; the replica that leads an instance paces
its proposals to respect the total block rate (16 blocks/s in WAN, 32 in
LAN, as in the paper's evaluation), slows down if it is a straggler, and
leaves its blocks empty if so.

This module is sans-I/O: it never imports the simulator or the network —
all clock, timer, and transport access goes through the runtime seam.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type, TYPE_CHECKING

from repro.consensus.base import InstanceConfig, InstanceContext
from repro.consensus.checkpoint import CheckpointManager
from repro.consensus.messages import CheckpointMessage
from repro.core.block import Block
from repro.core.buckets import RotatingBuckets
from repro.core.epoch import EpochConfig, EpochPacemaker
from repro.core.ordering import ConfirmedBlock, DynamicOrderer, GlobalOrderer
from repro.core.predetermined import PredeterminedOrderer
from repro.core.rank import RankState
from repro.crypto.aggregate import quorum_threshold
from repro.metrics.auditor import SafetyAuditReport, audit_system
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.resources import ResourceModel
from repro.runtime import NetworkConfig, Runtime, RUNTIME_KINDS, build_runtime
from repro.sim.faults import FaultConfig, FaultInjector
from repro.sim.latency import LanLatency, LatencyModel, WanLatency
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder
from repro.workload.generator import TrafficStream
from repro.workload.transactions import Batch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.spec import ScenarioSpec


NO_EPOCH_MAX_RANK = 2**62


@dataclass
class SystemConfig:
    """Configuration of one experiment run."""

    protocol: str = "ladon-pbft"
    n: int = 16
    num_instances: Optional[int] = None  # defaults to n (one instance per replica)
    batch_size: int = 4096
    total_block_rate: float = 16.0  # blocks per second across all instances
    epoch_length: int = 64
    environment: str = "wan"  # "wan" or "lan" (thin presets; see ``scenario``)
    duration: float = 30.0
    warmup: float = 0.0
    seed: int = 0
    faults: FaultConfig = field(default_factory=FaultConfig)
    synthetic_workload: bool = True
    payload_bytes: int = 500
    view_change_timeout: float = 10.0
    propose_timeout: Optional[float] = None
    bin_width: float = 1.0
    trace: bool = False
    #: declarative scenario (topology + dynamics + traffic); None = the
    #: legacy ``environment`` preset path, which stays byte-identical
    scenario: Optional["ScenarioSpec"] = None
    #: execution backend: "des" (virtual time), "realtime" (wall clock), or
    #: "sharded" (conservative-parallel DES across worker processes)
    runtime: str = "des"
    #: realtime backend only: wall seconds per simulated second (0.1 runs a
    #: 10 s scenario in ~1 s of wall time); ignored by the DES backend
    realtime_timescale: float = 1.0
    #: sharded backend only: number of conservative-parallel DES workers
    shards: int = 1
    #: sharded backend only: replica -> shard placement ("affine" keeps
    #: regions whole so the lookahead is the WAN floor; "hash" ignores
    #: topology; see :mod:`repro.shard.partition`)
    shard_strategy: str = "affine"
    #: bounded-memory mode (default): every replica except the observing one
    #: keeps only compact commit/confirmation fingerprints (enough for the
    #: safety auditor) instead of full Block histories, so long runs are
    #: O(active window) in memory.  Set False to retain everything on every
    #: replica (debugging, cross-replica history inspection).
    bounded_memory: bool = True
    #: schedule-space fuzzing: a :class:`repro.fuzz.perturb.PerturbationSpec`
    #: applied to every message delivery (None = unperturbed schedule)
    perturbation: Optional[Any] = None
    #: opt-in historical-bug reproductions threaded into every instance's
    #: :class:`~repro.consensus.base.InstanceConfig` (regression corpus)
    compat_flags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ValueError("need at least 4 replicas")
        if self.environment not in ("wan", "lan"):
            raise ValueError("environment must be 'wan' or 'lan'")
        if self.total_block_rate <= 0:
            raise ValueError("total block rate must be positive")
        if self.runtime not in RUNTIME_KINDS:
            raise ValueError(f"runtime must be one of {RUNTIME_KINDS}")
        if self.realtime_timescale <= 0:
            raise ValueError("realtime_timescale must be positive")
        if self.shard_strategy not in ("affine", "hash"):
            raise ValueError("shard_strategy must be 'affine' or 'hash'")
        if self.runtime == "sharded":
            if self.shards < 2:
                raise ValueError("the sharded runtime needs shards >= 2")
            if self.shards > self.n:
                raise ValueError(
                    f"cannot spread n={self.n} replicas across {self.shards} shards"
                )
            if self.trace:
                raise ValueError(
                    "trace capture is single-process only; the sharded runtime "
                    "has no global event order to record"
                )
            if self.perturbation is not None:
                raise ValueError(
                    "schedule perturbation is single-process only; run perturbed "
                    "schedules on runtime='des'"
                )
        elif self.shards != 1:
            raise ValueError("shards > 1 requires runtime='sharded'")

    @property
    def m(self) -> int:
        return self.num_instances if self.num_instances is not None else self.n

    @property
    def proposal_interval(self) -> float:
        """Seconds between proposals of one (non-straggling) leader."""
        return self.m / self.total_block_rate

    def latency_model(self) -> LatencyModel:
        if self.scenario is not None:
            return self.scenario.build_latency(self.n)
        if self.environment == "lan":
            return LanLatency()
        return WanLatency(self.n)

    def network_config(self) -> NetworkConfig:
        if self.scenario is not None:
            return self.scenario.network_config(self.n)
        return NetworkConfig()

    def effective_faults(self) -> FaultConfig:
        """``faults`` with the scenario's dynamics timeline merged in."""
        if self.scenario is not None:
            return self.scenario.fault_config(self.faults, self.n)
        return self.faults

    def build_traffic_stream(self) -> Optional[TrafficStream]:
        if self.scenario is not None:
            return self.scenario.build_traffic_stream(self.m, self.n)
        return None


@dataclass
class SystemResult:
    """Everything a benchmark needs from one finished run."""

    metrics: RunMetrics
    confirmed: Tuple[ConfirmedBlock, ...]
    network_stats: Any
    resources: ResourceModel
    throughput_series: List[Tuple[float, float]]
    view_change_times: List[Tuple[float, int, int]]
    epoch_advancements: List[Tuple[float, int]]
    crash_log: List[Tuple[float, int, str]]
    #: unified fault/dynamics/attack timeline: (time, kind, detail)
    dynamics_log: List[Tuple[float, str, str]] = field(default_factory=list)
    #: safety/liveness audit of the honest replicas (always computed)
    audit: Optional[SafetyAuditReport] = None


class ReplicaInstanceContext(InstanceContext):
    """Routes one instance's callbacks through its hosting replica.

    The per-message callbacks (clock, send, multicast, deliver, crypto
    accounting) are bound straight to the replica's methods in ``__init__``
    so each call costs one Python frame, not two — these run once or more
    per protocol message and dominate the instance-side overhead.
    """

    def __init__(self, replica: "MultiBFTReplica", instance_id: int) -> None:
        self.replica = replica
        self.instance_id = instance_id
        # Hot-path bindings (shadow the methods below per instance).
        self.now = replica.now
        self.send = replica.send_protocol_message
        self.multicast = replica.multicast_protocol_message
        self.deliver = replica.on_partial_commit
        self.record_crypto = replica.record_crypto_op

    def now(self) -> float:  # shadowed per-instance in __init__
        return self.replica.now()

    def send(self, dest: int, message: Any, size_bytes: int) -> None:
        self.replica.send_protocol_message(dest, message, size_bytes)

    def multicast(self, message: Any, size_bytes: int) -> None:
        self.replica.multicast_protocol_message(message, size_bytes)

    def deliver(self, block: Block) -> None:
        self.replica.on_partial_commit(block)

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        self.replica.set_timer(f"inst{self.instance_id}:{name}", delay, callback)

    def cancel_timer(self, name: str) -> None:
        self.replica.cancel_timer(f"inst{self.instance_id}:{name}")

    def record_crypto(self, operation: str, count: int = 1) -> None:
        self.replica.record_crypto_op(operation, count)

    def current_rank(self) -> int:
        return self.replica.rank_state.rank

    def observe_rank(self, rank: int, certificate: Any = None) -> None:
        self.replica.rank_state.observe(rank, certificate)

    def max_rank(self) -> int:
        return self.replica.current_max_rank()

    def min_rank(self) -> int:
        return self.replica.current_min_rank()

    def current_epoch(self) -> int:
        return self.replica.current_epoch()


class MultiBFTReplica(Node):
    """One replica of a Multi-BFT system.

    Subclasses select the consensus-instance class and the global orderer and
    may add protocol-specific behaviour (epochs for Ladon, the ordering
    instance for DQBFT).
    """

    #: set by subclasses
    uses_epochs: bool = False

    #: set by the system when the scenario supplies a non-saturated traffic
    #: profile; None keeps the legacy saturated-workload batch cutting
    traffic_stream: Optional[TrafficStream] = None

    def __init__(
        self,
        node_id: int,
        runtime: Runtime,
        config: SystemConfig,
        resources: ResourceModel,
        retain_history: bool = True,
    ) -> None:
        super().__init__(node_id, runtime)
        self.config = config
        self.resources = resources
        #: False on non-observer replicas in bounded-memory mode: orderer,
        #: instances, and metrics keep compact fingerprints only
        self.retain_history = retain_history
        #: hot-path binding: per-message accounting avoids a dict lookup.
        #: Bound lazily on first use so the per-replica usage records are
        #: created in first-activity order (the aggregation in Table 1 sums
        #: floats in that order, and it must stay reproducible).
        self._usage = None
        #: trace recorder from the runtime seam (disabled by default); the
        #: confirmation path records into it so runs have a replayable,
        #: digestable event log (see tests/test_determinism.py)
        self._trace = runtime.trace
        self._message_handling_cost = resources.cost_model.message_handling
        self._per_byte_cost = resources.cost_model.per_byte
        self._crypto_costs = resources.cost_table()
        self._verify_cost = self._crypto_costs["verify"]
        #: multicast fan-out split (below/above own id), cached per receiver
        #: list identity — recomputed only when registration changes
        self._mc_receivers: Any = None
        self._mc_below: List[int] = []
        self._mc_above: List[int] = []
        self.rank_state = RankState()
        self.quorum = quorum_threshold(config.n)
        self.metrics = MetricsCollector(
            bin_width=config.bin_width, retain_confirmations=retain_history
        )
        self.orderer: GlobalOrderer = self.build_orderer()
        self.instances: Dict[int, Any] = {}
        self.view_change_log: List[Tuple[float, int, int]] = []
        self.checkpoints = CheckpointManager(node_id, self.quorum)
        self.pacemaker: Optional[EpochPacemaker] = None
        if self.uses_epochs:
            self.pacemaker = EpochPacemaker(
                EpochConfig(length=config.epoch_length, num_instances=config.m),
                quorum=self.quorum,
            )
        self._checkpoint_sent_for: set = set()
        self._last_checkpoint: Optional[CheckpointMessage] = None
        self._build_instances()

    # ------------------------------------------------------------- factories
    def build_orderer(self) -> GlobalOrderer:
        raise NotImplementedError

    def instance_class(self) -> Type:
        raise NotImplementedError

    def build_instance(self, instance_id: int) -> Any:
        """Construct the state machine for ``instance_id`` at this replica."""
        inst_config = InstanceConfig(
            instance_id=instance_id,
            replica_id=self.node_id,
            n=self.config.n,
            batch_size=self.config.batch_size,
            epoch_length=self.config.epoch_length,
            view_change_timeout=self.config.view_change_timeout,
            tx_payload_bytes=self.config.payload_bytes,
            compat_flags=self.config.compat_flags,
        )
        context = ReplicaInstanceContext(self, instance_id)
        return self.instance_class()(
            inst_config, context, propose_timeout=self.config.propose_timeout
        )

    def _build_instances(self) -> None:
        for instance_id in range(self.config.m):
            instance = self.build_instance(instance_id)
            instance.on_view_installed = (
                lambda view, iid=instance_id: self._on_view_installed(iid, view)
            )
            instance.retain_blocks = self.retain_history
            self.instances[instance_id] = instance
        self._build_route()

    def _build_route(self) -> None:
        """Build the (instance, message type) -> handler fast-dispatch table.

        One dict hit replaces instance lookup + ``instance.on_message`` +
        the instance's own type dispatch on the per-delivery hot path.
        Messages that miss the table (checkpoints, subclass extras, unknown
        instances) fall back to the slow path, which preserves the exact
        legacy semantics.  Instances inside a system are never ``stop()``-ed
        (the flag exists for direct unit-test use), so bypassing the
        instance-level ``stopped`` gate is sound here.
        """
        route: Dict[Tuple[int, type], Tuple[Callable[[int, Any], None], bool]] = {}
        slots = max(self.instances.keys(), default=-1) + 1
        by_cls: Dict[type, List[Optional[Tuple[Callable[[int, Any], None], bool]]]] = {}
        for instance_id, instance in self.instances.items():
            handlers = getattr(instance, "_handlers", None)
            if not handlers:
                continue
            self_accounting = getattr(instance, "SELF_ACCOUNTING", frozenset())
            for message_cls, handler in handlers.items():
                entry = (handler, message_cls not in self_accounting)
                route[(instance_id, message_cls)] = entry
                per_instance = by_cls.get(message_cls)
                if per_instance is None:
                    per_instance = by_cls[message_cls] = [None] * slots
                per_instance[instance_id] = entry
        self._route = route
        #: class -> per-instance entry list: the delivery fast path pays one
        #: pointer-hash dict get plus a list index (no tuple allocation)
        self._route_cls = by_cls

    # ------------------------------------------------------------------ epoch
    def current_epoch(self) -> int:
        return self.pacemaker.current_epoch if self.pacemaker else 0

    def current_max_rank(self) -> int:
        return self.pacemaker.max_rank() if self.pacemaker else NO_EPOCH_MAX_RANK

    def current_min_rank(self) -> int:
        return self.pacemaker.min_rank() if self.pacemaker else 0

    # ------------------------------------------------------------------ start
    def paced_instance_ids(self) -> List[int]:
        """Instance ids driven by the standard batch-proposal pacing.

        Subclasses exclude special instances (e.g. DQBFT's ordering instance)
        that are paced by their own logic.
        """
        return list(self.instances.keys())

    def start(self) -> None:
        """Start instances and, where this replica leads, the proposal pacing."""
        for instance in self.instances.values():
            if hasattr(instance, "start"):
                instance.start()
        interval = self.config.proposal_interval
        for instance_id in self.paced_instance_ids():
            instance = self.instances[instance_id]
            if instance.leader != self.node_id:
                continue
            # Stagger instances across the proposal interval so the aggregate
            # block rate is smooth rather than bursty.
            offset = (instance_id / max(1, self.config.m)) * interval
            self.set_timer(
                f"pace:{instance_id}",
                offset + 1e-6,
                lambda iid=instance_id: self._proposal_tick(iid),
            )

    # --------------------------------------------------------------- proposing
    def _straggler_factor(self) -> float:
        return self.config.faults.slowdown_of(self.node_id)

    def _is_straggler(self) -> bool:
        return self.config.faults.is_straggler(self.node_id)

    def _proposal_tick(self, instance_id: int) -> None:
        if self.crashed:
            return
        instance = self.instances[instance_id]
        interval = self.config.proposal_interval * self._straggler_factor()
        if instance.leader != self.node_id:
            return  # lost leadership through a view change
        if instance.ready_to_propose():
            batch = self.make_batch(instance_id)
            instance.propose(batch, self.now())
            self.set_timer(
                f"pace:{instance_id}",
                interval,
                lambda iid=instance_id: self._proposal_tick(iid),
            )
        else:
            # Not ready (previous round still in flight, epoch boundary, ...):
            # retry shortly without consuming a full proposal slot.
            retry = max(0.02, 0.05 * self.config.proposal_interval)
            self.set_timer(
                f"pace:{instance_id}",
                retry,
                lambda iid=instance_id: self._proposal_tick(iid),
            )

    def make_batch(self, instance_id: int) -> Batch:
        """Cut the batch the leader proposes for ``instance_id``.

        Stragglers propose empty blocks (they "do not include transactions in
        their blocks", Sec. 6.1); everyone else cuts a full synthetic batch
        under the saturated open-loop workload.
        """
        if self._is_straggler():
            return Batch.empty()
        if self.traffic_stream is not None:
            count, mean_at = self.traffic_stream.take(
                instance_id, self.now(), self.config.batch_size
            )
            if count == 0:
                return Batch.empty()
            return Batch.synthetic(
                count, submitted_at=mean_at, payload_bytes=self.config.payload_bytes
            )
        if self.config.synthetic_workload:
            # Under the saturated open-loop workload, the transactions in a
            # batch arrived uniformly during the interval since the previous
            # cut, so their mean submission time is half an interval ago.
            queueing = self.config.proposal_interval / 2.0
            return Batch.synthetic(
                self.config.batch_size,
                submitted_at=max(0.0, self.now() - queueing),
                payload_bytes=self.config.payload_bytes,
            )
        return self.cut_real_batch(instance_id)

    def cut_real_batch(self, instance_id: int) -> Batch:
        """Hook for systems wired to a real transaction workload."""
        return Batch.empty()

    # ----------------------------------------------------------------- faults
    def on_recover(self) -> None:
        """Re-arm proposal pacing after a crash–recover cycle.

        ``crash()`` drops every timer; the replica's *state* (logs, votes,
        ordering progress) survives, but without this hook a recovered
        leader would never propose again.  View-change timers need no
        resurrection here: they re-arm lazily from the message flow the
        replica sees once it rejoins.
        """
        for instance_id in self.paced_instance_ids():
            instance = self.instances[instance_id]
            if instance.leader != self.node_id:
                continue
            if not self.has_timer(f"pace:{instance_id}"):
                self.set_timer(
                    f"pace:{instance_id}",
                    0.01,
                    lambda iid=instance_id: self._proposal_tick(iid),
                )

    # --------------------------------------------------------------- messaging
    def record_crypto_op(self, operation: str, count: int = 1) -> None:
        """Hot-path crypto accounting: one frame, no registry indirection.

        Accumulates into the same lazily-created per-replica usage record as
        message accounting, so Table 1's first-activity creation order (and
        its float-sum order) is unchanged.
        """
        usage = self._usage
        if usage is None:
            usage = self._usage = self.resources.usage(self.node_id)
        ops = usage.crypto_ops
        ops[operation] = ops.get(operation, 0) + count
        usage.cpu_seconds += self._crypto_costs[operation] * count

    def send_protocol_message(self, dest: int, message: Any, size_bytes: int) -> None:
        usage = self._usage
        if usage is None:
            usage = self._usage = self.resources.usage(self.node_id)
        usage.bytes_sent += size_bytes
        usage.cpu_seconds += self._per_byte_cost * size_bytes
        if dest == self.node_id:
            # Loopback without a network hop.
            self._dispatch(self.node_id, message)
            return
        self.send(dest, message, size_bytes)

    def _multicast_split(self, receivers) -> None:
        """Recompute the below/above-own-id fan-out split (registration changed)."""
        node_id = self.node_id
        self._mc_below = [r for r in receivers if r < node_id]
        self._mc_above = [r for r in receivers if r > node_id]
        self._mc_receivers = receivers

    def multicast_protocol_message(self, message: Any, size_bytes: int) -> None:
        receivers = self.runtime.registered_nodes()
        if receivers is not self._mc_receivers:
            self._multicast_split(receivers)
        sent = len(receivers) - 1
        sent_bytes = size_bytes * sent if sent > 0 else 0
        usage = self._usage
        if usage is None:
            usage = self._usage = self.resources.usage(self.node_id)
        usage.bytes_sent += sent_bytes
        usage.cpu_seconds += self._per_byte_cost * sent_bytes
        # Fan out in ascending id order with the local dispatch in our own
        # sorted slot, exactly as a per-receiver loop would: protocol
        # reactions to our own message interleave with the remaining sends
        # the same way they always did.
        if self._mc_below:
            self.multicast(self._mc_below, message, size_bytes)
        self._dispatch(self.node_id, message)
        if self._mc_above:
            self.multicast(self._mc_above, message, size_bytes)

    def _receive(self, sender: int, message: Any) -> None:
        """Transport delivery entry point: accounting + dispatch, one frame.

        Overrides :meth:`Node._receive` to fold the crashed check, the
        per-message resource accounting, and the route-table dispatch into a
        single function — this runs once per delivered message and is the
        hottest replica-side path.
        """
        if self.crashed:
            return
        usage = self._usage
        if usage is None:
            usage = self._usage = self.resources.usage(self.node_id)
        usage.messages_handled += 1
        try:
            size = message.size_bytes
            instance_id = message.instance
        except AttributeError:  # foreign payloads (tests, custom hooks)
            size = getattr(message, "size_bytes", 0)
            instance_id = -1
        usage.cpu_seconds += (
            self._message_handling_cost + self._per_byte_cost * size
        )
        per_instance = self._route_cls.get(message.__class__)
        if per_instance is not None and 0 <= instance_id < len(per_instance):
            entry = per_instance[instance_id]
            if entry is not None:
                handler, entry_verify = entry
                if entry_verify:
                    # Entry "verify" for the routed protocol message,
                    # inlined (the instances account it at their dispatch
                    # site; this IS that site on the fast path).  Same
                    # accumulation order as before: message-handling cost,
                    # then verification cost.
                    ops = usage.crypto_ops
                    ops["verify"] = ops.get("verify", 0) + 1
                    usage.cpu_seconds += self._verify_cost
                handler(sender, message)
                return
        self._dispatch_slow(sender, message)

    def on_message(self, sender: int, message: Any) -> None:
        usage = self._usage
        if usage is None:
            usage = self._usage = self.resources.usage(self.node_id)
        usage.messages_handled += 1
        usage.cpu_seconds += (
            self._message_handling_cost
            + self._per_byte_cost * getattr(message, "size_bytes", 0)
        )
        self._dispatch(sender, message)

    def _dispatch(self, sender: int, message: Any) -> None:
        entry = self._route.get((getattr(message, "instance", None), message.__class__))
        if entry is not None:
            handler, entry_verify = entry
            if entry_verify:
                self.record_crypto_op("verify")
            handler(sender, message)
            return
        self._dispatch_slow(sender, message)

    def _dispatch_slow(self, sender: int, message: Any) -> None:
        """Fallback dispatch: checkpoints, extra messages, unknown instances."""
        if isinstance(message, CheckpointMessage):
            self._on_checkpoint(sender, message)
            return
        instance = self.instances.get(getattr(message, "instance", None))
        if instance is None:
            self.handle_extra_message(sender, message)
            return
        instance.on_message(sender, message)

    def handle_extra_message(self, sender: int, message: Any) -> None:
        """Hook for subclass-specific messages (e.g. DQBFT sequencing)."""

    # ------------------------------------------------------------ commit path
    def on_partial_commit(self, block: Block) -> None:
        self.metrics.record_partial_commit()
        if self.pacemaker is not None:
            self.pacemaker.observe_commit(block.instance, block.rank, self.now())
        newly = self.feed_orderer(block)
        if newly:
            self.metrics.record_confirmations(newly)
            if self._trace.enabled:
                for confirmed in newly:
                    confirmed_block = confirmed.block
                    self._trace.record(
                        confirmed.confirmed_at,
                        "confirm",
                        self.node_id,
                        instance=confirmed_block.instance,
                        round=confirmed_block.round,
                        rank=confirmed_block.rank,
                        digest=confirmed_block.payload_digest,
                    )
            self.on_confirmations(newly)
        if self.pacemaker is not None:
            self._maybe_checkpoint()

    def feed_orderer(self, block: Block) -> List[ConfirmedBlock]:
        return self.orderer.add_partially_committed(block, self.now())

    def on_confirmations(self, confirmed: List[ConfirmedBlock]) -> None:
        """Hook: subclasses may react to newly confirmed blocks."""

    # ------------------------------------------------------------- checkpoints
    def _maybe_checkpoint(self) -> None:
        epoch = self.pacemaker.current_epoch
        if not self.pacemaker.epoch_complete(epoch):
            return
        if epoch in self._checkpoint_sent_for:
            return
        self._checkpoint_sent_for.add(epoch)
        message = self.checkpoints.build_checkpoint(epoch, self.orderer.confirmed_count)
        self._last_checkpoint = message
        self.record_crypto_op("sign")
        self.multicast_protocol_message(message, message.size_bytes)

    def _on_checkpoint(self, sender: int, message: CheckpointMessage) -> None:
        self.record_crypto_op("verify")
        became_stable = self.checkpoints.on_checkpoint(message)
        if self.pacemaker is None:
            return
        self.pacemaker.observe_checkpoint(message.epoch, sender)
        if became_stable or self.checkpoints.is_stable(message.epoch):
            advanced = self.pacemaker.try_advance(self.now())
            if advanced:
                self._on_epoch_advanced(self.pacemaker.current_epoch)

    def _on_epoch_advanced(self, new_epoch: int) -> None:
        for instance in self.instances.values():
            if hasattr(instance, "begin_epoch"):
                instance.begin_epoch(new_epoch)
        # Checkpoint vote state for long-settled epochs is dead: the cluster
        # advanced past them, so their quorums can never matter again.  The
        # previous epoch is kept for the view-change re-broadcast rule.
        self.checkpoints.prune_below(new_epoch - 1)
        self._checkpoint_sent_for = {
            e for e in self._checkpoint_sent_for if e >= new_epoch - 1
        }

    # ------------------------------------------------------------ view change
    def _on_view_installed(self, instance_id: int, view: int) -> None:
        self.view_change_log.append((self.now(), instance_id, view))
        # PBFT view-change messages carry the sender's latest (stable)
        # checkpoint; we model that as a re-broadcast whenever some replica
        # may still lack our vote, so checkpoint quorums lost to message
        # suppression recover with the view change instead of wedging the
        # epoch forever.  Votes are idempotent, so in healthy runs (all n
        # checkpoint votes seen) this is a no-op; checkpoints the cluster
        # has advanced more than one epoch past are stale (the missing
        # voters clearly didn't gate progress) and are never re-sent.
        if (
            self._last_checkpoint is not None
            and self.checkpoints.votes(self._last_checkpoint.epoch) < self.config.n
            and self.current_epoch() <= self._last_checkpoint.epoch + 1
        ):
            self.multicast_protocol_message(
                self._last_checkpoint, self._last_checkpoint.size_bytes
            )
        instance = self.instances[instance_id]
        if instance.leader == self.node_id and not self.has_timer(f"pace:{instance_id}"):
            self.set_timer(
                f"pace:{instance_id}",
                0.01,
                lambda iid=instance_id: self._proposal_tick(iid),
            )


class MultiBFTSystem:
    """Builds and runs one Multi-BFT deployment on an execution runtime."""

    replica_class: Type[MultiBFTReplica] = MultiBFTReplica

    def __init__(
        self,
        config: SystemConfig,
        *,
        runtime: Optional[Runtime] = None,
        local_replicas: Optional[Sequence[int]] = None,
    ) -> None:
        """Build the deployment.

        The keyword-only parameters exist for the sharded backend's worker
        processes: ``runtime`` injects a pre-built
        :class:`~repro.runtime.sharded.ShardWorkerRuntime` and
        ``local_replicas`` restricts construction to the shard's slice of
        the replica set (fault/adversary arming then skips non-local
        replicas instead of failing).  Default single-process behaviour is
        unchanged.
        """
        effective_faults = config.effective_faults()
        if effective_faults is not config.faults:
            # Replicas read straggler/byzantine behaviour straight from
            # ``config.faults``; fold the scenario's merged fault view back
            # in so an adversary declared by the scenario acts exactly like
            # one declared on the config.
            config = replace(config, faults=effective_faults)
        self.config = config
        if runtime is None:
            if config.runtime == "sharded":
                raise ValueError(
                    "a sharded system cannot be built directly on one "
                    "process; build it via "
                    "repro.protocols.registry.build_system(config)"
                )
            self.trace = TraceRecorder(enabled=config.trace)
            self.runtime: Runtime = build_runtime(
                config.runtime,
                seed=config.seed,
                latency=config.latency_model(),
                network_config=config.network_config(),
                trace=self.trace,
                time_scale=config.realtime_timescale,
            )
        else:
            self.runtime = runtime
            self.trace = runtime.trace
        self.resources = ResourceModel()
        self.effective_faults = effective_faults
        self.traffic_stream = config.build_traffic_stream()
        # The observer is fixed by the fault config, so it is known before
        # the replicas exist; in bounded-memory mode every *other* replica
        # keeps compact histories only (see SystemConfig.bounded_memory).
        self._observer_id = self.observer_id()
        self._local_only = local_replicas is not None
        replica_ids = (
            range(config.n) if local_replicas is None else sorted(local_replicas)
        )
        self.replicas: Dict[int, MultiBFTReplica] = {}
        for replica_id in replica_ids:
            replica = self.build_replica(replica_id)
            if self.traffic_stream is not None:
                replica.traffic_stream = self.traffic_stream
            self.replicas[replica_id] = replica
        self.fault_injector = FaultInjector(
            self.runtime,
            self.replicas,
            self.effective_faults,
            network=self.runtime,
            local_only=self._local_only,
            total_nodes=config.n,
        )
        #: the armed perturbation applicator (``.applied`` holds the
        #: effective decision vector after the run); None when unperturbed
        self.perturbation = None
        if config.perturbation is not None:
            # Lazy import: the sim/protocol layers never depend on the fuzz
            # package unless a perturbed run actually asks for it.
            from repro.fuzz.perturb import SchedulePerturbation

            set_perturbation = getattr(
                self.runtime, "set_delivery_perturbation", None
            )
            if set_perturbation is None:
                raise ValueError(
                    f"runtime {config.runtime!r} does not support delivery "
                    "perturbation"
                )
            self.perturbation = SchedulePerturbation(config.perturbation)
            set_perturbation(self.perturbation)

    # ------------------------------------------------------------- factories
    def build_replica(self, replica_id: int) -> MultiBFTReplica:
        retain = (not self.config.bounded_memory) or replica_id == self._observer_id
        return self.replica_class(
            replica_id, self.runtime, self.config, self.resources, retain_history=retain
        )

    # ---------------------------------------------------------- introspection
    @property
    def simulator(self):
        """The DES backend's simulator (diagnostics; None on other backends)."""
        return getattr(self.runtime, "simulator", None)

    # ------------------------------------------------------------------- run
    def observer_id(self) -> int:
        """The replica whose log and metrics the experiment reports.

        Pick the lowest-id replica that neither straggles, crashes, nor runs
        any adversarial behaviour, so the reported numbers reflect an honest,
        live participant (as a client would observe).
        """
        excluded = set(self.effective_faults.straggler_map())
        excluded.update(spec.replica for spec in self.effective_faults.crashes)
        excluded.update(self.effective_faults.adversarial_replicas())
        for replica_id in range(self.config.n):
            if replica_id not in excluded:
                return replica_id
        return 0

    def start(self) -> None:
        """Arm faults and start every (local) replica — without running.

        The sharded backend's workers call this once at build time; the
        hub's barrier protocol then drives the runtime in windows instead
        of one :meth:`run` call.
        """
        self.fault_injector.arm()
        for replica in self.replicas.values():
            replica.start()

    def run(self) -> SystemResult:
        self.start()
        self.runtime.run(until=self.config.duration)
        return self.collect_result()

    def collect_result(self) -> SystemResult:
        observer = self.replicas[self._observer_id]
        # Attribute network byte counts to per-replica resource usage so that
        # the bandwidth numbers reflect what was actually pushed to the NIC.
        for replica_id, byte_count in self.runtime.stats.bytes_per_node.items():
            usage = self.resources.usage(replica_id)
            usage.bytes_sent = max(usage.bytes_sent, byte_count)
        metrics = observer.metrics.summarise(
            protocol=self.config.protocol,
            n=self.config.n,
            stragglers=self.config.faults.straggler_count(),
            duration=self.config.duration,
            resources=self.resources,
            warmup=self.config.warmup,
        )
        audit = audit_system(self)
        metrics.extra["safety_violations"] = float(len(audit.violations))
        metrics.extra["stalled_instances"] = float(len(audit.stalled_instances))
        if self.fault_injector.interceptors:
            for key, value in self.fault_injector.adversary_stats().items():
                metrics.extra[f"adversary_{key}"] = float(value)
        view_changes: List[Tuple[float, int, int]] = []
        for replica in self.replicas.values():
            view_changes.extend(replica.view_change_log)
        epoch_log: List[Tuple[float, int]] = []
        if observer.pacemaker is not None:
            epoch_log = list(observer.pacemaker.advancement_log)
        return SystemResult(
            metrics=metrics,
            confirmed=observer.orderer.confirmed,
            network_stats=self.runtime.stats,
            resources=self.resources,
            throughput_series=observer.metrics.throughput.series(until=self.config.duration),
            view_change_times=sorted(view_changes),
            epoch_advancements=epoch_log,
            crash_log=list(self.fault_injector.crash_log),
            dynamics_log=list(self.fault_injector.event_log),
            audit=audit,
        )
