"""ISS: pre-determined global ordering over PBFT or HotStuff instances.

ISS (Stathakopoulou et al., EuroSys 2022) assigns every block a global index
determined by its (instance, round) before the block exists; replicas execute
blocks strictly in index order, so a hole left by a slow instance blocks all
later indices (the behaviour Sec. 2.1 analyses).
"""

from __future__ import annotations

from typing import Type

from repro.consensus.hotstuff import HotStuffInstance
from repro.consensus.pbft import PBFTInstance
from repro.core.ordering import GlobalOrderer
from repro.core.predetermined import PredeterminedOrderer
from repro.protocols.base import MultiBFTReplica, MultiBFTSystem


class ISSReplica(MultiBFTReplica):
    """A replica running ISS (pre-determined ordering, PBFT instances)."""

    uses_epochs = False
    instance_cls: Type = PBFTInstance

    def build_orderer(self) -> GlobalOrderer:
        return PredeterminedOrderer(
            num_instances=self.config.m, retain_blocks=self.retain_history
        )

    def instance_class(self) -> Type:
        return self.instance_cls


class ISSPBFTReplica(ISSReplica):
    instance_cls = PBFTInstance


class ISSHotStuffReplica(ISSReplica):
    instance_cls = HotStuffInstance


class ISSPBFTSystem(MultiBFTSystem):
    replica_class = ISSPBFTReplica


class ISSHotStuffSystem(MultiBFTSystem):
    replica_class = ISSHotStuffReplica
