"""Protocol registry: maps protocol names to system factories."""

from __future__ import annotations

from types import MappingProxyType
from typing import List, Mapping, Type

from repro.protocols.base import MultiBFTSystem, SystemConfig
from repro.protocols.dqbft import DQBFTSystem
from repro.protocols.iss import ISSHotStuffSystem, ISSPBFTSystem
from repro.protocols.ladon import LadonHotStuffSystem, LadonOptSystem, LadonPBFTSystem
from repro.protocols.mir import MirSystem
from repro.protocols.rcc import RCCSystem

# Read-only mappings (ISO-001): worker processes import this module, so the
# registry must be immutable shared state, not a mutable module global.
_REGISTRY: Mapping[str, Type[MultiBFTSystem]] = MappingProxyType({
    "ladon-pbft": LadonPBFTSystem,
    "ladon-opt": LadonOptSystem,
    "ladon-hotstuff": LadonHotStuffSystem,
    "iss-pbft": ISSPBFTSystem,
    "iss-hotstuff": ISSHotStuffSystem,
    "mir": MirSystem,
    "rcc": RCCSystem,
    "dqbft": DQBFTSystem,
})

_ALIASES: Mapping[str, str] = MappingProxyType({
    "ladon": "ladon-pbft",
    "iss": "iss-pbft",
    "mir-pbft": "mir",
    "rcc-pbft": "rcc",
    "dqbft-pbft": "dqbft",
})


def available_protocols() -> List[str]:
    """The canonical protocol names accepted by :func:`build_system`."""
    return sorted(_REGISTRY.keys())


def resolve_protocol(name: str) -> str:
    """Resolve an alias to its canonical protocol name."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        )
    return canonical


def build_system(config: SystemConfig) -> MultiBFTSystem:
    """Build the Multi-BFT system named by ``config.protocol``."""
    canonical = resolve_protocol(config.protocol)
    system_class = _REGISTRY[canonical]
    return system_class(config)
