"""Protocol registry: maps protocol names to system factories."""

from __future__ import annotations

from dataclasses import replace
from types import MappingProxyType
from typing import List, Mapping, Type

from repro.protocols.base import MultiBFTSystem, SystemConfig
from repro.protocols.dqbft import DQBFTSystem
from repro.protocols.iss import ISSHotStuffSystem, ISSPBFTSystem
from repro.protocols.ladon import LadonHotStuffSystem, LadonOptSystem, LadonPBFTSystem
from repro.protocols.mir import MirSystem
from repro.protocols.rcc import RCCSystem

# Read-only mappings (ISO-001): worker processes import this module, so the
# registry must be immutable shared state, not a mutable module global.
_REGISTRY: Mapping[str, Type[MultiBFTSystem]] = MappingProxyType({
    "ladon-pbft": LadonPBFTSystem,
    "ladon-opt": LadonOptSystem,
    "ladon-hotstuff": LadonHotStuffSystem,
    "iss-pbft": ISSPBFTSystem,
    "iss-hotstuff": ISSHotStuffSystem,
    "mir": MirSystem,
    "rcc": RCCSystem,
    "dqbft": DQBFTSystem,
})

_ALIASES: Mapping[str, str] = MappingProxyType({
    "ladon": "ladon-pbft",
    "iss": "iss-pbft",
    "mir-pbft": "mir",
    "rcc-pbft": "rcc",
    "dqbft-pbft": "dqbft",
})


def available_protocols() -> List[str]:
    """The canonical protocol names accepted by :func:`build_system`."""
    return sorted(_REGISTRY.keys())


def resolve_protocol(name: str) -> str:
    """Resolve an alias to its canonical protocol name."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        )
    return canonical


def system_class(name: str) -> Type[MultiBFTSystem]:
    """The system class for a canonical protocol name (no aliases).

    Shard workers use this to construct their partial systems directly —
    going through :func:`build_system` would recurse into the sharded
    dispatch below.
    """
    return _REGISTRY[name]


def build_system(config: SystemConfig):
    """Build the Multi-BFT system named by ``config.protocol``.

    ``runtime='sharded'`` returns a
    :class:`~repro.runtime.sharded.ShardedSystem` — the hub-side facade with
    the same ``run() -> SystemResult`` surface — instead of a single-process
    :class:`MultiBFTSystem`.
    """
    canonical = resolve_protocol(config.protocol)
    if config.runtime == "sharded":
        # Lazy import: single-process runs never touch multiprocessing.
        from repro.runtime.sharded import ShardedSystem

        return ShardedSystem(replace(config, protocol=canonical))
    return _REGISTRY[canonical](config)
